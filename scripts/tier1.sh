#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must pass, plus a quick smoke
# of the figures binary (regenerates a small sweep and the engine
# hot-path benchmark without overwriting checked-in outputs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier-1: cargo build --release =="
cargo build --release --workspace

echo "== tier-1: cargo test -q =="
cargo test -q --workspace

echo "== tier-1: cargo clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo doc (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== smoke: figures --quick =="
cargo run --release -p dmt-bench --bin figures -- --quick

# Interpreter dispatch-style equivalence (match vs threaded vs fused):
# one corpus pass per style with the assertions on, no timed batches.
echo "== smoke: interp dispatch equivalence =="
cargo bench -p dmt-bench --bench interp -- --smoke

# Artifact staleness: regenerate figures_output.txt and every committed
# figures artifact in a scratch directory and fail on any diff outside
# the documented timing lines (see scripts/check_artifacts.sh). Catches
# the classic drift where a code change moves counters, tables or JSON
# structure but the committed artifacts still show the old run.
echo "== gate: artifact staleness =="
./scripts/check_artifacts.sh

# Fast resilience subset: the fault-suite goldens (re-convergence,
# BENCH_faults.json byte-identity across worker counts, the broken-
# transport negative control). The #[ignore]d full grid stays out of
# tier-1; run it with `cargo test -p dmt-bench --test resilience -- --ignored`.
echo "== smoke: resilience goldens =="
cargo test -q -p dmt-bench --test resilience

# Contention-analytics goldens: BENCH_contention.json byte-identity
# across worker counts/reruns, the race-prediction golden (the seeded
# AB/BA inversion must be flagged, clean fig1 must stay silent), and
# the deterministic trace.dropped counter. The tracing-disabled
# ns/event guard stays in the workspace run (tests/trace_overhead.rs).
echo "== smoke: contention determinism =="
cargo test -q --release -p dmt-bench --test contention_determinism

# Sharded-engine goldens: fig1 and open-loop sweeps must be
# byte-identical for every intra-run shard worker count (1 vs 2/4/8) ×
# sweep worker count, and the BENCH_shard.json deterministic section
# must be byte-stable across reruns.
echo "== smoke: shard determinism =="
cargo test -q --release -p dmt-bench --test shard_determinism

echo "tier1: OK"
