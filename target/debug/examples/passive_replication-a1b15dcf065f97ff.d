/root/repo/target/debug/examples/passive_replication-a1b15dcf065f97ff.d: examples/passive_replication.rs

/root/repo/target/debug/examples/passive_replication-a1b15dcf065f97ff: examples/passive_replication.rs

examples/passive_replication.rs:
