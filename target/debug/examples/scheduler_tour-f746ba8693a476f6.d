/root/repo/target/debug/examples/scheduler_tour-f746ba8693a476f6.d: examples/scheduler_tour.rs

/root/repo/target/debug/examples/scheduler_tour-f746ba8693a476f6: examples/scheduler_tour.rs

examples/scheduler_tour.rs:
