/root/repo/target/debug/examples/analysis_transform-203c41d20bfdd448.d: examples/analysis_transform.rs

/root/repo/target/debug/examples/analysis_transform-203c41d20bfdd448: examples/analysis_transform.rs

examples/analysis_transform.rs:
