/root/repo/target/debug/examples/quickstart-bdb753d6705f7ae4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bdb753d6705f7ae4: examples/quickstart.rs

examples/quickstart.rs:
