/root/repo/target/debug/examples/failover-3d3350b53a88928b.d: examples/failover.rs

/root/repo/target/debug/examples/failover-3d3350b53a88928b: examples/failover.rs

examples/failover.rs:
