/root/repo/target/debug/deps/end_to_end-63fbbf7d88aac629.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-63fbbf7d88aac629: tests/end_to_end.rs

tests/end_to_end.rs:
