/root/repo/target/debug/deps/dmt_sim-0b93c2138805c6ef.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdmt_sim-0b93c2138805c6ef.rlib: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdmt_sim-0b93c2138805c6ef.rmeta: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
