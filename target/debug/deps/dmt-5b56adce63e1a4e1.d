/root/repo/target/debug/deps/dmt-5b56adce63e1a4e1.d: src/lib.rs

/root/repo/target/debug/deps/libdmt-5b56adce63e1a4e1.rlib: src/lib.rs

/root/repo/target/debug/deps/libdmt-5b56adce63e1a4e1.rmeta: src/lib.rs

src/lib.rs:
