/root/repo/target/debug/deps/determinism-d0ba21b41648825a.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d0ba21b41648825a: tests/determinism.rs

tests/determinism.rs:
