/root/repo/target/debug/deps/dmt_analysis-1b2249e6428d0c84.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/debug/deps/libdmt_analysis-1b2249e6428d0c84.rlib: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/debug/deps/libdmt_analysis-1b2249e6428d0c84.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/lockparam.rs:
crates/analysis/src/paths.rs:
crates/analysis/src/pretty.rs:
crates/analysis/src/report.rs:
crates/analysis/src/table.rs:
crates/analysis/src/transform.rs:
