/root/repo/target/debug/deps/dmt_workload-4f4a2a143d37c43c.d: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

/root/repo/target/debug/deps/libdmt_workload-4f4a2a143d37c43c.rmeta: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

crates/workload/src/lib.rs:
crates/workload/src/bank.rs:
crates/workload/src/buffer.rs:
crates/workload/src/fig1.rs:
crates/workload/src/fig2.rs:
crates/workload/src/fig3.rs:
crates/workload/src/openloop.rs:
crates/workload/src/synth.rs:
