/root/repo/target/debug/deps/dmt_groupcomm-859a9b8b0dadd4fb.d: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/debug/deps/libdmt_groupcomm-859a9b8b0dadd4fb.rmeta: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

crates/groupcomm/src/lib.rs:
crates/groupcomm/src/net.rs:
crates/groupcomm/src/stats.rs:
