/root/repo/target/debug/deps/figure4_golden-ccedc082afd64f66.d: crates/analysis/tests/figure4_golden.rs

/root/repo/target/debug/deps/figure4_golden-ccedc082afd64f66: crates/analysis/tests/figure4_golden.rs

crates/analysis/tests/figure4_golden.rs:
