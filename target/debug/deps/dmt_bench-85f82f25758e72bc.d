/root/repo/target/debug/deps/dmt_bench-85f82f25758e72bc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/debug/deps/libdmt_bench-85f82f25758e72bc.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/openloop.rs:
crates/bench/src/table.rs:
crates/bench/src/ubench.rs:
