/root/repo/target/debug/deps/dmt_bench-81bdb7eb6dee634f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/debug/deps/dmt_bench-81bdb7eb6dee634f: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/openloop.rs:
crates/bench/src/table.rs:
crates/bench/src/ubench.rs:
