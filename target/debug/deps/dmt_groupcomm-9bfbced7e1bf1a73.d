/root/repo/target/debug/deps/dmt_groupcomm-9bfbced7e1bf1a73.d: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/debug/deps/libdmt_groupcomm-9bfbced7e1bf1a73.rlib: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/debug/deps/libdmt_groupcomm-9bfbced7e1bf1a73.rmeta: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

crates/groupcomm/src/lib.rs:
crates/groupcomm/src/net.rs:
crates/groupcomm/src/stats.rs:
