/root/repo/target/debug/deps/dmt_rt-1a8efd21dd5162bb.d: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/debug/deps/dmt_rt-1a8efd21dd5162bb: crates/rt/src/lib.rs crates/rt/src/runtime.rs

crates/rt/src/lib.rs:
crates/rt/src/runtime.rs:
