/root/repo/target/debug/deps/dmt_lang-36e2e53d29f151ab.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

/root/repo/target/debug/deps/dmt_lang-36e2e53d29f151ab: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/builder.rs:
crates/lang/src/compile.rs:
crates/lang/src/ids.rs:
crates/lang/src/interp.rs:
crates/lang/src/value.rs:
