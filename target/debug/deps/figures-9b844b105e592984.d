/root/repo/target/debug/deps/figures-9b844b105e592984.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9b844b105e592984: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
