/root/repo/target/debug/deps/properties-ef694a37786a9fe8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ef694a37786a9fe8: tests/properties.rs

tests/properties.rs:
