/root/repo/target/debug/deps/dmt_rt-fb1b2af7b4b59312.d: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/debug/deps/libdmt_rt-fb1b2af7b4b59312.rlib: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/debug/deps/libdmt_rt-fb1b2af7b4b59312.rmeta: crates/rt/src/lib.rs crates/rt/src/runtime.rs

crates/rt/src/lib.rs:
crates/rt/src/runtime.rs:
