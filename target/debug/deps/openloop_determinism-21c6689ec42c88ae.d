/root/repo/target/debug/deps/openloop_determinism-21c6689ec42c88ae.d: crates/bench/tests/openloop_determinism.rs

/root/repo/target/debug/deps/openloop_determinism-21c6689ec42c88ae: crates/bench/tests/openloop_determinism.rs

crates/bench/tests/openloop_determinism.rs:
