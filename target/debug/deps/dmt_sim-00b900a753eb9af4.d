/root/repo/target/debug/deps/dmt_sim-00b900a753eb9af4.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/dmt_sim-00b900a753eb9af4: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
