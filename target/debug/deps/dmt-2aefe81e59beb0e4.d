/root/repo/target/debug/deps/dmt-2aefe81e59beb0e4.d: src/lib.rs

/root/repo/target/debug/deps/dmt-2aefe81e59beb0e4: src/lib.rs

src/lib.rs:
