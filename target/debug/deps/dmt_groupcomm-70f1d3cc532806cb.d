/root/repo/target/debug/deps/dmt_groupcomm-70f1d3cc532806cb.d: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/debug/deps/dmt_groupcomm-70f1d3cc532806cb: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

crates/groupcomm/src/lib.rs:
crates/groupcomm/src/net.rs:
crates/groupcomm/src/stats.rs:
