/root/repo/target/debug/deps/dmt_replica-1a60694fb64b7637.d: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

/root/repo/target/debug/deps/libdmt_replica-1a60694fb64b7637.rmeta: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

crates/replica/src/lib.rs:
crates/replica/src/checker.rs:
crates/replica/src/engine.rs:
crates/replica/src/msg.rs:
crates/replica/src/replay.rs:
crates/replica/src/trace.rs:
