/root/repo/target/debug/deps/dmt_rt-892cb58afb60ad03.d: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/debug/deps/libdmt_rt-892cb58afb60ad03.rmeta: crates/rt/src/lib.rs crates/rt/src/runtime.rs

crates/rt/src/lib.rs:
crates/rt/src/runtime.rs:
