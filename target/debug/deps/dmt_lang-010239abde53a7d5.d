/root/repo/target/debug/deps/dmt_lang-010239abde53a7d5.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

/root/repo/target/debug/deps/libdmt_lang-010239abde53a7d5.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/builder.rs:
crates/lang/src/compile.rs:
crates/lang/src/ids.rs:
crates/lang/src/interp.rs:
crates/lang/src/value.rs:
