/root/repo/target/debug/deps/dmt_workload-0cfd571b75ac4514.d: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

/root/repo/target/debug/deps/libdmt_workload-0cfd571b75ac4514.rlib: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

/root/repo/target/debug/deps/libdmt_workload-0cfd571b75ac4514.rmeta: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

crates/workload/src/lib.rs:
crates/workload/src/bank.rs:
crates/workload/src/buffer.rs:
crates/workload/src/fig1.rs:
crates/workload/src/fig2.rs:
crates/workload/src/fig3.rs:
crates/workload/src/openloop.rs:
crates/workload/src/synth.rs:
