/root/repo/target/debug/deps/dmt_bench-d4382ed296c3f0c7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/debug/deps/libdmt_bench-d4382ed296c3f0c7.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/debug/deps/libdmt_bench-d4382ed296c3f0c7.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/openloop.rs:
crates/bench/src/table.rs:
crates/bench/src/ubench.rs:
