/root/repo/target/debug/deps/dmt_analysis-7faa623cd0f4e069.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/debug/deps/dmt_analysis-7faa623cd0f4e069: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/lockparam.rs:
crates/analysis/src/paths.rs:
crates/analysis/src/pretty.rs:
crates/analysis/src/report.rs:
crates/analysis/src/table.rs:
crates/analysis/src/transform.rs:
