/root/repo/target/debug/deps/analysis_soundness-d5c904d445729260.d: tests/analysis_soundness.rs

/root/repo/target/debug/deps/analysis_soundness-d5c904d445729260: tests/analysis_soundness.rs

tests/analysis_soundness.rs:
