/root/repo/target/debug/deps/dmt_analysis-8deb629b45ca423c.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/debug/deps/libdmt_analysis-8deb629b45ca423c.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/lockparam.rs:
crates/analysis/src/paths.rs:
crates/analysis/src/pretty.rs:
crates/analysis/src/report.rs:
crates/analysis/src/table.rs:
crates/analysis/src/transform.rs:
