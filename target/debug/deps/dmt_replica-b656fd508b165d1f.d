/root/repo/target/debug/deps/dmt_replica-b656fd508b165d1f.d: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

/root/repo/target/debug/deps/dmt_replica-b656fd508b165d1f: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

crates/replica/src/lib.rs:
crates/replica/src/checker.rs:
crates/replica/src/engine.rs:
crates/replica/src/msg.rs:
crates/replica/src/replay.rs:
crates/replica/src/trace.rs:
