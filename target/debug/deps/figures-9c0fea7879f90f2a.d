/root/repo/target/debug/deps/figures-9c0fea7879f90f2a.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9c0fea7879f90f2a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
