/root/repo/target/debug/deps/dmt_core-2a891465a65a89c9.d: crates/core/src/lib.rs crates/core/src/bookkeeping.rs crates/core/src/event.rs crates/core/src/free.rs crates/core/src/harness.rs crates/core/src/ids.rs crates/core/src/lsa.rs crates/core/src/mat.rs crates/core/src/pds.rs crates/core/src/pmat.rs crates/core/src/sat.rs crates/core/src/scheduler.rs crates/core/src/seq.rs crates/core/src/slot.rs crates/core/src/sync_core.rs

/root/repo/target/debug/deps/libdmt_core-2a891465a65a89c9.rmeta: crates/core/src/lib.rs crates/core/src/bookkeeping.rs crates/core/src/event.rs crates/core/src/free.rs crates/core/src/harness.rs crates/core/src/ids.rs crates/core/src/lsa.rs crates/core/src/mat.rs crates/core/src/pds.rs crates/core/src/pmat.rs crates/core/src/sat.rs crates/core/src/scheduler.rs crates/core/src/seq.rs crates/core/src/slot.rs crates/core/src/sync_core.rs

crates/core/src/lib.rs:
crates/core/src/bookkeeping.rs:
crates/core/src/event.rs:
crates/core/src/free.rs:
crates/core/src/harness.rs:
crates/core/src/ids.rs:
crates/core/src/lsa.rs:
crates/core/src/mat.rs:
crates/core/src/pds.rs:
crates/core/src/pmat.rs:
crates/core/src/sat.rs:
crates/core/src/scheduler.rs:
crates/core/src/seq.rs:
crates/core/src/slot.rs:
crates/core/src/sync_core.rs:
