/root/repo/target/release/examples/failover-4eb8a200b93270ea.d: examples/failover.rs

/root/repo/target/release/examples/failover-4eb8a200b93270ea: examples/failover.rs

examples/failover.rs:
