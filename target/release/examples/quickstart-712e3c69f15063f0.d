/root/repo/target/release/examples/quickstart-712e3c69f15063f0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-712e3c69f15063f0: examples/quickstart.rs

examples/quickstart.rs:
