/root/repo/target/release/deps/dmt_groupcomm-74d4464d4e568966.d: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/release/deps/libdmt_groupcomm-74d4464d4e568966.rlib: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

/root/repo/target/release/deps/libdmt_groupcomm-74d4464d4e568966.rmeta: crates/groupcomm/src/lib.rs crates/groupcomm/src/net.rs crates/groupcomm/src/stats.rs

crates/groupcomm/src/lib.rs:
crates/groupcomm/src/net.rs:
crates/groupcomm/src/stats.rs:
