/root/repo/target/release/deps/dmt_lang-fbe9f12656737159.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

/root/repo/target/release/deps/libdmt_lang-fbe9f12656737159.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

/root/repo/target/release/deps/libdmt_lang-fbe9f12656737159.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/builder.rs crates/lang/src/compile.rs crates/lang/src/ids.rs crates/lang/src/interp.rs crates/lang/src/value.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/builder.rs:
crates/lang/src/compile.rs:
crates/lang/src/ids.rs:
crates/lang/src/interp.rs:
crates/lang/src/value.rs:
