/root/repo/target/release/deps/dmt_workload-f51eca266cd1a3e3.d: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

/root/repo/target/release/deps/libdmt_workload-f51eca266cd1a3e3.rlib: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

/root/repo/target/release/deps/libdmt_workload-f51eca266cd1a3e3.rmeta: crates/workload/src/lib.rs crates/workload/src/bank.rs crates/workload/src/buffer.rs crates/workload/src/fig1.rs crates/workload/src/fig2.rs crates/workload/src/fig3.rs crates/workload/src/openloop.rs crates/workload/src/synth.rs

crates/workload/src/lib.rs:
crates/workload/src/bank.rs:
crates/workload/src/buffer.rs:
crates/workload/src/fig1.rs:
crates/workload/src/fig2.rs:
crates/workload/src/fig3.rs:
crates/workload/src/openloop.rs:
crates/workload/src/synth.rs:
