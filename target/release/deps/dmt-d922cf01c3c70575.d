/root/repo/target/release/deps/dmt-d922cf01c3c70575.d: src/lib.rs

/root/repo/target/release/deps/libdmt-d922cf01c3c70575.rlib: src/lib.rs

/root/repo/target/release/deps/libdmt-d922cf01c3c70575.rmeta: src/lib.rs

src/lib.rs:
