/root/repo/target/release/deps/dmt_rt-c792b8f849e2d730.d: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/release/deps/libdmt_rt-c792b8f849e2d730.rlib: crates/rt/src/lib.rs crates/rt/src/runtime.rs

/root/repo/target/release/deps/libdmt_rt-c792b8f849e2d730.rmeta: crates/rt/src/lib.rs crates/rt/src/runtime.rs

crates/rt/src/lib.rs:
crates/rt/src/runtime.rs:
