/root/repo/target/release/deps/figures-0509506ba0fea97d.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-0509506ba0fea97d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
