/root/repo/target/release/deps/dmt_bench-46c680b2462f6644.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/release/deps/libdmt_bench-46c680b2462f6644.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

/root/repo/target/release/deps/libdmt_bench-46c680b2462f6644.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/openloop.rs crates/bench/src/table.rs crates/bench/src/ubench.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/openloop.rs:
crates/bench/src/table.rs:
crates/bench/src/ubench.rs:
