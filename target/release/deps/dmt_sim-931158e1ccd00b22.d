/root/repo/target/release/deps/dmt_sim-931158e1ccd00b22.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdmt_sim-931158e1ccd00b22.rlib: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdmt_sim-931158e1ccd00b22.rmeta: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
