/root/repo/target/release/deps/dmt_analysis-c67828ec3ad9a70a.d: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/release/deps/libdmt_analysis-c67828ec3ad9a70a.rlib: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

/root/repo/target/release/deps/libdmt_analysis-c67828ec3ad9a70a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/callgraph.rs crates/analysis/src/lockparam.rs crates/analysis/src/paths.rs crates/analysis/src/pretty.rs crates/analysis/src/report.rs crates/analysis/src/table.rs crates/analysis/src/transform.rs

crates/analysis/src/lib.rs:
crates/analysis/src/callgraph.rs:
crates/analysis/src/lockparam.rs:
crates/analysis/src/paths.rs:
crates/analysis/src/pretty.rs:
crates/analysis/src/report.rs:
crates/analysis/src/table.rs:
crates/analysis/src/transform.rs:
