/root/repo/target/release/deps/dmt_replica-1c9806a47ebaee6a.d: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

/root/repo/target/release/deps/libdmt_replica-1c9806a47ebaee6a.rlib: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

/root/repo/target/release/deps/libdmt_replica-1c9806a47ebaee6a.rmeta: crates/replica/src/lib.rs crates/replica/src/checker.rs crates/replica/src/engine.rs crates/replica/src/msg.rs crates/replica/src/replay.rs crates/replica/src/trace.rs

crates/replica/src/lib.rs:
crates/replica/src/checker.rs:
crates/replica/src/engine.rs:
crates/replica/src/msg.rs:
crates/replica/src/replay.rs:
crates/replica/src/trace.rs:
