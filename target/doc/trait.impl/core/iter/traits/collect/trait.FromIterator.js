(function() {
    const implementors = Object.fromEntries([["dmt_lang",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"enum\" href=\"dmt_lang/value/enum.Value.html\" title=\"enum dmt_lang::value::Value\">Value</a>&gt; for <a class=\"struct\" href=\"dmt_lang/value/struct.RequestArgs.html\" title=\"struct dmt_lang::value::RequestArgs\">RequestArgs</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[457]}