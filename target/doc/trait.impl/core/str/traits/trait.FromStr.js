(function() {
    const implementors = Object.fromEntries([["dmt_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"dmt_core/scheduler/enum.SchedulerKind.html\" title=\"enum dmt_core::scheduler::SchedulerKind\">SchedulerKind</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[318]}