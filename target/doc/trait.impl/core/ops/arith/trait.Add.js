(function() {
    const implementors = Object.fromEntries([["dmt_sim",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a> for <a class=\"struct\" href=\"dmt_sim/time/struct.SimDuration.html\" title=\"struct dmt_sim::time::SimDuration\">SimDuration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a>&lt;<a class=\"struct\" href=\"dmt_sim/time/struct.SimDuration.html\" title=\"struct dmt_sim::time::SimDuration\">SimDuration</a>&gt; for <a class=\"struct\" href=\"dmt_sim/time/struct.SimTime.html\" title=\"struct dmt_sim::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[690]}