(function() {
    const implementors = Object.fromEntries([["dmt_core",[]],["dmt_replica",[["impl <a class=\"trait\" href=\"dmt_core/scheduler/trait.Scheduler.html\" title=\"trait dmt_core::scheduler::Scheduler\">Scheduler</a> for <a class=\"struct\" href=\"dmt_replica/replay/struct.ReplayScheduler.html\" title=\"struct dmt_replica::replay::ReplayScheduler\">ReplayScheduler</a>",0]]],["dmt_replica",[["impl Scheduler for <a class=\"struct\" href=\"dmt_replica/replay/struct.ReplayScheduler.html\" title=\"struct dmt_replica::replay::ReplayScheduler\">ReplayScheduler</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[15,312,193]}