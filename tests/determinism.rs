//! The reproduction's core claim, stress-tested: under per-replica CPU
//! jitter and network jitter, every deterministic scheduler keeps the
//! replicas consistent — across workloads, seeds, and jitter strengths —
//! while the FREE baseline does not.

use dmt::core::SchedulerKind;
use dmt::replica::{check_determinism, CheckOutcome};
use dmt::workload::{bank, buffer, fig1, synth};

#[test]
fn fig1_contended_multi_seed_convergence() {
    let p = fig1::Fig1Params {
        n_clients: 5,
        requests_per_client: 2,
        n_mutexes: 4, // heavy contention
        iterations: 6,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    for kind in SchedulerKind::DETERMINISTIC {
        for seed in [3u64, 17, 41] {
            let (res, outcome) = check_determinism(pair.for_kind(kind), kind, seed, 0.35);
            assert!(!res.deadlocked, "{kind} seed {seed}");
            assert!(outcome.converged(), "{kind} seed {seed}: {outcome:?}");
        }
    }
}

#[test]
fn nested_heavy_workload_convergence() {
    // Nested invocations are where suspension/wake-up timing races live
    // (the PDS wake bug was found exactly here).
    let p = fig1::Fig1Params {
        n_clients: 6,
        requests_per_client: 2,
        p_nested: 0.6,
        n_mutexes: 3,
        iterations: 5,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    for kind in SchedulerKind::DETERMINISTIC {
        for seed in [5u64, 23] {
            let (res, outcome) = check_determinism(pair.for_kind(kind), kind, seed, 0.4);
            assert!(!res.deadlocked, "{kind} seed {seed}");
            assert!(outcome.converged(), "{kind} seed {seed}: {outcome:?}");
        }
    }
}

#[test]
fn cv_workload_convergence() {
    let p = buffer::BufferParams {
        n_producers: 3,
        n_consumers: 3,
        items_per_client: 3,
        ..Default::default()
    };
    let pair = buffer::scenario(&p);
    for kind in [
        SchedulerKind::Sat,
        SchedulerKind::Lsa,
        SchedulerKind::Pds,
        SchedulerKind::Mat,
        SchedulerKind::MatLL,
        SchedulerKind::Pmat,
    ] {
        let (res, outcome) = check_determinism(pair.for_kind(kind), kind, 11, 0.3);
        assert!(!res.deadlocked, "{kind}");
        assert!(outcome.converged(), "{kind}: {outcome:?}");
    }
}

#[test]
fn bank_two_lock_convergence() {
    let p = bank::BankParams {
        n_accounts: 4,
        n_clients: 6,
        transfers_per_client: 4,
        ..Default::default()
    };
    let pair = bank::scenario(&p);
    for kind in SchedulerKind::DETERMINISTIC {
        let (res, outcome) = check_determinism(pair.for_kind(kind), kind, 19, 0.3);
        assert!(!res.deadlocked, "{kind}");
        assert!(outcome.converged(), "{kind}: {outcome:?}");
    }
}

#[test]
fn synthesized_programs_converge() {
    // Random programs over the full grammar (branches, loops, calls,
    // virtual dispatch, every lock-parameter class, nested invocations).
    use dmt::replica::{ClientScript, Scenario};
    use dmt::sim::SplitMix64;
    let cfg = synth::SynthConfig::default();
    for seed in 0..6u64 {
        let obj = synth::random_object(seed, &cfg);
        let table = dmt::analysis::build_lock_table(&obj);
        let transformed = dmt::analysis::transform(&obj);
        let program = dmt::lang::compile::compile(&transformed);
        let starts: Vec<_> = (0..obj.methods.len())
            .map(|i| dmt::lang::MethodIdx::new(i as u32))
            .filter(|&m| obj.method(m).public && obj.method(m).name != "noop")
            .collect();
        let mut arg_rng = SplitMix64::new(seed ^ 0xabcd);
        let clients: Vec<ClientScript> = (0..3)
            .map(|_| {
                ClientScript::closed(
                    (0..2)
                        .map(|_| {
                            let m = *arg_rng.choose(&starts).expect("has starts");
                            (m, synth::random_args(&mut arg_rng, &cfg))
                        })
                        .collect(),
                )
            })
            .collect();
        let dummy = program.method_by_name("noop").expect("noop exists");
        let scenario = Scenario::new(program, clients)
            .with_lock_table(table)
            .with_dummy_method(dummy);
        for kind in SchedulerKind::DETERMINISTIC {
            let (res, outcome) = check_determinism(scenario.clone(), kind, seed, 0.3);
            assert!(!res.deadlocked, "synth {seed} under {kind}");
            assert!(
                outcome.converged(),
                "synth {seed} under {kind}: {outcome:?}"
            );
        }
    }
}

#[test]
fn dense_id_hot_path_trace_regression() {
    // Guards the HashMap→Vec slot-table migration: map iteration order
    // used to be a latent nondeterminism hazard on the per-event path;
    // the slot tables must give (a) replica agreement at both zero and
    // strong jitter and (b) bit-identical traces when the very same
    // configuration runs twice.
    use dmt::replica::checker::match_level;
    use dmt::replica::{compare, Engine, EngineConfig};
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 3,
        n_mutexes: 3,
        iterations: 4,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    for kind in SchedulerKind::DETERMINISTIC {
        for jitter in [0.0, 0.3] {
            for seed in [7u64, 29] {
                let run = || {
                    Engine::new(
                        pair.for_kind(kind),
                        EngineConfig::new(kind)
                            .with_seed(seed)
                            .with_cpu_jitter(jitter),
                    )
                    .run()
                };
                let a = run();
                let b = run();
                assert!(!a.deadlocked, "{kind} jitter {jitter} seed {seed} stalled");
                let level = match_level(kind);
                for (i, tr) in a.traces.iter().enumerate().skip(1) {
                    assert!(
                        compare(&a.traces[0], tr, level).is_none(),
                        "{kind} jitter {jitter} seed {seed}: replica {i} diverged"
                    );
                }
                // Run-to-run: the full traces — global grant order
                // included — must be identical, replica by replica.
                assert_eq!(
                    a.traces, b.traces,
                    "{kind} jitter {jitter} seed {seed} not replay-stable"
                );
            }
        }
    }
}

#[test]
fn free_diverges_on_contended_order_sensitive_state() {
    // Needs order-sensitive updates; fig1's counters are commutative, so
    // build contention through the synth generator's 2x+k updates.
    use dmt::replica::{ClientScript, Scenario};
    use dmt::sim::SplitMix64;
    let cfg = synth::SynthConfig {
        n_mutex_pool: 1,
        ..Default::default()
    };
    let mut diverged = false;
    'outer: for seed in 0..10u64 {
        let obj = synth::random_object(seed, &cfg);
        let program = dmt::lang::compile::compile(&obj);
        let starts: Vec<_> = (0..obj.methods.len())
            .map(|i| dmt::lang::MethodIdx::new(i as u32))
            .filter(|&m| obj.method(m).public && obj.method(m).name != "noop")
            .collect();
        let mut arg_rng = SplitMix64::new(seed);
        let clients: Vec<ClientScript> = (0..5)
            .map(|_| {
                ClientScript::closed(
                    (0..3)
                        .map(|_| {
                            let m = *arg_rng.choose(&starts).expect("has starts");
                            (m, synth::random_args(&mut arg_rng, &cfg))
                        })
                        .collect(),
                )
            })
            .collect();
        let scenario = Scenario::new(program, clients);
        for jitter_seed in 0..4 {
            let (_, outcome) =
                check_determinism(scenario.clone(), SchedulerKind::Free, jitter_seed, 0.5);
            if matches!(outcome, CheckOutcome::Diverged { .. }) {
                diverged = true;
                break 'outer;
            }
        }
    }
    assert!(
        diverged,
        "FREE never diverged across 40 runs — checker broken?"
    );
}
