//! Randomised tests over the substrate invariants. Formerly proptest;
//! now driven by the in-tree SplitMix64 so the suite runs with no
//! external dependencies (and with perfectly reproducible cases: every
//! failure message names the seed that produced it).

use dmt::core::{Grant, LockOutcome, SyncCore, ThreadId};
use dmt::lang::MutexId;
use dmt::sim::{EventQueue, SplitMix64, Summary};

const CASES: u64 = 64;

/// The event queue pops in nondecreasing time order, FIFO on ties,
/// and returns exactly what was pushed.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xE0E0 ^ case);
        let n = rng.next_range(1, 200) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.next_below(10_000)).collect();
        let mut q = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.push_at(dmt::sim::SimTime::from_nanos(d), i);
        }
        let mut popped = Vec::new();
        let mut last = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                assert!(t >= lt, "case {case}");
                if t == lt {
                    assert!(idx > lidx, "case {case}: ties must pop FIFO");
                }
            }
            last = Some((t, idx));
            popped.push(idx);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..delays.len()).collect::<Vec<_>>(), "case {case}");
    }
}

/// SplitMix64 streams are reproducible and splitting is stable.
#[test]
fn rng_streams_reproduce() {
    let mut meta = SplitMix64::new(0x5EED);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let label = meta.next_u64();
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut ca = a.split(label);
        let mut cb = b.split(label);
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64(), "case {case}");
        }
    }
}

/// next_below stays in range for arbitrary bounds.
#[test]
fn rng_bounds() {
    let mut meta = SplitMix64::new(0xB0B0);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let bound = meta.next_u64().max(1);
        let mut r = SplitMix64::new(seed);
        for _ in 0..16 {
            assert!(r.next_below(bound) < bound, "case {case}");
        }
    }
}

/// Welford summary matches the naive two-pass computation.
#[test]
fn summary_matches_naive() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5011 ^ case);
        let n = rng.next_range(2, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let nf = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / nf;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nf - 1.0);
        assert!(
            (s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (s.variance() - var).abs() < 1e-5 * var.abs().max(1.0),
            "case {case}"
        );
        assert_eq!(s.count(), xs.len() as u64, "case {case}");
    }
}

/// Monitor mechanics: applying a random op sequence never yields two
/// owners, never loses a thread, and full unwinding leaves the table
/// quiescent.
#[test]
fn sync_core_never_corrupts() {
    use std::collections::{HashMap, HashSet};

    fn apply_grants(
        grants: impl IntoIterator<Item = Grant>,
        held: &mut HashMap<(u32, u32), u32>,
        blocked: &mut HashSet<u32>,
        waiting: &mut HashSet<u32>,
    ) {
        for g in grants {
            blocked.remove(&g.tid.0);
            waiting.remove(&g.tid.0);
            *held.entry((g.tid.0, g.mutex.0)).or_insert(0) += 1;
        }
    }

    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC04E ^ case);
        let n_ops = rng.next_range(1, 300) as usize;
        let mut core = SyncCore::new(true);
        // Track how many times each thread must still unlock each mutex.
        let mut held: HashMap<(u32, u32), u32> = HashMap::new();
        let mut blocked: HashSet<u32> = HashSet::new();
        let mut waiting: HashSet<u32> = HashSet::new();

        for _ in 0..n_ops {
            let op = rng.next_below(6) as u32;
            let t = rng.next_below(4) as u32;
            let m = rng.next_below(3) as u32;
            if blocked.contains(&t) || waiting.contains(&t) {
                continue; // a blocked thread cannot issue operations
            }
            let tid = ThreadId::new(t);
            let mx = MutexId::new(m);
            match op {
                // lock
                0 | 1 => match core.lock(tid, mx) {
                    LockOutcome::Acquired => {
                        *held.entry((t, m)).or_insert(0) += 1;
                    }
                    LockOutcome::Queued => {
                        blocked.insert(t);
                    }
                },
                // unlock (if held)
                2 | 3 => {
                    if held.get(&(t, m)).copied().unwrap_or(0) > 0 {
                        *held.get_mut(&(t, m)).unwrap() -= 1;
                        let grants = core.unlock(tid, mx);
                        apply_grants(grants, &mut held, &mut blocked, &mut waiting);
                    }
                }
                // notify (if owner)
                4 => {
                    if core.holds(tid, mx) {
                        core.notify(tid, mx, t.is_multiple_of(2));
                    }
                }
                // wait (if owner)
                _ => {
                    if core.holds(tid, mx) {
                        held.remove(&(t, m));
                        waiting.insert(t);
                        let grants = core.wait(tid, mx);
                        apply_grants(grants, &mut held, &mut blocked, &mut waiting);
                    }
                }
            }
            // Invariant: owners recorded by the model own in the core.
            for (&(ht, hm), &count) in &held {
                if count > 0 {
                    assert_eq!(
                        core.owner(MutexId::new(hm)),
                        Some(ThreadId::new(ht)),
                        "case {case}"
                    );
                }
            }
        }

        // Unwind: notify everyone, then release everything we still hold,
        // granting queued threads until the table quiesces.
        let mut progress = true;
        while progress {
            progress = false;
            let holders: Vec<(u32, u32)> = held
                .iter()
                .filter(|&(_, &c)| c > 0)
                .map(|(&k, _)| k)
                .collect();
            for (t, m) in holders {
                let tid = ThreadId::new(t);
                let mx = MutexId::new(m);
                core.notify(tid, mx, true);
                *held.get_mut(&(t, m)).unwrap() -= 1;
                let grants = core.unlock(tid, mx);
                apply_grants(grants, &mut held, &mut blocked, &mut waiting);
                progress = true;
            }
        }
        // Whatever remains blocked is waiting on threads that never
        // locked (impossible) — the core must agree nothing is held.
        for (&(ht, hm), &count) in &held {
            assert_eq!(count, 0, "case {case}: thread {ht} still holds {hm}");
        }
    }
}

/// Harness replay stability across the whole scheduler zoo, on random
/// programs (deterministic seeds).
#[test]
fn harness_runs_are_replay_stable() {
    use dmt::core::harness::Harness;
    use dmt::core::{make_scheduler, ReplicaId, SchedConfig, SchedulerKind};
    use dmt::workload::synth::{random_args, random_object, SynthConfig};

    let cfg = SynthConfig::default();
    for seed in 0..10u64 {
        let obj = random_object(seed, &cfg);
        let program = dmt::lang::compile::compile(&obj);
        let this_mutex = MutexId::new(program.mutex_bound());
        let starts: Vec<_> = program
            .methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.public && m.name != "noop")
            .map(|(i, _)| dmt::lang::MethodIdx::new(i as u32))
            .collect();
        let dummy = program.method_by_name("noop").unwrap();
        for kind in SchedulerKind::ALL {
            let run = || {
                let sc = SchedConfig::new(kind, ReplicaId::new(0));
                let mut h = Harness::new(program.clone(), this_mutex, make_scheduler(&sc))
                    .with_dummy_method(dummy);
                let mut rng = SplitMix64::new(seed ^ 0x1234);
                for _ in 0..6 {
                    let m = *rng.choose(&starts).unwrap();
                    h.submit(m, random_args(&mut rng, &cfg));
                }
                h.run()
            };
            let a = run();
            let b = run();
            assert!(!a.deadlocked, "synth {seed} under {kind} deadlocked");
            assert_eq!(a.lock_trace, b.lock_trace, "synth {seed} under {kind}");
            assert_eq!(
                a.state.state_hash(),
                b.state.state_hash(),
                "synth {seed} under {kind}"
            );
        }
    }
}
