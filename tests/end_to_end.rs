//! End-to-end integration: workloads through the full stack (language →
//! analysis → schedulers → group communication → replication engine).

use dmt::core::SchedulerKind;
use dmt::replica::{Engine, EngineConfig};
use dmt::workload::{bank, buffer, fig1, fig2, fig3};

#[test]
fn fig1_workload_completes_under_every_scheduler() {
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        iterations: 6,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    for kind in SchedulerKind::ALL {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2)).run();
        assert!(!res.deadlocked, "{kind}");
        assert_eq!(res.completed_requests, 8, "{kind}");
        assert_eq!(res.response_times.len(), 8, "{kind}");
    }
}

#[test]
fn fig1_response_time_ordering_matches_the_paper() {
    // The qualitative Figure-1 claim at moderate load: SEQ is clearly the
    // worst; the concurrent algorithms beat it by a wide margin.
    let p = fig1::Fig1Params {
        n_clients: 8,
        requests_per_client: 3,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    let mean = |kind: SchedulerKind| {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2)).run();
        assert!(!res.deadlocked, "{kind}");
        res.response_times.mean()
    };
    let seq = mean(SchedulerKind::Seq);
    let sat = mean(SchedulerKind::Sat);
    let lsa = mean(SchedulerKind::Lsa);
    let pds = mean(SchedulerKind::Pds);
    let mat = mean(SchedulerKind::Mat);
    let pmat = mean(SchedulerKind::Pmat);
    assert!(
        seq > 2.0 * sat,
        "SEQ {seq:.1} must trail SAT {sat:.1} badly"
    );
    assert!(seq > 1.3 * mat, "SEQ {seq:.1} must trail MAT {mat:.1}");
    assert!(seq > pds, "SEQ {seq:.1} must trail PDS {pds:.1}");
    assert!(
        lsa <= mat * 1.1,
        "LSA {lsa:.1} should be at least on par with MAT {mat:.1}"
    );
    // PMAT's standing relative to MAT is workload-draw dependent (it wins
    // on the full Figure-1 sweep, loses on some draws — EXPERIMENTS.md);
    // here only sanity is asserted.
    assert!(seq > pmat, "SEQ {seq:.1} must trail PMAT {pmat:.1}");
}

#[test]
fn lsa_pays_in_network_traffic() {
    // §3.5: LSA "poses a high load on the network caused by the need for
    // frequent broadcast communication".
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    let legs = |kind: SchedulerKind| {
        Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2))
            .run()
            .net_legs()
    };
    let lsa = legs(SchedulerKind::Lsa);
    let mat = legs(SchedulerKind::Mat);
    assert!(lsa > 2 * mat, "LSA legs {lsa} should dwarf MAT legs {mat}");
}

#[test]
fn fig2_lastlock_handoff_beats_plain_mat() {
    let p = fig2::Fig2Params {
        n_clients: 5,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig2::scenario(&p);
    let mean = |kind: SchedulerKind| {
        Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2))
            .run()
            .response_times
            .mean()
    };
    assert!(mean(SchedulerKind::MatLL) < mean(SchedulerKind::Mat) * 0.8);
}

#[test]
fn fig3_prediction_approaches_ideal_overlap() {
    let p = fig3::Fig3Params {
        n_clients: 6,
        ..Default::default()
    };
    let pair = fig3::scenario(&p);
    let mean = |kind: SchedulerKind| {
        Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2))
            .run()
            .response_times
            .mean()
    };
    let mat = mean(SchedulerKind::Mat);
    let pmat = mean(SchedulerKind::Pmat);
    // Disjoint lock sets: PMAT overlaps everything; its response time is
    // near the single-request cost while MAT serialises.
    assert!(pmat < mat / 2.0, "PMAT {pmat:.2} vs MAT {mat:.2}");
    assert!(
        pmat < 2.0 * (p.pre_ms + p.cs_ms),
        "PMAT {pmat:.2} should be near ideal"
    );
}

#[test]
fn bank_conserves_money_under_every_deterministic_scheduler() {
    // Transfers move lo→hi symmetrically (+a, +a to both in this model);
    // the invariant is that every replica computes the *same* balances.
    let p = bank::BankParams::default();
    let pair = bank::scenario(&p);
    for kind in SchedulerKind::DETERMINISTIC {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(6)).run();
        assert!(!res.deadlocked, "{kind}");
        let h = res.traces[0].state_hash;
        assert!(res.traces.iter().all(|t| t.state_hash == h), "{kind}");
    }
}

#[test]
fn buffer_workload_blocks_and_wakes_correctly() {
    let p = buffer::BufferParams {
        n_producers: 2,
        n_consumers: 2,
        items_per_client: 5,
        ..Default::default()
    };
    let pair = buffer::scenario(&p);
    for kind in [
        SchedulerKind::Sat,
        SchedulerKind::Mat,
        SchedulerKind::Pmat,
        SchedulerKind::Lsa,
    ] {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(8)).run();
        assert!(!res.deadlocked, "{kind}");
        assert_eq!(res.completed_requests, 20, "{kind}");
    }
}

#[test]
fn analysed_variant_costs_nothing_in_virtual_time_for_pessimists() {
    // Injected lockInfo/ignore calls are zero-duration; a pessimistic
    // scheduler must produce the same virtual-time behaviour on both
    // variants.
    let p = fig1::Fig1Params {
        n_clients: 3,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig1::scenario(&p);
    let run = |scenario| {
        Engine::new(scenario, EngineConfig::new(SchedulerKind::Mat).with_seed(3))
            .run()
            .response_times
            .mean()
    };
    let plain = run(pair.plain.clone());
    let analysed = run(pair.analysed.clone());
    assert!(
        (plain - analysed).abs() < 1e-9,
        "plain {plain} vs analysed {analysed}"
    );
}
