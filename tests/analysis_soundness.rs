//! Soundness of the static analysis and the code injection, checked over
//! randomly synthesised programs:
//!
//! 1. **Behavioural equivalence** — the transformed program produces the
//!    same state and the same synchronisation trace (modulo the injected
//!    `lockInfo`/`ignore` actions) as the original.
//! 2. **Prediction soundness** — driving the transformed trace through
//!    the bookkeeping module, every actual lock was announced or the
//!    thread was unpredicted (`may_lock` held), and once `no_more_locks`
//!    is reported the thread indeed never locks again (the invariant
//!    MAT-LL's early hand-off rides on).

use dmt::analysis::{build_lock_table, transform};
use dmt::core::bookkeeping::Bookkeeping;
use dmt::core::ThreadId;
use dmt::lang::compile::compile;
use dmt::lang::interp::run_to_completion;
use dmt::lang::{Action, MethodIdx, MutexId, ObjectState, ThreadVm};
use dmt::sim::SplitMix64;
use dmt::workload::synth::{random_args, random_object, SynthConfig};

fn single_thread_trace(
    program: &std::sync::Arc<dmt::lang::CompiledObject>,
    method: MethodIdx,
    args: dmt::lang::RequestArgs,
) -> (Vec<Action>, u64) {
    let mut state = ObjectState::for_object(program, MutexId::new(1_000_000));
    let mut vm = ThreadVm::new(program.clone(), method, args);
    let trace = run_to_completion(&mut vm, &mut state);
    (trace, state.state_hash())
}

fn strip_injections(trace: &[Action]) -> Vec<Action> {
    trace
        .iter()
        .copied()
        .filter(|a| !matches!(a, Action::LockInfo { .. } | Action::Ignore { .. }))
        .collect()
}

#[test]
fn transformed_programs_behave_identically() {
    let cfg = SynthConfig::default();
    for seed in 0..40u64 {
        let obj = random_object(seed, &cfg);
        let plain = compile(&obj);
        let instrumented = compile(&transform(&obj));
        let mut arg_rng = SplitMix64::new(seed ^ 0x5eed);
        for (mi, m) in obj.methods.iter().enumerate() {
            if !m.public || m.name == "noop" {
                continue;
            }
            for _ in 0..3 {
                let args = random_args(&mut arg_rng, &cfg);
                let (t_plain, h_plain) =
                    single_thread_trace(&plain, MethodIdx::new(mi as u32), args.clone());
                let (t_instr, h_instr) =
                    single_thread_trace(&instrumented, MethodIdx::new(mi as u32), args);
                assert_eq!(
                    h_plain, h_instr,
                    "seed {seed} method {} state differs",
                    m.name
                );
                assert_eq!(
                    t_plain,
                    strip_injections(&t_instr),
                    "seed {seed} method {} trace differs",
                    m.name
                );
            }
        }
    }
}

#[test]
fn bookkeeping_prediction_is_sound() {
    let cfg = SynthConfig::default();
    let tid = ThreadId::new(0);
    for seed in 0..40u64 {
        let obj = random_object(seed, &cfg);
        let table = build_lock_table(&obj);
        let instrumented = compile(&transform(&obj));
        let mut arg_rng = SplitMix64::new(seed ^ 0xfeed);
        for (mi, m) in obj.methods.iter().enumerate() {
            if !m.public || m.name == "noop" {
                continue;
            }
            let method = MethodIdx::new(mi as u32);
            for round in 0..3 {
                let args = random_args(&mut arg_rng, &cfg);
                let (trace, _) = single_thread_trace(&instrumented, method, args);
                let mut bk = Bookkeeping::new(table.clone());
                bk.on_request(tid, method);
                let mut done_at: Option<usize> = None;
                for (i, a) in trace.iter().enumerate() {
                    match *a {
                        Action::LockInfo { sync_id, mutex } => bk.on_lock_info(tid, sync_id, mutex),
                        Action::Ignore { sync_id } => bk.on_ignore(tid, sync_id),
                        Action::Lock { sync_id, mutex } => {
                            assert!(
                                bk.may_lock(tid, mutex),
                                "seed {seed} {}#{round}: lock of {mutex} at step {i} \
                                 not covered by prediction",
                                m.name
                            );
                            assert!(
                                done_at.is_none(),
                                "seed {seed} {}#{round}: lock at {i} after no_more_locks at {:?}",
                                m.name,
                                done_at
                            );
                            bk.on_lock(tid, sync_id, mutex);
                        }
                        Action::Unlock { sync_id, mutex } => {
                            bk.on_unlock(tid, sync_id, mutex);
                            if done_at.is_none() && bk.no_more_locks(tid) {
                                done_at = Some(i);
                            }
                        }
                        _ => {}
                    }
                    if done_at.is_none() && bk.no_more_locks(tid) {
                        done_at = Some(i);
                    }
                }
            }
        }
    }
}

#[test]
fn lock_tables_cover_every_executed_syncid() {
    // Every lock performed at runtime must appear in the start method's
    // static table (otherwise the bookkeeping degrades the thread).
    let cfg = SynthConfig::default();
    for seed in 0..40u64 {
        let obj = random_object(seed, &cfg);
        let table = build_lock_table(&obj);
        let program = compile(&obj);
        let mut arg_rng = SplitMix64::new(seed ^ 0xc0de);
        for (mi, m) in obj.methods.iter().enumerate() {
            if !m.public || m.name == "noop" {
                continue;
            }
            let method = MethodIdx::new(mi as u32);
            let Some(entries) = table.entries(method) else {
                continue; // unanalysable (recursion) — allowed
            };
            let known: std::collections::HashSet<_> = entries.iter().map(|e| e.sync_id).collect();
            let (trace, _) = single_thread_trace(&program, method, random_args(&mut arg_rng, &cfg));
            for a in trace {
                if let Action::Lock { sync_id, .. } = a {
                    assert!(
                        known.contains(&sync_id),
                        "seed {seed} {}: executed {sync_id} missing from table",
                        m.name
                    );
                }
            }
        }
    }
}
