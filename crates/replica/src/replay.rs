//! Deterministic replay for **passive replication** (paper §1).
//!
//! "State modifications not yet propagated to the backup replicas can be
//! applied to them by re-executing method invocations from a request
//! log. Such re-executions are consistent to the state of a failed
//! primary only if a deterministic scheduling strategy is used."
//!
//! A passive primary records two things: the delivered request stream and
//! its monitor-grant order. Replaying the requests on a backup while
//! *enforcing* the recorded per-mutex grant order reproduces the
//! primary's state exactly — regardless of which decision module the
//! primary ran, including the nondeterministic FREE baseline (once an
//! execution is recorded, it is a deterministic artefact). The
//! [`ReplayScheduler`] is essentially an LSA follower whose "leader" is
//! the log.

use dmt_core::harness::{Harness, HarnessResult};
use dmt_core::{
    SchedAction, SchedConfig, SchedEvent, SchedOutput, Scheduler, SchedulerKind, SlotMap, SyncCore,
    ThreadId,
};
use dmt_lang::{CompiledObject, MethodIdx, MutexId, RequestArgs};
use std::collections::VecDeque;
use std::sync::Arc;

/// What a passive primary persists.
#[derive(Clone, Debug)]
pub struct PrimaryLog {
    /// Delivered requests in total order (method, args, dummy).
    pub requests: Vec<(MethodIdx, RequestArgs, bool)>,
    /// Monitor grants in primary order (thread, mutex).
    pub grants: Vec<(ThreadId, MutexId)>,
    /// The state the primary reached.
    pub state_hash: u64,
}

/// Dense id for the object's `this` monitor: one past every statically
/// named mutex and every mutex a request argument carries (see
/// DESIGN.md, dense-ID invariant).
fn this_mutex<'a>(
    program: &CompiledObject,
    args: impl Iterator<Item = &'a RequestArgs>,
) -> MutexId {
    let mut bound = program.mutex_bound();
    for a in args {
        for v in a.values() {
            if let dmt_lang::Value::Mutex(m) = v {
                bound = bound.max(m.0 + 1);
            }
        }
    }
    MutexId::new(bound)
}

/// Runs the primary under `kind` and records its log.
pub fn record_primary(
    program: Arc<CompiledObject>,
    kind: SchedulerKind,
    requests: Vec<(MethodIdx, RequestArgs)>,
    dummy_method: Option<MethodIdx>,
) -> PrimaryLog {
    let cfg = SchedConfig::new(kind, dmt_core::ReplicaId::new(0));
    let this = this_mutex(&program, requests.iter().map(|(_, a)| a));
    let mut h = Harness::new(program, this, dmt_core::make_scheduler(&cfg));
    if let Some(d) = dummy_method {
        h = h.with_dummy_method(d);
    }
    for (m, a) in requests {
        h.submit(m, a);
    }
    let res: HarnessResult = h.run();
    assert!(
        !res.deadlocked,
        "primary execution deadlocked; nothing to replay"
    );
    PrimaryLog {
        requests: res.request_log,
        grants: res.lock_trace,
        state_hash: res.state.state_hash(),
    }
}

/// Replays a primary log on a fresh backup; returns the reached state
/// hash (equal to `log.state_hash` iff replay is faithful).
pub fn replay_on_backup(program: Arc<CompiledObject>, log: &PrimaryLog) -> u64 {
    let sched = ReplayScheduler::new(&log.grants);
    let this = this_mutex(&program, log.requests.iter().map(|(_, a, _)| a));
    let mut h = Harness::new(program, this, Box::new(sched));
    for (m, a, _dummy) in &log.requests {
        h.submit(*m, a.clone());
    }
    let res = h.run();
    assert!(!res.deadlocked, "replay deadlocked — log enforcement bug");
    res.state.state_hash()
}

/// Enforces a recorded per-mutex grant order (an "LSA follower of the
/// log").
pub struct ReplayScheduler {
    sync: SyncCore,
    /// Per-mutex expected grant order, indexed by the dense mutex id.
    expected: Vec<VecDeque<ThreadId>>,
    /// Gated lock requests, indexed by thread id.
    pending: SlotMap<MutexId>,
}

impl ReplayScheduler {
    pub fn new(grants: &[(ThreadId, MutexId)]) -> Self {
        let mut expected: Vec<VecDeque<ThreadId>> = Vec::new();
        for &(tid, m) in grants {
            if m.index() >= expected.len() {
                expected.resize_with(m.index() + 1, VecDeque::new);
            }
            expected[m.index()].push_back(tid);
        }
        ReplayScheduler {
            sync: SyncCore::new(false),
            expected,
            pending: SlotMap::new(),
        }
    }

    fn drain(&mut self, mutex: MutexId, out: &mut SchedOutput) {
        loop {
            if !self.sync.is_free(mutex) {
                return;
            }
            let Some(&next) = self.expected.get(mutex.index()).and_then(|q| q.front()) else {
                return;
            };
            if self.pending.get(next.index()) == Some(&mutex) {
                self.expected[mutex.index()].pop_front();
                self.pending.remove(next.index());
                let outcome = self.sync.lock(next, mutex);
                debug_assert_eq!(outcome, dmt_core::LockOutcome::Acquired);
                out.push(SchedAction::Resume(next));
            } else if self.sync.is_queued(next, mutex) {
                self.expected[mutex.index()].pop_front();
                self.sync.grant_to(next, mutex).expect("free + queued");
                out.push(SchedAction::Resume(next));
            } else {
                return;
            }
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn kind(&self) -> SchedulerKind {
        // Reported as LSA: it is the follower half of that algorithm.
        SchedulerKind::Lsa
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, .. } => out.push(SchedAction::Admit(tid)),
            SchedEvent::LockRequested { tid, mutex, .. } => {
                if self.sync.holds(tid, mutex) {
                    self.sync.lock(tid, mutex);
                    out.push(SchedAction::Resume(tid));
                } else {
                    self.pending.insert(tid.index(), mutex);
                    self.drain(mutex, out);
                }
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                self.sync.unlock(tid, mutex);
                self.drain(mutex, out);
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                self.sync.wait(tid, mutex);
                self.drain(mutex, out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { .. } => {}
            SchedEvent::NestedCompleted { tid } => out.push(SchedAction::Resume(tid)),
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid));
            }
            SchedEvent::LockInfo { .. }
            | SchedEvent::SyncIgnored { .. }
            | SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{IntExpr, MutexExpr};
    use dmt_lang::{compile, DurExpr, ObjectBuilder, Value};

    fn program() -> (Arc<CompiledObject>, MethodIdx, MethodIdx) {
        let mut ob = ObjectBuilder::new("P");
        let c = ob.cell();
        let mut m = ob.method("mix", 1);
        m.compute(DurExpr::micros(10));
        m.sync(MutexExpr::This, |b| {
            b.update(c, IntExpr::Cell(c)); // state *= 2
            b.update(c, IntExpr::Arg(0)); // state += arg
        });
        let mix = m.done();
        let noop = ob.method("noop", 0);
        let noop_idx = noop.done();
        (compile::compile(&ob.build()), mix, noop_idx)
    }

    fn requests(mix: MethodIdx, n: usize) -> Vec<(MethodIdx, RequestArgs)> {
        (0..n)
            .map(|i| (mix, RequestArgs::new(vec![Value::Int(i as i64 + 1)])))
            .collect()
    }

    #[test]
    fn replay_reproduces_primary_state_for_every_scheduler() {
        for kind in SchedulerKind::ALL {
            let (program, mix, noop) = program();
            let log = record_primary(program.clone(), kind, requests(mix, 8), Some(noop));
            let replayed = replay_on_backup(program, &log);
            assert_eq!(replayed, log.state_hash, "{kind} replay diverged");
        }
    }

    #[test]
    fn replay_includes_dummy_positions() {
        // PDS logs include dummies; the backup must recreate the same
        // thread numbering or the grant log would point at wrong threads.
        let (program, mix, noop) = program();
        let log = record_primary(
            program.clone(),
            SchedulerKind::Pds,
            requests(mix, 3),
            Some(noop),
        );
        assert!(
            log.requests.iter().any(|&(_, _, d)| d),
            "expected dummies in the log"
        );
        let replayed = replay_on_backup(program, &log);
        assert_eq!(replayed, log.state_hash);
    }

    #[test]
    fn replay_with_cv_workload() {
        let mut ob = ObjectBuilder::new("Buf");
        let count = ob.cell();
        let mut put = ob.method("put", 0);
        put.sync(MutexExpr::This, |b| {
            b.add(count, 1);
            b.notify_all(MutexExpr::This);
        });
        let put_idx = put.done();
        let mut take = ob.method("take", 0);
        take.sync_wait_until(MutexExpr::This, dmt_lang::CondExpr::CellGe(count, 1), |b| {
            b.add(count, -1);
        });
        let take_idx = take.done();
        let program = compile::compile(&ob.build());
        let reqs = vec![
            (take_idx, RequestArgs::empty()),
            (put_idx, RequestArgs::empty()),
            (take_idx, RequestArgs::empty()),
            (put_idx, RequestArgs::empty()),
        ];
        let log = record_primary(program.clone(), SchedulerKind::Mat, reqs, None);
        let replayed = replay_on_backup(program, &log);
        assert_eq!(replayed, log.state_hash);
    }

    #[test]
    fn tampered_log_is_caught() {
        let (program, mix, _) = program();
        let mut log = record_primary(program.clone(), SchedulerKind::Sat, requests(mix, 4), None);
        // Swap two grants on the same mutex: replay must reach a
        // different (order-sensitive) state.
        assert!(log.grants.len() >= 2);
        log.grants.swap(0, 1);
        let replayed = replay_on_backup(program, &log);
        assert_ne!(
            replayed, log.state_hash,
            "tampered order must change the state"
        );
    }
}
