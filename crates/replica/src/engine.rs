//! The virtual-time cluster engine.
//!
//! Simulates the paper's evaluation setting end to end: closed-loop
//! clients submit requests through the total-order layer; every replica
//! runs the same object under the same deterministic scheduler; nested
//! invocations are performed by a single designated invoker replica that
//! spreads the reply through the group (paper §2); the first replica to
//! finish a request answers the client. Per-replica CPU jitter and
//! per-link network jitter make the replicas' *physical* timelines
//! differ, which is exactly what the determinism checker needs: a
//! deterministic scheduler must produce identical traces anyway.

use crate::fault::{FaultKind, FaultPlan, FaultRecord, FaultRecordKind};
use crate::msg::{ClientScript, GcMsg, RequestId, Scenario};
use crate::trace::ExecutionTrace;
use dmt_core::{
    DenseSet, ReplicaId, SchedAction, SchedConfig, SchedEvent, SchedOutput, Scheduler,
    SchedulerKind, SlotMap, ThreadId,
};
use dmt_groupcomm::{Delivery, GroupComm, NetConfig, NodeId, Sequenced};
use dmt_lang::{
    Action, Fault, MethodIdx, MutexId, ObjectState, RequestArgs, StepOutcome, ThreadVm, VmPool,
};
use dmt_obs::{MetricsRegistry, MetricsSnapshot, TraceEvent, TraceRecord, Tracer};
use dmt_sim::{EventQueue, Histogram, LogHistogram, SimDuration, SimTime, SplitMix64};

/// Cluster-level configuration of one run.
#[derive(Clone)]
pub struct EngineConfig {
    pub scheduler: SchedulerKind,
    pub n_replicas: usize,
    pub net: NetConfig,
    pub seed: u64,
    /// Per-compute-segment CPU speed jitter (0.0 = identical replicas).
    pub cpu_jitter: f64,
    pub pds: dmt_core::PdsConfig,
    /// Safety cap on virtual time.
    pub max_time: SimDuration,
    /// Kill this replica at the given instant (failure injection).
    pub kill_at: Option<(usize, SimDuration)>,
    /// Leader-failure detection delay for LSA failover.
    pub detect_delay: SimDuration,
    /// Deliver nested-invocation *wake-ups* only while the replica has no
    /// runnable thread — an experimentation knob kept from the
    /// development of the MAT promotion rule. It is no longer needed for
    /// correctness (MAT's token now parks on suspended candidates instead
    /// of consulting the replica-dependent "is it awake" predicate), so
    /// it defaults to off; flipping it on measures what logical-time
    /// event gating costs.
    pub quiescent_delivery: bool,
    /// Record a structured trace (scheduler decisions, request
    /// lifecycle, group-comm legs, mutex releases) through
    /// [`EngineConfig::trace_sink`] — by default a bounded in-memory
    /// buffer drained into [`RunResult::trace_records`]. Off by
    /// default: the disabled path is branch-cheap and allocation-free,
    /// pinned by the dmt-bench overhead guard.
    pub trace: bool,
    /// Where trace records go when [`EngineConfig::trace`] is on: a
    /// bounded buffer (default), a flight-recorder ring, a streaming
    /// binary file, or `/dev/null`. Overflow never OOMs — drops are
    /// counted into the `trace.dropped` metric.
    pub trace_sink: dmt_obs::TraceSinkSpec,
    /// Observed-contention feedback handed to every replica's scheduler
    /// (PMAT hot-mutex serialisation). Empty = no feedback. Identical
    /// on all replicas by construction, so determinism is unaffected.
    pub hints: dmt_core::ContentionHints,
    /// Sample queue depths ([`dmt_core::DepthSample`]) after every
    /// scheduler dispatch into the metrics registry (the `figures obs`
    /// experiment). Off by default for the same reason.
    pub sample_depths: bool,
    /// Run admitted/resumed threads through the inline ready ring instead
    /// of a zero-delay calendar-queue event each (see DESIGN.md §"Batched
    /// admission"). Outcome-identical by construction — the gate only
    /// batches decision runs whose queue order is provably the ring's
    /// FIFO order — so it defaults to on; [`Self::without_batching`]
    /// exists for the differential tests and the dispatch-cost figures.
    pub batch_admission: bool,
    /// Use the calendar queue's front-slot fast path: an event pushed
    /// strictly earlier than everything pending skips the slab entirely
    /// and pops O(1) (see `dmt-sim`'s queue docs and DESIGN.md's
    /// same-timestamp fusion invariant). Outcome-identical by
    /// construction — the slot entry is the unique `(time, seq)` minimum
    /// — so it defaults to on; [`Self::without_fastpath`] is the
    /// reference mode for the fused-vs-reference differential tests.
    pub fastpath: bool,
    /// Deterministic failure schedule (crashes, recoveries, message-layer
    /// adversaries), injected as ordinary calendar-queue events at run
    /// start. Empty by default. See [`FaultPlan`] and DESIGN.md §11.
    pub faults: FaultPlan,
    /// Disable the group-comm layer's at-most-once delivery, so the
    /// duplicate-delivery adversary's copies actually reach replicas — a
    /// deliberately broken transport the determinism checker must catch.
    /// Off by default (duplicates are dropped and counted).
    pub broken_dedup: bool,
    /// Per-replica one-way latency overrides (WAN/LAN mixes): listed
    /// replicas use the given base latency instead of `net.one_way`;
    /// everyone else — and, crucially, their RNG draws — is untouched.
    pub node_latency: Vec<(usize, SimDuration)>,
    /// Worker-thread budget for sharded runs ([`crate::run_sharded`]).
    /// Purely a *parallelism* knob: the object-space partition is fixed
    /// by the scenario list, so results are byte-identical for any value
    /// (the default `1` runs every shard on the calling thread).
    pub shards: usize,
    /// Cross-shard routing table for nested invocations whose target
    /// service lives on another shard. `None` (the default, and always
    /// the case for a monolithic [`Engine::run`]) keeps every nested
    /// call local. Installed per group by the shard coordinator.
    pub remote: Option<RemoteRouting>,
}

/// Where each nested-invocation service lives when the object space is
/// partitioned into group engines, plus how a routed call executes on
/// its home shard. Shared (via `Arc`) across every group's config so the
/// table is identical everywhere by construction.
#[derive(Clone, Debug)]
pub struct RemoteRouting {
    /// The group this engine instance simulates.
    pub group: u32,
    /// `service_home[s]` = home group of [`dmt_lang::ServiceId`] `s`.
    pub service_home: std::sync::Arc<Vec<u32>>,
    /// Method a routed call invokes on the home group's object.
    pub method: MethodIdx,
    /// One-way cross-shard link latency, applied to both the call and
    /// the reply leg. Also the conservative-PDES lookahead: a message
    /// sent at `t` cannot be delivered before `t + link`, which is what
    /// lets shards advance an epoch in parallel without ever receiving
    /// an event from their past.
    pub link: SimDuration,
}

impl EngineConfig {
    pub fn new(scheduler: SchedulerKind) -> Self {
        EngineConfig {
            scheduler,
            n_replicas: 3,
            net: NetConfig::lan(),
            seed: 1,
            cpu_jitter: 0.0,
            pds: dmt_core::PdsConfig::default(),
            max_time: SimDuration::from_secs(3600),
            kill_at: None,
            detect_delay: SimDuration::from_millis(5),
            quiescent_delivery: false,
            trace: false,
            trace_sink: dmt_obs::TraceSinkSpec::default(),
            hints: dmt_core::ContentionHints::new(),
            sample_depths: false,
            batch_admission: true,
            fastpath: true,
            faults: FaultPlan::default(),
            broken_dedup: false,
            node_latency: Vec::new(),
            shards: 1,
            remote: None,
        }
    }

    /// Sets the worker-thread budget for [`crate::run_sharded`]. Results
    /// are byte-identical for every value; `1` (the default) keeps the
    /// run on the calling thread.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Reference admission semantics: every admitted/resumed thread costs
    /// its own zero-delay calendar-queue event.
    pub fn without_batching(mut self) -> Self {
        self.batch_admission = false;
        self
    }

    /// Reference dispatch semantics: every event goes through the slab
    /// calendar queue (front-slot fusion off). Used by the differential
    /// tests that pin fused == reference output byte for byte.
    pub fn without_fastpath(mut self) -> Self {
        self.fastpath = false;
        self
    }

    pub fn with_tracing(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables tracing through an explicit sink (ring / file / null /
    /// re-capped buffer).
    pub fn with_trace_sink(mut self, spec: dmt_obs::TraceSinkSpec) -> Self {
        self.trace = true;
        self.trace_sink = spec;
        self
    }

    /// Enables tracing into an in-memory buffer capped at `cap`
    /// records; overflow is dropped and counted in `trace.dropped`.
    pub fn with_trace_cap(self, cap: usize) -> Self {
        self.with_trace_sink(dmt_obs::TraceSinkSpec::Buffer { cap })
    }

    /// Installs observed-contention feedback for prediction-aware
    /// schedulers (see [`dmt_core::ContentionHints`]).
    pub fn with_hints(mut self, hints: dmt_core::ContentionHints) -> Self {
        self.hints = hints;
        self
    }

    pub fn with_depth_sampling(mut self) -> Self {
        self.sample_depths = true;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_replicas(mut self, n: usize) -> Self {
        self.n_replicas = n;
        self
    }

    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    pub fn with_cpu_jitter(mut self, j: f64) -> Self {
        self.cpu_jitter = j;
        self
    }

    pub fn with_pds(mut self, pds: dmt_core::PdsConfig) -> Self {
        self.pds = pds;
        self
    }

    pub fn with_kill(mut self, replica: usize, at: SimDuration) -> Self {
        self.kill_at = Some((replica, at));
        self
    }

    /// Installs a deterministic failure schedule (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Breaks the transport's at-most-once delivery (adversarial mode).
    pub fn with_broken_dedup(mut self) -> Self {
        self.broken_dedup = true;
        self
    }

    /// Places `replica` behind a slower (or faster) link: its hops use
    /// `one_way` as the base latency instead of the cluster-wide
    /// `net.one_way` (WAN/LAN mix scenarios).
    pub fn with_node_latency(mut self, replica: usize, one_way: SimDuration) -> Self {
        self.node_latency.push((replica, one_way));
        self
    }
}

/// Host-side cost meters for the engine hot path. Virtual time is the
/// experiment's subject; these count what the *simulator* pays per run,
/// so the figures can report simulator throughput (ns/event) alongside
/// the modelled quantities.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfCounters {
    /// Simulation events processed (event-queue pops).
    pub events: u64,
    /// Scheduler events dispatched across all replicas.
    pub sched_events: u64,
    /// Scheduler decisions applied (admit/resume/broadcast/dummy).
    pub sched_actions: u64,
    /// Host wall-clock of [`Engine::run`], nanoseconds.
    pub wall_ns: u64,
    /// Thread VMs constructed from scratch (pool misses), summed across
    /// replicas. In steady state only the warm-up admissions miss.
    pub vm_allocs: u64,
    /// Thread VMs recycled through the per-replica pools. A warm replica
    /// serves every admission from here — the checkable face of the
    /// "zero steady-state allocations" claim.
    pub vm_reuses: u64,
    /// Interpreter steps taken (one per emitted action / completion),
    /// summed over every VM of every replica.
    pub vm_steps: u64,
    /// Superinstructions executed by those steps — the fusion pass's
    /// measured (not just static) hit count.
    pub fused_steps: u64,
    /// Admitted/resumed threads run through the inline ready ring
    /// instead of their own zero-delay queue event. Each still counts in
    /// [`Self::events`] (it replaces exactly one queue pop), keeping
    /// ns/event comparable across batching modes.
    pub batched_steps: u64,
    /// Ring steps executed inline by the same-instant grant fusion in
    /// `step_thread` (a subset of [`Self::batched_steps`]): the granted
    /// thread kept stepping instead of bouncing through the `process`
    /// drain. Host-cost accounting only — the fused step is still one
    /// event, so every model-visible counter is unchanged.
    pub fused_grants: u64,
}

impl PerfCounters {
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.events as f64
        }
    }

    /// Scheduler-dispatch fan-out: scheduler events raised per simulation
    /// event. Every extra dispatch leg a code path grows (an admission
    /// round trip, a control-message echo) lands here, so the bench
    /// artifacts record it per scheduler and a guard pins its ceiling —
    /// a fan-out regression is a determinism-preserving change that
    /// would otherwise hide inside wall-clock noise.
    pub fn sched_fanout(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sched_events as f64 / self.events as f64
        }
    }

    pub fn merge(&mut self, other: &PerfCounters) {
        self.events += other.events;
        self.sched_events += other.sched_events;
        self.sched_actions += other.sched_actions;
        self.wall_ns += other.wall_ns;
        self.vm_allocs += other.vm_allocs;
        self.vm_reuses += other.vm_reuses;
        self.vm_steps += other.vm_steps;
        self.fused_steps += other.fused_steps;
        self.batched_steps += other.batched_steps;
        self.fused_grants += other.fused_grants;
    }
}

/// Enqueue→reply timestamps of one completed request, in virtual time.
/// `enqueued` is the instant the client handed the request to the
/// total-order layer; `replied` is the instant the first replica's
/// answer reaches the client (reply wire leg included). Their
/// difference is the client-observed latency — under an open-loop
/// script it includes the queueing delay a closed loop never builds up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestLatency {
    pub id: RequestId,
    pub enqueued: SimTime,
    pub replied: SimTime,
}

impl RequestLatency {
    pub fn latency(&self) -> SimDuration {
        self.replied - self.enqueued
    }
}

/// Aggregated outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-replica traces (dead replicas keep their pre-kill trace).
    pub traces: Vec<ExecutionTrace>,
    /// Client-observed response times (ms).
    pub response_times: Histogram,
    /// The same latencies in the fixed-bucket log-scale histogram
    /// (integer nanoseconds): deterministic p50/p95/p99 for the
    /// open-loop experiments.
    pub latency: LogHistogram,
    /// Per-request enqueue→reply timestamps, in completion order
    /// (virtual-time deterministic).
    pub latencies: Vec<RequestLatency>,
    /// Completed real requests (first-reply semantics).
    pub completed_requests: u64,
    /// Virtual time at which everything finished.
    pub makespan: SimTime,
    /// PDS filler traffic.
    pub dummy_requests: u64,
    /// LSA announcement traffic.
    pub ctrl_messages: u64,
    /// True if the run stalled (deadlock) or hit the time cap.
    pub deadlocked: bool,
    /// Gap between a replica kill and the next completed request.
    pub takeover_gap: Option<SimDuration>,
    /// Threads still blocked when the run ended: (replica, thread,
    /// reason). Empty on a clean run.
    pub stuck_threads: Vec<(usize, u32, String)>,
    /// Per-replica liveness at end of run (`false` = still crashed).
    pub alive: Vec<bool>,
    /// Per-replica flag: went through crash *and* catch-up at least once.
    /// Convergence for these is asserted on state hash only — their
    /// traces legitimately miss the requests executed during the outage
    /// (see [`crate::checker::check_fault_convergence`]).
    pub recovered: Vec<bool>,
    /// Fault-lifecycle log (crash / failover / deferred / recovered), in
    /// virtual-time order. Empty when no faults were injected.
    pub fault_log: Vec<FaultRecord>,
    /// Host-side cost of this run (simulator throughput meters).
    pub perf: PerfCounters,
    /// Unified metrics snapshot: engine perf counters, group-comm
    /// traffic (the former `net_stats` field, as `net.*` counters),
    /// request-latency histogram, and — when depth sampling is on — the
    /// `depth.*` queue-depth histograms. Name-sorted, merges
    /// commutatively across runs.
    pub metrics: MetricsSnapshot,
    /// Structured trace (empty unless [`EngineConfig::trace`] was set).
    pub trace_records: Vec<TraceRecord>,
}

impl RunResult {
    /// Group-comm traffic counters out of the metrics snapshot.
    pub fn net_counter(&self, which: &str) -> u64 {
        self.metrics.counter(&format!("net.{which}")).unwrap_or(0)
    }

    /// Total simulated message transmissions (submissions + broadcast
    /// fan-out legs), the paper's §3.5 network-load measure.
    pub fn net_legs(&self) -> u64 {
        self.net_counter("submissions") + self.net_counter("broadcast_legs")
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocked {
    Admission,
    Lock(MutexId),
    Wait(MutexId),
    Nested,
    /// The interpreter faulted (malformed program). The thread is parked
    /// permanently: the run ends deadlocked with this entry in
    /// [`RunResult::stuck_threads`] instead of aborting the process, and
    /// identically so on every replica (the fault is part of the
    /// deterministic execution).
    Faulted(Fault),
}

struct PendingRequest {
    method: MethodIdx,
    args: RequestArgs,
    id: Option<RequestId>,
}

/// Per-replica state. Thread ids are assigned densely from 0 in total
/// order, so every per-thread structure is a slot table indexed by
/// `tid.index()` — no hashing on the per-event path (see DESIGN.md,
/// dense-ID invariant).
struct Rep {
    /// The concrete scheduler sum type: `on_event` is a direct
    /// (inlineable) match instead of a vtable call.
    sched: dmt_core::AnyScheduler,
    state: ObjectState,
    vms: SlotMap<ThreadVm>,
    /// Reset-on-reuse free list: finished threads return their VM here,
    /// admissions recycle it (allocation-free once warm).
    vm_pool: VmPool,
    request_info: SlotMap<PendingRequest>,
    blocked: SlotMap<Blocked>,
    trace: ExecutionTrace,
    /// Per-thread count of nested calls issued locally (tid-indexed;
    /// counts persist after the thread finishes, matching call numbers).
    nested_issued: Vec<u32>,
    /// Replies delivered before the local thread issued the call
    /// (tid-indexed; the inner list is unordered — consumed by value).
    reply_buffer: SlotMap<Vec<u32>>,
    /// The call number each suspended thread is waiting on, plus the
    /// virtual duration (for failover re-issue by a new invoker).
    awaiting: SlotMap<(u32, u64)>,
    alive: bool,
    jitter: SplitMix64,
    next_tid: u32,
    /// Threads currently runnable (admitted/resumed/computing).
    running: DenseSet,
    /// Held-back total-order deliveries (quiescent-delivery mode).
    buffered: std::collections::VecDeque<(u64, GcMsg)>,
}

#[derive(Debug)]
enum Ev {
    SeqArrive(GcMsg),
    NodeArrive {
        node: usize,
        sm: Sequenced<GcMsg>,
    },
    Step {
        replica: usize,
        tid: ThreadId,
    },
    NestedDone {
        tid: ThreadId,
        call_no: u32,
        dur_ns: u64,
    },
    ClientReply {
        client: u32,
    },
    /// Open-loop submission: request `req_no` of `client` enters the
    /// total-order layer now, whatever the state of earlier requests.
    ClientSubmit {
        client: u32,
        req_no: u32,
    },
    Kill {
        replica: usize,
    },
    LeaderDetect {
        new_leader: usize,
    },
    /// Entry `idx` of the [`FaultPlan`] fires now.
    Fault {
        idx: usize,
    },
    /// A deferred recovery attempt re-checks the quiescence gate.
    TryRecover {
        replica: usize,
    },
    /// A nested invocation routed in from another group engine arrives
    /// at this shard (delivery instant = origin send time + cross-shard
    /// link). Executes as a real request through the local total-order
    /// layer; its first finish sends a [`crate::shard::ShardMsg`] reply.
    RemoteCall {
        from_group: u32,
        tid: ThreadId,
        call_no: u32,
    },
}

/// Backoff between recovery attempts while the cluster is non-quiescent.
/// Fixed (not tuned per run) so the retry cadence is part of the
/// deterministic schedule.
const RECOVERY_RETRY: SimDuration = SimDuration::from_millis(1);

/// FIFO-source id space offset for clients (replicas use their index).
const CLIENT_SRC: u64 = 1_000_000;

/// FIFO-source id space offset for cross-shard calls (keyed by origin
/// group, so each peer shard's calls stay in arrival order).
const REMOTE_SRC: u64 = 2_000_000;

/// `RequestId::client` sentinel for requests that materialise a routed
/// cross-shard call; `req_no` then indexes [`Engine::remote_calls`]
/// instead of a client script. Distinct from the dummy sentinel
/// (`u32::MAX`, which never reaches completion accounting).
const REMOTE_CLIENT: u32 = u32::MAX - 1;

/// Target-side record of one routed-in call: where to send the reply,
/// and whether the first replica already finished it (first-reply
/// dedup, the remote analogue of `ReqState::first_finish`).
struct RemoteCall {
    from_group: u32,
    tid: ThreadId,
    call_no: u32,
    done: bool,
}

struct ReqState {
    submitted: SimTime,
    first_finish: Option<SimTime>,
}

/// One full simulation. Construct, then [`Engine::run`].
pub struct Engine {
    cfg: EngineConfig,
    scenario: Scenario,
    queue: EventQueue<Ev>,
    gc: GroupComm<GcMsg>,
    reps: Vec<Rep>,
    /// Request bookkeeping, indexed `[client][req_no]` (both dense).
    req_state: Vec<SlotMap<ReqState>>,
    client_pos: Vec<usize>,
    completed_requests: u64,
    response_times: Histogram,
    latency: LogHistogram,
    latencies: Vec<RequestLatency>,
    dummy_requests: u64,
    dummy_counter: u32,
    ctrl_messages: u64,
    /// Highest nested-call number already answered per thread, to dedup
    /// failover re-issues (call numbers are issued in order per thread).
    replied_max: Vec<u32>,
    leader: usize,
    kill_time: Option<SimTime>,
    takeover_gap: Option<SimDuration>,
    rng: SplitMix64,
    perf: PerfCounters,
    /// Fault-lifecycle log (part of [`RunResult`]).
    fault_log: Vec<FaultRecord>,
    /// Replicas that completed crash + catch-up at least once.
    recovered_flags: Vec<bool>,
    /// Duplicate-delivery adversary: while `now < dup_until[n]`, every
    /// broadcast leg to replica `n` is fanned out twice, the copy
    /// trailing by `dup_copy_delay[n]`.
    dup_until: Vec<SimTime>,
    dup_copy_delay: Vec<SimDuration>,
    /// Reordering adversary: while `now < delay_until[n]`, every second
    /// leg to replica `n` (parity in `delay_flip[n]`) is delayed by
    /// `delay_extra[n]`, forcing hold-back buffering.
    delay_until: Vec<SimTime>,
    delay_extra: Vec<SimDuration>,
    delay_flip: Vec<bool>,
    /// Admission batching ring: threads admitted/resumed while no other
    /// event is due at the current instant run from here, FIFO, after the
    /// current handler — one calendar-queue drain for the whole decision
    /// run instead of one zero-delay push/pop per thread. The gate in
    /// [`Engine::schedule_step`] makes this order provably identical to
    /// the queue's (time, seq) order.
    ready: std::collections::VecDeque<(usize, ThreadId)>,
    /// Reused scheduler-output buffer for [`Engine::dispatch`]
    /// (decision recording pre-armed when tracing is on).
    scratch: SchedOutput,
    /// Reused broadcast fan-out buffer for [`GroupComm::sequence_into`].
    hops_scratch: Vec<(NodeId, SimDuration)>,
    /// Reused in-order delivery buffer for [`GroupComm::arrive_into`].
    deliv_scratch: Vec<Delivery<GcMsg>>,
    metrics: MetricsRegistry,
    tracer: Tracer,
    /// Histogram handles for queue-depth sampling (None = sampling off).
    depth_ids: Option<DepthIds>,
    /// `tracer.is_enabled() || depth_ids.is_some()`, cached so the
    /// per-dispatch observation side-channel costs one branch when off.
    observe: bool,
    /// Cross-shard messages generated this epoch, harvested by the shard
    /// coordinator at the next virtual-time barrier. Always empty when
    /// [`EngineConfig::remote`] is `None`.
    outbox: Vec<crate::shard::ShardMsg>,
    /// Routed-in calls executing locally, indexed by the `req_no` of
    /// their materialised [`RequestId`] (client = `REMOTE_CLIENT`).
    remote_calls: Vec<RemoteCall>,
}

/// An [`Engine`]'s calendar queue, detached for reuse: a shard worker
/// threads one of these through consecutive group runs so the slab,
/// bucket lists and heap scratch warmed by shard *k* serve shard *k+1*
/// without reallocating. The wrapped queue is reset (events dropped,
/// clock rewound to zero) on donation, so a reused queue's pop stream is
/// byte-identical to a fresh one's.
#[derive(Default)]
pub struct EngineQueue(EventQueue<Ev>);

impl EngineQueue {
    pub fn new() -> Self {
        EngineQueue(EventQueue::new())
    }
}

/// Dense handles of the `depth.*` histograms (see [`MetricsRegistry`]).
#[derive(Clone, Copy)]
struct DepthIds {
    admission: dmt_obs::HistId,
    lock_queued: dmt_obs::HistId,
    wait_set: dmt_obs::HistId,
    sched_queue: dmt_obs::HistId,
    total: dmt_obs::HistId,
}

impl Engine {
    pub fn new(scenario: Scenario, cfg: EngineConfig) -> Self {
        Self::with_queue(scenario, cfg, EngineQueue::new())
    }

    /// Like [`Engine::new`], but reusing a donated calendar queue (see
    /// [`EngineQueue`]). The queue is reset before use.
    pub fn with_queue(scenario: Scenario, cfg: EngineConfig, queue: EngineQueue) -> Self {
        let mut queue = queue.0;
        queue.reset();
        queue.set_fastpath(cfg.fastpath);
        assert!(
            cfg.remote.is_none() || (cfg.kill_at.is_none() && cfg.faults.events.is_empty()),
            "cross-shard routing is incompatible with fault injection: \
             failover re-issues pending nested calls from local state, \
             which cannot cover calls executing on a peer shard"
        );
        let mut rng = SplitMix64::new(cfg.seed);
        let n = cfg.n_replicas;
        let mut gc = GroupComm::new(cfg.n_replicas, cfg.net, rng.split(0).next_u64());
        gc.set_dedup(!cfg.broken_dedup);
        for &(node, one_way) in &cfg.node_latency {
            gc.set_node_latency(NodeId::new(node as u32), Some(one_way));
        }
        let reps = (0..cfg.n_replicas)
            .map(|i| {
                let sc = SchedConfig::new(cfg.scheduler, ReplicaId::new(i as u32))
                    .with_lock_table(scenario.lock_table.clone())
                    .with_pds(cfg.pds)
                    .with_leader(ReplicaId::new(0))
                    .with_hints(cfg.hints.clone());
                Rep {
                    sched: dmt_core::make_scheduler_inline(&sc),
                    state: ObjectState::for_object(&scenario.program, scenario.this_mutex()),
                    vms: SlotMap::new(),
                    vm_pool: VmPool::new(),
                    request_info: SlotMap::new(),
                    blocked: SlotMap::new(),
                    trace: ExecutionTrace::default(),
                    nested_issued: Vec::new(),
                    reply_buffer: SlotMap::new(),
                    awaiting: SlotMap::new(),
                    alive: true,
                    jitter: rng.split(100 + i as u64),
                    next_tid: 0,
                    running: DenseSet::new(),
                    buffered: std::collections::VecDeque::new(),
                }
            })
            .collect();
        let req_state = (0..scenario.clients.len())
            .map(|_| SlotMap::new())
            .collect();
        let mut metrics = MetricsRegistry::new();
        let depth_ids = cfg.sample_depths.then(|| DepthIds {
            admission: metrics.histogram("depth.admission"),
            lock_queued: metrics.histogram("depth.lock_queued"),
            wait_set: metrics.histogram("depth.wait_set"),
            sched_queue: metrics.histogram("depth.sched_queue"),
            total: metrics.histogram("depth.total"),
        });
        let tracer = if cfg.trace {
            Tracer::from_spec(&cfg.trace_sink)
        } else {
            Tracer::disabled()
        };
        let mut scratch = SchedOutput::new();
        scratch.set_recording(cfg.trace);
        let observe = tracer.is_enabled() || depth_ids.is_some();
        Engine {
            cfg,
            scenario,
            queue,
            gc,
            reps,
            req_state,
            client_pos: Vec::new(),
            completed_requests: 0,
            response_times: Histogram::new(),
            latency: LogHistogram::new(),
            latencies: Vec::new(),
            dummy_requests: 0,
            dummy_counter: 0,
            ctrl_messages: 0,
            replied_max: Vec::new(),
            leader: 0,
            kill_time: None,
            takeover_gap: None,
            rng,
            perf: PerfCounters::default(),
            fault_log: Vec::new(),
            recovered_flags: vec![false; n],
            dup_until: vec![SimTime::ZERO; n],
            dup_copy_delay: vec![SimDuration::ZERO; n],
            delay_until: vec![SimTime::ZERO; n],
            delay_extra: vec![SimDuration::ZERO; n],
            delay_flip: vec![false; n],
            ready: std::collections::VecDeque::new(),
            scratch,
            hops_scratch: Vec::new(),
            deliv_scratch: Vec::new(),
            metrics,
            tracer,
            depth_ids,
            observe,
            outbox: Vec::new(),
            remote_calls: Vec::new(),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.queue.now().as_nanos()
    }

    /// True if nested call `call_no` of `tid` already has a broadcast
    /// reply (per-thread call numbers are answered in issue order).
    fn is_replied(&self, tid: ThreadId, call_no: u32) -> bool {
        self.replied_max.get(tid.index()).copied().unwrap_or(0) >= call_no
    }

    /// Records a reply broadcast; returns false if it was a duplicate.
    fn mark_replied(&mut self, tid: ThreadId, call_no: u32) -> bool {
        let i = tid.index();
        if i >= self.replied_max.len() {
            self.replied_max.resize(i + 1, 0);
        }
        if self.replied_max[i] >= call_no {
            false
        } else {
            self.replied_max[i] = call_no;
            true
        }
    }

    /// The lowest-numbered live replica: designated nested-invocation
    /// invoker and dummy submitter.
    fn designated(&self) -> usize {
        self.reps
            .iter()
            .position(|r| r.alive)
            .expect("no replica left alive")
    }

    /// Submits through the group communication system with per-source
    /// FIFO (clients and replicas each keep their submissions in order).
    fn submit_to_gc(&mut self, source: u64, msg: GcMsg) {
        let t = self.now_ns();
        self.tracer
            .record(t, TraceRecord::NO_REPLICA, || TraceEvent::GcSubmit {
                source,
            });
        let d = self.gc.submit_delay_fifo(source, self.queue.now());
        self.queue.push_after(d, Ev::SeqArrive(msg));
    }

    /// Submits request `req_no` of `client` to the total-order layer and
    /// records its enqueue timestamp.
    fn submit_request(&mut self, client: u32, req_no: u32) {
        let c = client as usize;
        let (method, args) = self.scenario.clients[c].requests[req_no as usize].clone();
        self.req_state[c].insert(
            req_no as usize,
            ReqState {
                submitted: self.queue.now(),
                first_finish: None,
            },
        );
        self.submit_to_gc(
            CLIENT_SRC + c as u64,
            GcMsg::Request {
                id: RequestId { client, req_no },
                method,
                args,
                dummy: false,
            },
        );
    }

    /// Runs the scenario to completion.
    pub fn run(self) -> RunResult {
        self.run_returning_queue().0
    }

    /// [`Engine::run`], additionally handing back the calendar queue so
    /// a shard worker can thread it through its next group run (see
    /// [`EngineQueue`]).
    pub fn run_returning_queue(mut self) -> (RunResult, EngineQueue) {
        self.start();
        let wall_start = std::time::Instant::now();
        let cap = SimTime::ZERO + self.cfg.max_time;
        let mut deadlocked = false;
        while let Some((t, ev)) = self.queue.pop() {
            if t > cap {
                deadlocked = true;
                break;
            }
            self.process(ev);
        }
        self.perf.wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.finish(deadlocked)
    }

    /// Seeds the calendar queue: client submissions (closed-loop clients
    /// submit their first request now and chain on replies; open-loop
    /// clients get their whole arrival schedule queued up front), the
    /// kill switch, and the fault plan.
    pub(crate) fn start(&mut self) {
        self.client_pos = vec![0; self.scenario.clients.len()];
        let scripts: Vec<ClientScript> = self.scenario.clients.clone();
        for (c, script) in scripts.iter().enumerate() {
            match &script.arrivals {
                Some(schedule) => {
                    for (req_no, &at) in schedule.iter().enumerate() {
                        self.queue.push_at(
                            at,
                            Ev::ClientSubmit {
                                client: c as u32,
                                req_no: req_no as u32,
                            },
                        );
                    }
                }
                None => {
                    if !script.requests.is_empty() {
                        self.client_pos[c] = 1;
                        self.submit_request(c as u32, 0);
                    }
                }
            }
        }
        if let Some((replica, at)) = self.cfg.kill_at {
            self.queue.push_after(at, Ev::Kill { replica });
        }
        // Faults are ordinary calendar events: same (time, seq) total
        // order, same replayability, as the workload they perturb.
        for idx in 0..self.cfg.faults.events.len() {
            let at = self.cfg.faults.events[idx].at;
            self.queue.push_after(at, Ev::Fault { idx });
        }
    }

    /// Handles one popped event and drains the admission batch: every
    /// ring entry was gated on "no other event due now", so FIFO order
    /// here is exactly the (time, seq) order the queue would have
    /// produced — minus the per-thread zero-delay push/pop. Handlers may
    /// append while we drain (cascading grants); the ring is always
    /// empty by the time the caller pops the queue again.
    fn process(&mut self, ev: Ev) {
        self.perf.events += 1;
        self.handle(ev);
        while let Some((replica, tid)) = self.ready.pop_front() {
            self.perf.events += 1;
            self.perf.batched_steps += 1;
            if self.reps[replica].alive {
                self.step_thread(replica, tid);
                if self.cfg.quiescent_delivery {
                    self.try_drain(replica);
                }
            }
        }
    }

    /// Epoch execution for the shard coordinator: processes every event
    /// strictly before `limit` and stops with the queue intact.
    /// Conservative-PDES safe: any cross-shard message generated here
    /// carries a send time ≥ `now`, so its delivery (send + link) lands
    /// at or after `limit` when `limit` is chosen as
    /// `min_next_event + link` across the whole shard set.
    pub(crate) fn run_until(&mut self, limit: SimTime) {
        while self.queue.peek_time().is_some_and(|t| t < limit) {
            let (_, ev) = self.queue.pop().expect("peeked non-empty");
            self.process(ev);
        }
    }

    /// Timestamp of this engine's next pending event.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drains this epoch's cross-shard messages into the coordinator's
    /// buffer (appended in generation order, which is virtual-time order
    /// within a group).
    pub(crate) fn take_outbox(&mut self, into: &mut Vec<crate::shard::ShardMsg>) {
        into.append(&mut self.outbox);
    }

    /// Delivers a routed message from a peer shard at `msg.at + link`.
    /// Only the coordinator calls this, between epochs, in the global
    /// `(at, from_group)` order that makes queue seq assignment — and
    /// therefore the whole run — independent of worker count.
    pub(crate) fn inject(&mut self, msg: crate::shard::ShardMsg, link: SimDuration) {
        let at = msg.at + link;
        let ev = match msg.kind {
            crate::shard::ShardMsgKind::Call => Ev::RemoteCall {
                from_group: msg.from_group,
                tid: msg.tid,
                call_no: msg.call_no,
            },
            crate::shard::ShardMsgKind::Reply => Ev::NestedDone {
                tid: msg.tid,
                call_no: msg.call_no,
                dur_ns: 0,
            },
        };
        self.queue.push_at(at, ev);
    }

    /// Post-run accounting: sweeps meters, computes stuck threads and
    /// state hashes, exports the metrics snapshot, and hands back the
    /// queue for reuse. `deadlocked` is the run loop's verdict so far
    /// (time-cap overrun); incomplete request accounting is added here.
    pub(crate) fn finish(mut self, mut deadlocked: bool) -> (RunResult, EngineQueue) {
        for rep in &self.reps {
            self.perf.vm_allocs += rep.vm_pool.allocs();
            self.perf.vm_reuses += rep.vm_pool.reuses();
            // Threads still live at the end (stuck or killed replicas)
            // never went through `finish_thread`; sweep their meters here
            // so vm_steps/fused_steps are complete.
            for (_, vm) in rep.vms.iter() {
                self.perf.vm_steps += vm.steps();
                self.perf.fused_steps += vm.fused_steps();
            }
        }
        let makespan = self.queue.now();
        let total_real: u64 = self.scenario.total_requests() as u64;
        if self.completed_requests < total_real && !deadlocked {
            deadlocked = true;
        }
        for rep in &mut self.reps {
            rep.trace.state_hash = rep.state.state_hash();
        }
        let mut stuck_threads = Vec::new();
        for (i, rep) in self.reps.iter().enumerate() {
            if !rep.alive {
                continue;
            }
            for (t, why) in rep.blocked.iter() {
                stuck_threads.push((i, t as u32, format!("{why:?}")));
            }
            for &(seq, ref msg) in &rep.buffered {
                stuck_threads.push((i, u32::MAX, format!("undelivered seq {seq}: {msg:?}")));
            }
        }
        stuck_threads.sort();
        // Route everything the run measured through the registry so the
        // snapshot is the one uniform export (DESIGN.md §9). `net.*`
        // replaces the former standalone `net_stats` field.
        let net = *self.gc.stats();
        for (name, v) in [
            ("engine.events", self.perf.events),
            ("engine.sched_events", self.perf.sched_events),
            ("engine.sched_actions", self.perf.sched_actions),
            ("engine.vm_steps", self.perf.vm_steps),
            ("engine.fused_steps", self.perf.fused_steps),
            ("engine.batched_steps", self.perf.batched_steps),
            ("engine.wall_ns", self.perf.wall_ns),
            ("engine.completed_requests", self.completed_requests),
            ("engine.dummy_requests", self.dummy_requests),
            ("engine.ctrl_messages", self.ctrl_messages),
            ("net.submissions", net.submissions),
            ("net.broadcast_legs", net.broadcast_legs),
            ("net.deliveries", net.deliveries),
            ("net.dup_dropped", net.dup_dropped),
            ("net.held_back", net.held_back),
        ] {
            let id = self.metrics.counter(name);
            self.metrics.set_counter(id, v);
        }
        let lat = self.metrics.histogram("latency.request_ns");
        self.metrics.merge_histogram(lat, &self.latency);
        let makespan_g = self.metrics.gauge("engine.makespan_ns");
        self.metrics
            .set_gauge(makespan_g, makespan.as_nanos() as i64);
        // Trace accounting (only when tracing was on, so untraced runs
        // keep byte-identical metric snapshots): what was retained or
        // persisted, and what the bounded buffer/sink had to drop.
        if self.cfg.trace {
            self.tracer.finish();
            for (name, v) in [
                ("trace.recorded", self.tracer.written()),
                ("trace.dropped", self.tracer.dropped()),
            ] {
                let id = self.metrics.counter(name);
                self.metrics.set_counter(id, v);
            }
        }
        let result = RunResult {
            traces: self.reps.iter().map(|r| r.trace.clone()).collect(),
            response_times: self.response_times,
            latency: self.latency,
            latencies: self.latencies,
            completed_requests: self.completed_requests,
            makespan,
            dummy_requests: self.dummy_requests,
            ctrl_messages: self.ctrl_messages,
            deadlocked,
            takeover_gap: self.takeover_gap,
            stuck_threads,
            alive: self.reps.iter().map(|r| r.alive).collect(),
            recovered: self.recovered_flags,
            fault_log: self.fault_log,
            perf: self.perf,
            metrics: self.metrics.snapshot(),
            trace_records: self.tracer.into_records(),
        };
        (result, EngineQueue(self.queue))
    }

    /// Records host wall time for this engine's share of a sharded run
    /// (the shard worker measures around `start`/`run_until`; the
    /// monolithic [`Engine::run`] times itself).
    pub(crate) fn set_wall_ns(&mut self, ns: u64) {
        self.perf.wall_ns = ns;
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::SeqArrive(msg) => {
                let mut hops = std::mem::take(&mut self.hops_scratch);
                let sm = self.gc.sequence_into(msg, &mut hops);
                let t = self.now_ns();
                self.tracer
                    .record(t, TraceRecord::NO_REPLICA, || TraceEvent::GcSequenced {
                        seq: sm.seq,
                    });
                let now = self.queue.now();
                for &(node, d) in &hops {
                    let n = node.index();
                    // Reordering adversary: every second leg to a node
                    // under a delay window straggles, so later sequence
                    // numbers overtake it and the hold-back buffer earns
                    // its keep. Parity-based — no RNG draw consumed.
                    let mut d_eff = d;
                    if now < self.delay_until[n] {
                        self.delay_flip[n] = !self.delay_flip[n];
                        if self.delay_flip[n] {
                            d_eff += self.delay_extra[n];
                        }
                    }
                    // `sm.clone()` is a refcount bump: request args are
                    // interned behind an Arc, so per-replica fan-out does
                    // not copy argument vectors.
                    self.queue.push_after(
                        d_eff,
                        Ev::NodeArrive {
                            node: n,
                            sm: sm.clone(),
                        },
                    );
                    // Duplicate-delivery adversary: the copy trails the
                    // original by a fixed offset (again no RNG draw).
                    if now < self.dup_until[n] {
                        self.queue.push_after(
                            d_eff + self.dup_copy_delay[n],
                            Ev::NodeArrive {
                                node: n,
                                sm: sm.clone(),
                            },
                        );
                    }
                }
                self.hops_scratch = hops;
            }
            Ev::NodeArrive { node, sm } => {
                // `deliver` never re-enters `arrive_into`, so draining the
                // reused buffer before handing messages down is safe.
                let mut deliveries = std::mem::take(&mut self.deliv_scratch);
                self.gc
                    .arrive_into(NodeId::new(node as u32), sm, &mut deliveries);
                for d in deliveries.drain(..) {
                    self.deliver(node, d.seq, d.msg);
                }
                self.deliv_scratch = deliveries;
            }
            Ev::Step { replica, tid } => {
                if self.reps[replica].alive {
                    self.step_thread(replica, tid);
                    if self.cfg.quiescent_delivery {
                        self.try_drain(replica);
                    }
                }
            }
            Ev::NestedDone {
                tid,
                call_no,
                dur_ns,
            } => {
                let _ = dur_ns;
                if self.mark_replied(tid, call_no) {
                    let src = self.designated() as u64;
                    self.submit_to_gc(src, GcMsg::NestedReply { tid, call_no });
                }
            }
            Ev::ClientReply { client } => {
                // Closed loop only: a reply releases the next request.
                let c = client as usize;
                let pos = self.client_pos[c];
                if pos < self.scenario.clients[c].requests.len() {
                    self.client_pos[c] = pos + 1;
                    self.submit_request(client, pos as u32);
                }
            }
            Ev::ClientSubmit { client, req_no } => {
                self.submit_request(client, req_no);
            }
            Ev::Kill { replica } => {
                self.kill_replica(replica);
            }
            Ev::Fault { idx } => {
                let fe = self.cfg.faults.events[idx];
                match fe.kind {
                    FaultKind::Crash { replica } => self.kill_replica(replica),
                    FaultKind::Recover { replica } => self.try_recover(replica),
                    FaultKind::DuplicateWindow {
                        replica,
                        until,
                        copy_delay,
                    } => {
                        self.dup_until[replica] = SimTime::ZERO + until;
                        self.dup_copy_delay[replica] = copy_delay;
                    }
                    FaultKind::DelayWindow {
                        replica,
                        until,
                        extra,
                    } => {
                        self.delay_until[replica] = SimTime::ZERO + until;
                        self.delay_extra[replica] = extra;
                    }
                }
            }
            Ev::TryRecover { replica } => {
                self.try_recover(replica);
            }
            Ev::RemoteCall {
                from_group,
                tid,
                call_no,
            } => {
                // Materialise the routed-in call as a real request: it
                // goes through the local total-order layer like any
                // client submission, so every replica of this group
                // executes it deterministically. FIFO source is keyed by
                // origin group, preserving each peer's arrival order.
                let routing = self
                    .cfg
                    .remote
                    .as_ref()
                    .expect("remote call without routing");
                let method = routing.method;
                let idx = self.remote_calls.len() as u32;
                self.remote_calls.push(RemoteCall {
                    from_group,
                    tid,
                    call_no,
                    done: false,
                });
                self.submit_to_gc(
                    REMOTE_SRC + from_group as u64,
                    GcMsg::Request {
                        id: RequestId {
                            client: REMOTE_CLIENT,
                            req_no: idx,
                        },
                        method,
                        args: RequestArgs::empty(),
                        dummy: false,
                    },
                );
            }
            Ev::LeaderDetect { new_leader } => {
                self.leader = new_leader;
                let t = self.now_ns();
                self.tracer
                    .record(t, TraceRecord::NO_REPLICA, || TraceEvent::LeaderFailover {
                        new_leader: new_leader as u32,
                    });
                self.fault_log.push(FaultRecord {
                    at: self.queue.now(),
                    replica: new_leader,
                    kind: FaultRecordKind::LeaderFailover { new_leader },
                });
                for i in 0..self.reps.len() {
                    if !self.reps[i].alive {
                        continue;
                    }
                    self.reps[i]
                        .sched
                        .on_leader_change(ReplicaId::new(new_leader as u32));
                    let mut out = std::mem::take(&mut self.scratch);
                    self.reps[i].sched.kick(&mut out);
                    self.observe_dispatch(i, &out);
                    self.apply_actions(i, &mut out);
                    out.clear();
                    self.scratch = out;
                }
            }
        }
    }

    fn kill_replica(&mut self, replica: usize) {
        if !self.reps[replica].alive {
            return;
        }
        self.reps[replica].alive = false;
        self.gc.kill(NodeId::new(replica as u32));
        self.kill_time = Some(self.queue.now());
        let t = self.now_ns();
        self.tracer
            .record(t, replica as u32, || TraceEvent::ReplicaCrashed);
        self.fault_log.push(FaultRecord {
            at: self.queue.now(),
            replica,
            kind: FaultRecordKind::Crashed,
        });
        // Leader failover (affects LSA; harmless for the others).
        if replica == self.leader {
            let new_leader = self.designated();
            self.queue
                .push_after(self.cfg.detect_delay, Ev::LeaderDetect { new_leader });
        }
        // Nested-invocation failover: the new invoker re-issues the
        // external calls it has locally outstanding.
        let invoker = self.designated();
        let pending: Vec<(ThreadId, u32, u64)> = self.reps[invoker]
            .awaiting
            .iter()
            .map(|(i, &(call_no, dur_ns))| (ThreadId::new(i as u32), call_no, dur_ns))
            .filter(|&(tid, call_no, _)| !self.is_replied(tid, call_no))
            .collect();
        for (tid, call_no, dur_ns) in pending {
            self.queue.push_after(
                SimDuration::from_nanos(dur_ns),
                Ev::NestedDone {
                    tid,
                    call_no,
                    dur_ns,
                },
            );
        }
    }

    /// Quiescence-gated recovery: a crashed replica rejoins by cloning
    /// the designated survivor's object state (passive-replication
    /// catch-up) and re-entering the broadcast at the current sequence
    /// number. Messages sequenced during the outage were never fanned out
    /// to the dead node — the state transfer *is* the catch-up, so the
    /// donor must have processed everything sequenced so far (quiescent:
    /// no runnable, blocked, or buffered work, and its delivered count
    /// equals the global sequenced count). A non-quiescent attempt re-arms
    /// itself [`RECOVERY_RETRY`] later; both outcomes are logged, so the
    /// retry cadence is visible in [`RunResult::fault_log`].
    ///
    /// The rejoining replica gets a *fresh* scheduler configured with the
    /// current leader — sound only for kinds whose decision state is empty
    /// at quiescence (asserted via
    /// [`SchedulerKind::supports_recovery`]; DESIGN.md §11 carries the
    /// per-kind argument).
    fn try_recover(&mut self, replica: usize) {
        if self.reps[replica].alive {
            return;
        }
        assert!(
            self.cfg.scheduler.supports_recovery(),
            "{} does not support mid-run recovery (scheduler state is not \
             empty at quiescence — see DESIGN.md §11)",
            self.cfg.scheduler
        );
        let donor = self.designated();
        let quiescent = {
            let d = &self.reps[donor];
            d.running.is_empty()
                && d.blocked.is_empty()
                && d.buffered.is_empty()
                && self.gc.delivered_count(NodeId::new(donor as u32)) == self.gc.sequenced_count()
        };
        if !quiescent {
            self.fault_log.push(FaultRecord {
                at: self.queue.now(),
                replica,
                kind: FaultRecordKind::RecoveryDeferred,
            });
            self.queue
                .push_after(RECOVERY_RETRY, Ev::TryRecover { replica });
            return;
        }
        let from_seq = self.gc.sequenced_count();
        let donor_state = self.reps[donor].state.clone();
        let donor_next_tid = self.reps[donor].next_tid;
        let donor_nested = self.reps[donor].nested_issued.clone();
        let sc = SchedConfig::new(self.cfg.scheduler, ReplicaId::new(replica as u32))
            .with_lock_table(self.scenario.lock_table.clone())
            .with_pds(self.cfg.pds)
            .with_leader(ReplicaId::new(self.leader as u32))
            .with_hints(self.cfg.hints.clone());
        let rep = &mut self.reps[replica];
        // Harvest interpreter meters of the threads that died with the
        // crash before dropping their VMs, so perf totals stay complete.
        for (_, vm) in rep.vms.iter() {
            self.perf.vm_steps += vm.steps();
            self.perf.fused_steps += vm.fused_steps();
        }
        rep.sched = dmt_core::make_scheduler_inline(&sc);
        rep.state = donor_state;
        rep.next_tid = donor_next_tid;
        rep.nested_issued = donor_nested;
        rep.vms = SlotMap::new();
        rep.blocked = SlotMap::new();
        rep.request_info = SlotMap::new();
        rep.reply_buffer = SlotMap::new();
        rep.awaiting = SlotMap::new();
        rep.running = DenseSet::new();
        rep.buffered.clear();
        rep.alive = true;
        self.recovered_flags[replica] = true;
        self.gc.revive(NodeId::new(replica as u32), from_seq);
        let t = self.now_ns();
        self.tracer
            .record(t, replica as u32, || TraceEvent::ReplicaRecovered {
                from_seq,
            });
        self.fault_log.push(FaultRecord {
            at: self.queue.now(),
            replica,
            kind: FaultRecordKind::Recovered { from_seq, donor },
        });
    }

    /// Schedules an admitted/resumed thread's first step. The batching
    /// gate: the thread joins the inline ready ring only when no queue
    /// event is due at the current instant — then the ring's FIFO order
    /// *is* the (time, seq) order the queue would produce, because every
    /// later arrival at this instant gets a later sequence number. If an
    /// event is already due now (it holds an earlier seq and must run
    /// first), fall back to the reference zero-delay push, which sorts
    /// after it and before everything later. Net effect: identical
    /// execution order, one queue drain per decision run instead of one
    /// push/pop per thread.
    #[inline]
    fn schedule_step(&mut self, replica: usize, tid: ThreadId) {
        let now = self.queue.now();
        if self.cfg.batch_admission && self.queue.peek_time().is_none_or(|t| t > now) {
            self.ready.push_back((replica, tid));
        } else {
            self.queue
                .push_after(SimDuration::ZERO, Ev::Step { replica, tid });
        }
    }

    /// A thread that stayed blocked after its event leaves the runnable
    /// set (a synchronous grant re-inserted it via `Resume` already).
    /// Same-instant grant fusion: a dispatch from `step_thread` that
    /// synchronously resumed the stepping thread put it at the front of
    /// the ready ring, where the `process` drain would pop it next and
    /// re-enter `step_thread` with identical state. Popping it here and
    /// continuing the step loop skips that round trip; the ring entry is
    /// still accounted as the batched-step event it would have been, so
    /// every counter stays byte-identical. Disabled by
    /// [`EngineConfig::without_fastpath`] (the reference path for the
    /// fusion differential tests) and under quiescent delivery, whose
    /// drain hook runs between ring steps.
    #[inline]
    fn fused_continue(&mut self, replica: usize, tid: ThreadId) -> bool {
        if self.cfg.fastpath
            && !self.cfg.quiescent_delivery
            && self.ready.front() == Some(&(replica, tid))
        {
            self.ready.pop_front();
            self.perf.events += 1;
            self.perf.batched_steps += 1;
            self.perf.fused_grants += 1;
            return true;
        }
        false
    }

    fn unmark_if_blocked(&mut self, replica: usize, tid: ThreadId) {
        let rep = &mut self.reps[replica];
        if rep.blocked.contains(tid.index()) {
            rep.running.remove(tid.index());
        }
    }

    /// Quiescent-delivery mode: hand buffered messages to the scheduler
    /// one at a time, only while no thread of the replica is runnable.
    fn try_drain(&mut self, replica: usize) {
        while self.reps[replica].alive
            && self.reps[replica].running.is_empty()
            && !self.reps[replica].buffered.is_empty()
        {
            let (seq, msg) = self.reps[replica].buffered.pop_front().expect("checked");
            self.deliver(replica, seq, msg);
        }
    }

    /// In-order delivery of one total-order message at one replica.
    fn deliver(&mut self, replica: usize, seq: u64, msg: GcMsg) {
        if !self.reps[replica].alive {
            return;
        }
        let t = self.now_ns();
        self.tracer
            .record(t, replica as u32, || TraceEvent::GcDeliver { seq });
        match msg {
            GcMsg::Request {
                id,
                method,
                args,
                dummy,
            } => {
                let rep = &mut self.reps[replica];
                let tid = ThreadId::new(rep.next_tid);
                rep.next_tid += 1;
                self.tracer
                    .record(t, replica as u32, || TraceEvent::RequestArrived {
                        tid,
                        dummy,
                    });
                let rep = &mut self.reps[replica];
                rep.request_info.insert(
                    tid.index(),
                    PendingRequest {
                        method,
                        args,
                        id: (!dummy).then_some(id),
                    },
                );
                rep.blocked.insert(tid.index(), Blocked::Admission);
                self.dispatch(
                    replica,
                    SchedEvent::RequestArrived {
                        tid,
                        method,
                        request_seq: seq,
                        dummy,
                    },
                );
            }
            GcMsg::NestedReply { tid, call_no } => {
                let rep = &mut self.reps[replica];
                if self.cfg.quiescent_delivery && !rep.running.is_empty() {
                    rep.buffered
                        .push_back((seq, GcMsg::NestedReply { tid, call_no }));
                    return;
                }
                if rep.awaiting.get(tid.index()).map(|&(k, _)| k) == Some(call_no) {
                    rep.awaiting.remove(tid.index());
                    self.dispatch(replica, SchedEvent::NestedCompleted { tid });
                } else {
                    rep.reply_buffer
                        .get_or_insert_with(tid.index(), Vec::new)
                        .push(call_no);
                }
            }
            GcMsg::Ctrl { from, msg } => {
                if from.index() != replica {
                    self.dispatch(replica, SchedEvent::Control(msg));
                }
            }
        }
    }

    /// Feeds one event to a replica's scheduler and applies the actions.
    /// The output buffer is reused across events; `apply_actions` never
    /// re-enters `dispatch`, so taking it out of `self` is safe.
    fn dispatch(&mut self, replica: usize, ev: SchedEvent) {
        self.perf.sched_events += 1;
        if self.observe || self.scratch.is_recording() {
            // Observation path: the buffer is moved out so the tracing
            // side-channel can borrow the engine mutably alongside it.
            let mut out = std::mem::take(&mut self.scratch);
            debug_assert!(out.actions.is_empty());
            self.reps[replica].sched.on_event(&ev, &mut out);
            self.observe_dispatch(replica, &out);
            if !out.actions.is_empty() {
                self.apply_actions(replica, &mut out);
            }
            out.clear();
            self.scratch = out;
            return;
        }
        // Hot path: the scheduler writes into the resident scratch
        // buffer and the actions are applied in place — no buffer moves
        // per dispatch. Disjoint field borrows make this legal, and
        // `apply_scratch_actions` documents why the walk is stable.
        debug_assert!(self.scratch.actions.is_empty());
        self.reps[replica].sched.on_event(&ev, &mut self.scratch);
        if !self.scratch.actions.is_empty() {
            self.apply_scratch_actions(replica);
        }
    }

    /// Tracing/sampling side-channel of one dispatch: stamps the
    /// scheduler's decision records with virtual time and samples queue
    /// depths. Both paths are disabled by default; the decision vector is
    /// empty (and was never allocated) when recording is off, so this is
    /// two predictable branches on the hot path.
    fn observe_dispatch(&mut self, replica: usize, out: &SchedOutput) {
        if self.tracer.is_enabled() {
            let t = self.now_ns();
            for &d in out.decisions() {
                self.tracer
                    .record(t, replica as u32, || TraceEvent::Sched(d));
            }
        }
        if let Some(ids) = self.depth_ids {
            let d = self.reps[replica].sched.depths();
            self.metrics.record(ids.admission, d.admission as u64);
            self.metrics.record(ids.lock_queued, d.lock_queued as u64);
            self.metrics.record(ids.wait_set, d.wait_set as u64);
            self.metrics.record(ids.sched_queue, d.sched_queue as u64);
            self.metrics.record(ids.total, d.total() as u64);
            let t = self.now_ns();
            self.tracer
                .record(t, replica as u32, || TraceEvent::Depth(d));
        }
    }

    fn apply_actions(&mut self, replica: usize, out: &mut SchedOutput) {
        let actions = &mut out.actions;
        self.perf.sched_actions += actions.len() as u64;
        for a in actions.drain(..) {
            self.apply_one(replica, a);
        }
    }

    /// [`apply_actions`] over the in-place scratch buffer: `apply_one`
    /// never re-enters `dispatch`, so the action list is stable and can
    /// be walked by index (`SchedAction` is `Copy`) without moving the
    /// buffer out of `self` first.
    fn apply_scratch_actions(&mut self, replica: usize) {
        self.perf.sched_actions += self.scratch.actions.len() as u64;
        let mut i = 0;
        while i < self.scratch.actions.len() {
            let a = self.scratch.actions[i];
            i += 1;
            self.apply_one(replica, a);
        }
        self.scratch.actions.clear();
    }

    fn apply_one(&mut self, replica: usize, a: SchedAction) {
        match a {
            SchedAction::Admit(tid) => {
                let rep = &mut self.reps[replica];
                // The entry stays in place for completion accounting;
                // only the args are consumed by the VM start.
                let req = rep
                    .request_info
                    .get_mut(tid.index())
                    .expect("admit without request");
                let method = req.method;
                let args = std::mem::take(&mut req.args);
                let was = rep.blocked.remove(tid.index());
                debug_assert_eq!(was, Some(Blocked::Admission));
                let vm = rep
                    .vm_pool
                    .acquire(self.scenario.program.clone(), method, &args);
                rep.vms.insert(tid.index(), vm);
                rep.running.insert(tid.index());
                self.schedule_step(replica, tid);
            }
            SchedAction::Resume(tid) => {
                let rep = &mut self.reps[replica];
                match rep.blocked.remove(tid.index()) {
                    Some(Blocked::Lock(m)) | Some(Blocked::Wait(m)) => {
                        rep.trace.record_grant(tid, m);
                    }
                    Some(Blocked::Nested) => {}
                    Some(Blocked::Admission) => panic!("Resume before Admit for {tid}"),
                    Some(Blocked::Faulted(f)) => panic!("Resume for faulted thread {tid}: {f}"),
                    None => panic!("Resume for running thread {tid}"),
                }
                rep.running.insert(tid.index());
                self.schedule_step(replica, tid);
            }
            SchedAction::Broadcast(msg) => {
                self.ctrl_messages += 1;
                self.submit_to_gc(
                    replica as u64,
                    GcMsg::Ctrl {
                        from: ReplicaId::new(replica as u32),
                        msg,
                    },
                );
            }
            SchedAction::RequestDummy => {
                // Every replica's request is materialised: replicas'
                // pool states drift under jitter, so one replica may
                // legitimately need a filler the others do not.
                // Excess dummies are no-ops everywhere — the "higher
                // communication overhead" the paper prices in.
                let Some(method) = self.scenario.dummy_method else {
                    panic!("scheduler requested a dummy but the scenario has no dummy method");
                };
                self.dummy_requests += 1;
                let id = RequestId {
                    client: u32::MAX,
                    req_no: self.dummy_counter,
                };
                self.dummy_counter += 1;
                self.submit_to_gc(
                    replica as u64,
                    GcMsg::Request {
                        id,
                        method,
                        args: RequestArgs::empty(),
                        dummy: true,
                    },
                );
            }
        }
    }

    /// Steps a thread's VM until it blocks, computes, or finishes.
    fn step_thread(&mut self, replica: usize, tid: ThreadId) {
        loop {
            let rep = &mut self.reps[replica];
            if rep.blocked.contains(tid.index()) {
                rep.running.remove(tid.index());
                return;
            }
            let Some(vm) = rep.vms.get_mut(tid.index()) else {
                rep.running.remove(tid.index());
                return;
            };
            match vm.step(&mut rep.state) {
                StepOutcome::Finished => {
                    self.reps[replica].running.remove(tid.index());
                    self.finish_thread(replica, tid);
                    return;
                }
                StepOutcome::Faulted(f) => {
                    // Malformed program: park the thread for good. The run
                    // ends deadlocked with a stuck-thread report instead
                    // of aborting the process, deterministically on every
                    // replica.
                    rep.blocked.insert(tid.index(), Blocked::Faulted(f));
                    rep.running.remove(tid.index());
                    return;
                }
                StepOutcome::Action(action) => match action {
                    Action::Compute { dur_ns } => {
                        let jit = 1.0 + self.cfg.cpu_jitter * rep.jitter.next_f64();
                        let d = SimDuration::from_nanos((dur_ns as f64 * jit).round() as u64);
                        self.queue.push_after(d, Ev::Step { replica, tid });
                        return;
                    }
                    Action::Lock { sync_id, mutex } => {
                        rep.blocked.insert(tid.index(), Blocked::Lock(mutex));
                        self.dispatch(
                            replica,
                            SchedEvent::LockRequested {
                                tid,
                                sync_id,
                                mutex,
                            },
                        );
                        self.unmark_if_blocked(replica, tid);
                        if self.fused_continue(replica, tid) {
                            continue;
                        }
                        return;
                    }
                    Action::Unlock { sync_id, mutex } => {
                        // Engine-level release stamp (closes the Grant
                        // span for the contention profiler) — recorded
                        // before the scheduler reacts, so the next
                        // Grant on this mutex sorts after the release.
                        let t = self.queue.now().as_nanos();
                        self.tracer
                            .record(t, replica as u32, || TraceEvent::MutexReleased {
                                tid,
                                mutex,
                            });
                        self.dispatch(
                            replica,
                            SchedEvent::Unlocked {
                                tid,
                                sync_id,
                                mutex,
                            },
                        );
                    }
                    Action::Wait { mutex } => {
                        rep.blocked.insert(tid.index(), Blocked::Wait(mutex));
                        // A wait surrenders the monitor: stamp the
                        // release; re-acquisition arrives later as
                        // Grant { from_wait: true }.
                        let t = self.queue.now().as_nanos();
                        self.tracer
                            .record(t, replica as u32, || TraceEvent::MutexReleased {
                                tid,
                                mutex,
                            });
                        self.dispatch(replica, SchedEvent::WaitCalled { tid, mutex });
                        self.unmark_if_blocked(replica, tid);
                        if self.fused_continue(replica, tid) {
                            continue;
                        }
                        return;
                    }
                    Action::Notify { mutex, all } => {
                        self.dispatch(replica, SchedEvent::NotifyCalled { tid, mutex, all });
                    }
                    Action::Nested { service, dur_ns } => {
                        let call_no = {
                            let i = tid.index();
                            if i >= rep.nested_issued.len() {
                                rep.nested_issued.resize(i + 1, 0);
                            }
                            rep.nested_issued[i] += 1;
                            rep.nested_issued[i]
                        };
                        rep.blocked.insert(tid.index(), Blocked::Nested);
                        // Reply already here (this replica is behind)?
                        let buffered = match rep.reply_buffer.get_mut(tid.index()) {
                            Some(buf) => match buf.iter().position(|&c| c == call_no) {
                                Some(p) => {
                                    buf.swap_remove(p);
                                    true
                                }
                                None => false,
                            },
                            None => false,
                        };
                        if !buffered {
                            rep.awaiting.insert(tid.index(), (call_no, dur_ns));
                        }
                        self.dispatch(replica, SchedEvent::NestedStarted { tid });
                        if replica == self.designated() && !self.is_replied(tid, call_no) {
                            // A service homed on another shard turns the
                            // invocation into a routed message instead of
                            // a local timer; the reply comes back through
                            // the coordinator as the same `NestedDone`.
                            let remote_home = self.cfg.remote.as_ref().and_then(|r| {
                                let home = r.service_home[service.index()];
                                (home != r.group).then_some(home)
                            });
                            match remote_home {
                                Some(home) => {
                                    let from_group =
                                        self.cfg.remote.as_ref().expect("checked").group;
                                    self.outbox.push(crate::shard::ShardMsg {
                                        at: self.queue.now(),
                                        from_group,
                                        to_group: home,
                                        tid,
                                        call_no,
                                        kind: crate::shard::ShardMsgKind::Call,
                                    });
                                }
                                None => self.queue.push_after(
                                    SimDuration::from_nanos(dur_ns),
                                    Ev::NestedDone {
                                        tid,
                                        call_no,
                                        dur_ns,
                                    },
                                ),
                            }
                        }
                        if buffered {
                            self.dispatch(replica, SchedEvent::NestedCompleted { tid });
                        }
                        self.unmark_if_blocked(replica, tid);
                        if self.fused_continue(replica, tid) {
                            continue;
                        }
                        return;
                    }
                    Action::LockInfo { sync_id, mutex } => {
                        self.dispatch(
                            replica,
                            SchedEvent::LockInfo {
                                tid,
                                sync_id,
                                mutex,
                            },
                        );
                    }
                    Action::Ignore { sync_id } => {
                        self.dispatch(replica, SchedEvent::SyncIgnored { tid, sync_id });
                    }
                },
            }
        }
    }

    fn finish_thread(&mut self, replica: usize, tid: ThreadId) {
        let now = self.queue.now();
        let rep = &mut self.reps[replica];
        if let Some(vm) = rep.vms.remove(tid.index()) {
            // Harvest the interpreter meters before reset-on-reuse wipes
            // them (still-live VMs are swept at end of run instead).
            self.perf.vm_steps += vm.steps();
            self.perf.fused_steps += vm.fused_steps();
            rep.vm_pool.release(vm);
        }
        rep.trace.finished_threads += 1;
        let req = rep.request_info.remove(tid.index()).and_then(|r| r.id);
        self.tracer.record(now.as_nanos(), replica as u32, || {
            TraceEvent::RequestFinished { tid }
        });
        self.dispatch(replica, SchedEvent::ThreadFinished { tid });
        // A routed-in call finished: first finish answers the origin
        // shard (the remote analogue of first-reply semantics below).
        // The reply is a coordinator message, not a client reply — no
        // latency sample, no closed-loop chaining.
        if let Some(id) = req.filter(|id| id.client == REMOTE_CLIENT) {
            let rc = &mut self.remote_calls[id.req_no as usize];
            if !rc.done {
                rc.done = true;
                let (from_group, r_tid, r_call) = (rc.from_group, rc.tid, rc.call_no);
                let group = self.cfg.remote.as_ref().expect("routed call").group;
                self.outbox.push(crate::shard::ShardMsg {
                    at: now,
                    from_group: group,
                    to_group: from_group,
                    tid: r_tid,
                    call_no: r_call,
                    kind: crate::shard::ShardMsgKind::Reply,
                });
            }
            return;
        }
        // First-reply semantics: the fastest replica answers the client.
        if let Some(id) = req {
            let reply_leg = self.reply_latency();
            let st = self.req_state[id.client as usize]
                .get_mut(id.req_no as usize)
                .expect("request state exists");
            if st.first_finish.is_none() {
                st.first_finish = Some(now);
                let replied = now + reply_leg;
                let rt = replied - st.submitted;
                self.tracer.record(replied.as_nanos(), replica as u32, || {
                    TraceEvent::RequestReplied { tid }
                });
                self.completed_requests += 1;
                if let (Some(kt), None) = (self.kill_time, self.takeover_gap) {
                    if now >= kt {
                        self.takeover_gap = Some(now - kt);
                    }
                }
                self.response_times.add(rt.as_millis_f64());
                self.latency.record_duration(rt);
                self.latencies.push(RequestLatency {
                    id,
                    enqueued: st.submitted,
                    replied,
                });
                // Open-loop clients submit on their schedule; only the
                // closed loop chains request `k+1` on reply `k`.
                if !self.scenario.clients[id.client as usize].is_open_loop() {
                    self.queue
                        .push_after(reply_leg, Ev::ClientReply { client: id.client });
                }
            }
        }
    }

    fn reply_latency(&mut self) -> SimDuration {
        let u = self.rng.next_f64();
        let base = self.cfg.net.one_way.as_nanos() as f64;
        SimDuration::from_nanos((base * (1.0 + self.cfg.net.jitter * u)).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ClientScript;
    use dmt_lang::ast::{IntExpr, MutexExpr};
    use dmt_lang::{compile, DurExpr, ObjectBuilder, ServiceId, Value};

    fn counter_scenario(n_clients: usize, reqs_per_client: usize) -> Scenario {
        let mut ob = ObjectBuilder::new("Counter");
        let c = ob.cell();
        let mut m = ob.method("inc", 1);
        m.compute(DurExpr::micros(100));
        m.sync(MutexExpr::This, |b| {
            b.update(c, IntExpr::Arg(0));
        });
        let inc = m.done();
        let noop = ob.method("noop", 0);
        let noop_idx = noop.done();
        let program = compile::compile(&ob.build());
        let clients = (0..n_clients)
            .map(|_| {
                ClientScript::repeated(
                    inc,
                    (0..reqs_per_client)
                        .map(|i| RequestArgs::new(vec![Value::Int(i as i64 + 1)]))
                        .collect(),
                )
            })
            .collect();
        Scenario::new(program, clients).with_dummy_method(noop_idx)
    }

    fn run(kind: SchedulerKind, scenario: Scenario, seed: u64) -> RunResult {
        Engine::new(
            scenario,
            EngineConfig::new(kind)
                .with_seed(seed)
                .with_cpu_jitter(0.05),
        )
        .run()
    }

    #[test]
    fn all_schedulers_complete_the_counter_scenario() {
        for kind in SchedulerKind::ALL {
            let res = run(kind, counter_scenario(4, 5), 3);
            assert!(!res.deadlocked, "{kind} stalled");
            assert_eq!(res.completed_requests, 20, "{kind}");
            assert_eq!(res.response_times.len(), 20);
            // Sum of 1..=5 per client × 4 clients = 60 on every replica.
            for tr in &res.traces {
                assert_eq!(
                    tr.finished_threads,
                    20 + if kind == SchedulerKind::Pds {
                        res.dummy_requests
                    } else {
                        0
                    }
                );
            }
        }
    }

    #[test]
    fn replicas_share_identical_state_for_deterministic_schedulers() {
        for kind in SchedulerKind::DETERMINISTIC {
            let res = run(kind, counter_scenario(3, 4), 11);
            assert!(!res.deadlocked, "{kind}");
            let h0 = res.traces[0].state_hash;
            for tr in &res.traces[1..] {
                assert_eq!(tr.state_hash, h0, "{kind} replica state diverged");
            }
        }
    }

    #[test]
    fn nested_invocations_route_through_the_invoker() {
        let mut ob = ObjectBuilder::new("N");
        let c = ob.cell();
        let mut m = ob.method("work", 0);
        m.nested(ServiceId::new(0), DurExpr::millis(2));
        m.sync(MutexExpr::This, |b| {
            b.add(c, 1);
        });
        let work = m.done();
        let program = compile::compile(&ob.build());
        let scenario = Scenario::new(
            program,
            vec![ClientScript::repeated(work, vec![RequestArgs::empty(); 3])],
        );
        let res = run(SchedulerKind::Sat, scenario, 5);
        assert!(!res.deadlocked);
        assert_eq!(res.completed_requests, 3);
        // Response time must include the nested round trips (≥ 2 ms).
        assert!(res.response_times.mean() >= 2.0);
    }

    #[test]
    fn makespan_and_throughput_accounting() {
        let res = run(SchedulerKind::Seq, counter_scenario(2, 3), 9);
        assert!(res.makespan > SimTime::ZERO);
        assert_eq!(res.completed_requests, 6);
        assert!(res.net_counter("deliveries") > 0);
    }

    #[test]
    fn lsa_broadcasts_control_traffic() {
        let res = run(SchedulerKind::Lsa, counter_scenario(3, 3), 13);
        assert!(!res.deadlocked);
        assert!(res.ctrl_messages > 0, "LSA must announce grants");
        let res_mat = run(SchedulerKind::Mat, counter_scenario(3, 3), 13);
        assert_eq!(res_mat.ctrl_messages, 0, "MAT needs no control traffic");
    }

    #[test]
    fn pds_uses_dummies_when_starved() {
        // One slow client, big pool: dummies must appear.
        let res = run(SchedulerKind::Pds, counter_scenario(1, 3), 17);
        assert!(!res.deadlocked);
        assert!(res.dummy_requests > 0);
    }

    #[test]
    fn replica_kill_does_not_stop_service() {
        let scenario = counter_scenario(3, 6);
        let cfg = EngineConfig::new(SchedulerKind::Mat)
            .with_seed(7)
            .with_kill(2, SimDuration::from_millis(2));
        let res = Engine::new(scenario, cfg).run();
        assert!(!res.deadlocked);
        assert_eq!(res.completed_requests, 18);
        // Survivors agree.
        assert_eq!(res.traces[0].state_hash, res.traces[1].state_hash);
    }

    #[test]
    fn lsa_leader_kill_fails_over() {
        let scenario = counter_scenario(3, 8);
        let cfg = EngineConfig::new(SchedulerKind::Lsa)
            .with_seed(7)
            .with_kill(0, SimDuration::from_millis(3));
        let res = Engine::new(scenario, cfg).run();
        assert!(!res.deadlocked, "LSA must survive leader failure");
        assert_eq!(res.completed_requests, 24);
        assert!(res.takeover_gap.is_some());
        assert_eq!(res.traces[1].state_hash, res.traces[2].state_hash);
    }

    #[test]
    fn crash_and_recover_reconverges_to_identical_state() {
        use crate::fault::{FaultPlan, FaultRecordKind};
        let scenario = counter_scenario(3, 6);
        let plan = FaultPlan::new()
            .crash(SimDuration::from_millis(2), 2)
            .recover(SimDuration::from_millis(4), 2);
        let cfg = EngineConfig::new(SchedulerKind::Mat)
            .with_seed(7)
            .with_faults(plan);
        let res = Engine::new(scenario, cfg).run();
        assert!(!res.deadlocked);
        assert_eq!(res.completed_requests, 18);
        assert_eq!(res.alive, vec![true, true, true]);
        assert_eq!(res.recovered, vec![false, false, true]);
        // All three replicas — including the recovered one — end with the
        // same state hash.
        assert_eq!(res.traces[0].state_hash, res.traces[1].state_hash);
        assert_eq!(res.traces[0].state_hash, res.traces[2].state_hash);
        // Lifecycle log: a crash, then (possibly deferred) a recovery.
        assert!(matches!(res.fault_log[0].kind, FaultRecordKind::Crashed));
        let rec = res
            .fault_log
            .iter()
            .find(|r| matches!(r.kind, FaultRecordKind::Recovered { .. }))
            .expect("recovery must complete");
        assert_eq!(rec.replica, 2);
    }

    #[test]
    fn recovery_is_deterministic_across_reruns() {
        use crate::fault::FaultPlan;
        let mk = || {
            let plan = FaultPlan::new()
                .crash(SimDuration::from_millis(1), 1)
                .recover(SimDuration::from_millis(3), 1);
            Engine::new(
                counter_scenario(3, 5),
                EngineConfig::new(SchedulerKind::Sat)
                    .with_seed(11)
                    .with_cpu_jitter(0.2)
                    .with_faults(plan),
            )
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.fault_log, b.fault_log, "fault timeline must replay");
        assert_eq!(a.makespan, b.makespan);
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            assert_eq!(ta.state_hash, tb.state_hash);
        }
    }

    #[test]
    #[should_panic(expected = "does not support mid-run recovery")]
    fn recovery_under_pds_is_rejected() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new()
            .crash(SimDuration::from_millis(1), 2)
            .recover(SimDuration::from_millis(2), 2);
        let _ = Engine::new(
            counter_scenario(2, 8),
            EngineConfig::new(SchedulerKind::Pds)
                .with_seed(3)
                .with_faults(plan),
        )
        .run();
    }

    #[test]
    fn duplicate_adversary_is_masked_by_dedup() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new().duplicate_window(
            SimDuration::ZERO,
            SimDuration::from_secs(10),
            1,
            SimDuration::from_micros(120),
        );
        let res = Engine::new(
            counter_scenario(3, 5),
            EngineConfig::new(SchedulerKind::Mat)
                .with_seed(9)
                .with_faults(plan),
        )
        .run();
        assert!(!res.deadlocked);
        assert!(
            res.net_counter("dup_dropped") > 0,
            "adversary must actually generate duplicates"
        );
        assert_eq!(res.traces[0].state_hash, res.traces[1].state_hash);
        assert_eq!(res.traces[0].state_hash, res.traces[2].state_hash);
    }

    #[test]
    fn reorder_adversary_exercises_holdback_and_converges() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new().delay_window(
            SimDuration::ZERO,
            SimDuration::from_secs(10),
            0,
            SimDuration::from_millis(2),
        );
        let res = Engine::new(
            counter_scenario(3, 5),
            EngineConfig::new(SchedulerKind::Seq)
                .with_seed(21)
                .with_faults(plan),
        )
        .run();
        assert!(!res.deadlocked);
        assert!(
            res.net_counter("held_back") > 0,
            "straggler legs must force hold-back buffering"
        );
        assert_eq!(res.traces[0].state_hash, res.traces[1].state_hash);
        assert_eq!(res.traces[0].state_hash, res.traces[2].state_hash);
    }

    /// The counter scenario rebuilt with an open-loop arrival schedule.
    fn open_loop_counter(n_clients: usize, reqs: usize, gap: SimDuration) -> Scenario {
        let closed = counter_scenario(n_clients, reqs);
        let clients = closed
            .clients
            .iter()
            .enumerate()
            .map(|(c, script)| {
                let arrivals = (0..reqs)
                    .map(|k| SimTime::ZERO + gap * (c + k * n_clients + 1) as u64)
                    .collect();
                ClientScript::open_loop(script.requests.clone(), arrivals)
            })
            .collect();
        Scenario { clients, ..closed }
    }

    #[test]
    fn open_loop_completes_and_stamps_every_request() {
        let gap = SimDuration::from_micros(50);
        for kind in SchedulerKind::ALL {
            let res = run(kind, open_loop_counter(3, 4, gap), 5);
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.completed_requests, 12, "{kind}");
            assert_eq!(res.latencies.len(), 12, "{kind}");
            assert_eq!(res.latency.count(), 12, "{kind}");
            for rl in &res.latencies {
                // Enqueue stamps must match the arrival schedule exactly.
                let slot = rl.id.client as usize + rl.id.req_no as usize * 3 + 1;
                assert_eq!(rl.enqueued, SimTime::ZERO + gap * slot as u64, "{kind}");
                assert!(rl.replied > rl.enqueued, "{kind}");
            }
        }
    }

    #[test]
    fn open_loop_builds_queueing_delay_where_closed_loop_cannot() {
        // Submit 8 requests (1 client) essentially at once: under SEQ the
        // k-th request waits for k-1 predecessors, so open-loop latency
        // must grow monotonically far beyond the closed-loop mean.
        let res = run(
            SchedulerKind::Seq,
            open_loop_counter(1, 8, SimDuration::from_nanos(10)),
            5,
        );
        assert!(!res.deadlocked);
        let lat: Vec<u64> = res
            .latencies
            .iter()
            .map(|l| l.latency().as_nanos())
            .collect();
        assert!(
            lat.windows(2).all(|w| w[1] > w[0]),
            "latency must grow: {lat:?}"
        );
        // Each queued predecessor adds ≥ its 100 µs compute segment.
        assert!(
            lat[7] - lat[0] >= 7 * 90_000,
            "tail request must queue behind predecessors: {lat:?}"
        );
        let closed = run(SchedulerKind::Seq, counter_scenario(1, 8), 5);
        assert!(res.response_times.mean() > closed.response_times.mean());
    }

    #[test]
    fn open_loop_latencies_are_deterministic() {
        let gap = SimDuration::from_micros(20);
        let a = run(SchedulerKind::Mat, open_loop_counter(3, 5, gap), 9);
        let b = run(SchedulerKind::Mat, open_loop_counter(3, 5, gap), 9);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.latency.p99_ns(), b.latency.p99_ns());
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let a = run(SchedulerKind::Mat, counter_scenario(3, 4), 21);
        let b = run(SchedulerKind::Mat, counter_scenario(3, 4), 21);
        assert_eq!(a.traces[0].lock_order, b.traces[0].lock_order);
        assert_eq!(a.response_times.mean(), b.response_times.mean());
        assert_eq!(a.makespan, b.makespan);
    }
}
