//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a *schedule* of failures in virtual time: replica
//! crashes, quiescence-gated recoveries, duplicate-delivery and
//! reordering adversaries on the message layer. The engine turns each
//! entry into an ordinary calendar-queue event at construction time, so
//! faults obey the same `(time, seq)` total order as every other event —
//! a fault schedule is exactly as replayable and byte-stable as the
//! workload it perturbs (DESIGN.md §11, "injection as events").
//!
//! Nothing here consults a wall clock or an RNG of its own: a plan is a
//! plain value, and two runs with the same `(scenario, config, plan)`
//! triple are bit-identical. The adversary windows deliberately avoid
//! fresh randomness too (fixed extra delays, parity-based reordering), so
//! enabling them never perturbs the latency draws of unaffected hops.

use dmt_sim::{SimDuration, SimTime};

/// What happens at one instant of a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Replica `replica` crashes: fenced off the broadcast, threads
    /// frozen, LSA leader failover triggered if it led. Identical to the
    /// legacy [`crate::EngineConfig::with_kill`] path.
    Crash { replica: usize },
    /// Replica `replica` rejoins via passive-replication catch-up: the
    /// engine waits for cluster quiescence (retrying on a fixed backoff),
    /// clones the designated survivor's object state, and re-admits the
    /// replica to the broadcast at the current sequence number. Requires
    /// a scheduler kind whose
    /// [`dmt_core::SchedulerKind::supports_recovery`] is true.
    Recover { replica: usize },
    /// From this instant until `until` (absolute virtual time), every
    /// broadcast leg towards `replica` is delivered twice: the duplicate
    /// copy trails the original by `copy_delay`. With at-most-once
    /// delivery (the default) duplicates are dropped and counted; with
    /// `EngineConfig::with_broken_dedup` they reach the replica — the
    /// divergence the determinism checker must flag.
    DuplicateWindow {
        replica: usize,
        until: SimDuration,
        copy_delay: SimDuration,
    },
    /// From this instant until `until`, every *second* broadcast leg
    /// towards `replica` is delayed by `extra`, forcing out-of-order
    /// arrivals that exercise the hold-back buffer (counted in
    /// `NetStats::held_back`). The parity rule keeps the perturbation
    /// deterministic without consuming RNG draws.
    DelayWindow {
        replica: usize,
        until: SimDuration,
        extra: SimDuration,
    },
}

impl FaultKind {
    /// The replica the fault targets.
    pub fn replica(&self) -> usize {
        match *self {
            FaultKind::Crash { replica }
            | FaultKind::Recover { replica }
            | FaultKind::DuplicateWindow { replica, .. }
            | FaultKind::DelayWindow { replica, .. } => replica,
        }
    }
}

/// One scheduled fault: `kind` fires `at` nanoseconds after run start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: SimDuration,
    pub kind: FaultKind,
}

/// A deterministic failure schedule, built with the fluent helpers and
/// handed to [`crate::EngineConfig::with_faults`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Crash `replica` at `at`.
    pub fn crash(mut self, at: SimDuration, replica: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Crash { replica },
        });
        self
    }

    /// Begin recovery of `replica` at `at` (completes at the first
    /// quiescent instant at or after `at`).
    pub fn recover(mut self, at: SimDuration, replica: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Recover { replica },
        });
        self
    }

    /// A duplicate-delivery adversary against `replica` over
    /// `[at, at + len)`, duplicates trailing by `copy_delay`.
    pub fn duplicate_window(
        mut self,
        at: SimDuration,
        len: SimDuration,
        replica: usize,
        copy_delay: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DuplicateWindow {
                replica,
                until: at + len,
                copy_delay,
            },
        });
        self
    }

    /// A reordering adversary against `replica` over `[at, at + len)`:
    /// every second leg towards it is delayed by `extra`.
    pub fn delay_window(
        mut self,
        at: SimDuration,
        len: SimDuration,
        replica: usize,
        extra: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DelayWindow {
                replica,
                until: at + len,
                extra,
            },
        });
        self
    }

    /// A leader-failover storm: `rounds` alternating crash/recover cycles
    /// of replicas 0 and 1 starting at `start`, each outage lasting
    /// `outage` with `gap` between recovery and the next crash. Because
    /// the engine's designated leader is always the lowest live replica,
    /// every crash of the current lowest replica forces a failover —
    /// round `k` kills replica `k % 2`, so leadership ping-pongs between
    /// 0 and 1. Requires ≥ 3 replicas so a survivor always remains.
    pub fn leader_storm(
        mut self,
        start: SimDuration,
        outage: SimDuration,
        gap: SimDuration,
        rounds: usize,
    ) -> Self {
        let mut t = start;
        for k in 0..rounds {
            let victim = k % 2;
            self = self.crash(t, victim);
            self = self.recover(t + outage, victim);
            t = t + outage + gap;
        }
        self
    }
}

/// What a lifecycle entry in [`crate::RunResult::fault_log`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultRecordKind {
    /// The replica went down (plan entry or legacy `with_kill`).
    Crashed,
    /// A recovery attempt found the cluster non-quiescent and re-armed
    /// itself one retry interval later.
    RecoveryDeferred,
    /// The replica completed catch-up: state cloned from `donor`,
    /// delivery resumed at sequence number `from_seq`.
    Recovered { from_seq: u64, donor: usize },
    /// The cluster switched its LSA leader to `new_leader`.
    LeaderFailover { new_leader: usize },
}

/// One fault-lifecycle record, stamped with virtual time. The log is
/// part of [`crate::RunResult`], so golden tests can assert the *timing*
/// of crash → detect → failover → catch-up, not just the end state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    pub at: SimTime,
    pub replica: usize,
    pub kind: FaultRecordKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .crash(SimDuration::from_nanos(5 * MS), 2)
            .recover(SimDuration::from_nanos(9 * MS), 2)
            .duplicate_window(
                SimDuration::from_nanos(MS),
                SimDuration::from_nanos(3 * MS),
                1,
                SimDuration::from_nanos(MS / 2),
            );
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0].kind, FaultKind::Crash { replica: 2 });
        assert_eq!(plan.events[1].kind, FaultKind::Recover { replica: 2 });
        match plan.events[2].kind {
            FaultKind::DuplicateWindow { replica, until, .. } => {
                assert_eq!(replica, 1);
                assert_eq!(until, SimDuration::from_nanos(4 * MS));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leader_storm_alternates_victims() {
        let plan = FaultPlan::new().leader_storm(
            SimDuration::from_nanos(2 * MS),
            SimDuration::from_nanos(MS),
            SimDuration::from_nanos(MS),
            4,
        );
        // 4 rounds × (crash + recover).
        assert_eq!(plan.events.len(), 8);
        let victims: Vec<usize> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { replica } => Some(replica),
                _ => None,
            })
            .collect();
        assert_eq!(victims, vec![0, 1, 0, 1]);
        // Every crash precedes its recovery.
        for pair in plan.events.chunks(2) {
            assert!(pair[0].at < pair[1].at);
        }
    }

    #[test]
    fn plans_are_plain_comparable_values() {
        let a = FaultPlan::new().crash(SimDuration::from_nanos(MS), 0);
        let b = FaultPlan::new().crash(SimDuration::from_nanos(MS), 0);
        assert_eq!(a, b);
        assert!(FaultPlan::new().is_empty());
        assert!(!a.is_empty());
        assert_eq!(a.events[0].kind.replica(), 0);
    }
}
