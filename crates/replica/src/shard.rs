//! Sharded execution: partition the object space into group engines,
//! run them on parallel workers, merge deterministically.
//!
//! A *group* is one partition of the object space — its own [`Engine`]
//! with its own scheduler instances, calendar event queue, VM pools and
//! tracer/metrics registry. Groups never share mutable state, so they
//! run race-free on any number of worker threads ([`std::thread::scope`]),
//! exactly the fork/join shape of deterministic-spaces systems. The
//! worker count ([`EngineConfig::shards`]) is *pure parallelism*: every
//! byte of the result is fixed by the scenario list and config alone.
//!
//! Two execution paths:
//!
//! * **Independent groups** (no [`ShardRouting`]): each group is a closed
//!   simulation. A worker runs its groups back to back, threading one
//!   [`EngineQueue`] through them (reset between runs) so the calendar
//!   slab stays warm. Determinism is per-group purity: a group's result
//!   is a function of `(scenario, cfg, group seed)` only.
//! * **Routed groups** ([`ShardRouting`] present): nested invocations
//!   whose target service is homed on another group become typed
//!   [`ShardMsg`]s, exchanged at virtual-time barriers under a
//!   conservative-PDES epoch protocol. The epoch boundary is
//!   `min(next event over all groups) + link`: any message sent during
//!   the epoch is delivered no earlier than the boundary, so no group
//!   ever receives an event from its past. Boundaries derive only from
//!   global queue state — independent of worker count.
//!
//! Output streams merge under the total order `(virtual time, group id,
//! within-group seq)`: latencies sort by `(replied, group)` with stable
//! within-group completion order, traces via
//! [`dmt_obs::merge_group_traces`], metrics/perf by commutative
//! aggregation. See DESIGN.md §12.

use crate::engine::{Engine, EngineConfig, EngineQueue, PerfCounters, RemoteRouting, RunResult};
use crate::msg::Scenario;
use dmt_core::ThreadId;
use dmt_lang::MethodIdx;
use dmt_obs::MetricsSnapshot;
use dmt_sim::{Histogram, LogHistogram, SimDuration, SimTime};

use crate::engine::RequestLatency;

/// A typed cross-shard message, harvested from group outboxes at each
/// virtual-time barrier and injected in global `(at, from_group)` order
/// (generation order breaks remaining ties, preserved by stable sort).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMsg {
    /// Virtual send instant at the origin group.
    pub at: SimTime,
    pub from_group: u32,
    pub to_group: u32,
    /// Origin thread awaiting the nested reply.
    pub tid: ThreadId,
    /// Origin per-thread nested-call number.
    pub call_no: u32,
    pub kind: ShardMsgKind,
}

/// What a [`ShardMsg`] carries: the call leg or the first-finish reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMsgKind {
    Call,
    Reply,
}

/// Cluster-wide routing for cross-shard nested invocations: which group
/// each service lives on, what a routed call executes there, and the
/// link latency that doubles as conservative-PDES lookahead.
#[derive(Clone, Debug)]
pub struct ShardRouting {
    /// `service_home[s]` = home group of service `s`.
    pub service_home: std::sync::Arc<Vec<u32>>,
    /// Method a routed call invokes on its home group's object.
    pub method: MethodIdx,
    /// One-way cross-shard link latency (must be positive: it is the
    /// lookahead that lets shards advance in parallel).
    pub link: SimDuration,
}

/// Merged outcome of one sharded run. Per-group results are retained in
/// group order (byte-identical to a monolithic run of the same group
/// with seed `cfg.seed + g`); the merged views are pure functions of
/// them, so the whole struct is worker-count independent — except
/// [`ShardedRunResult::wall_ns`] and the per-group `perf.wall_ns`
/// meters, which measure the host.
#[derive(Debug)]
pub struct ShardedRunResult {
    /// Per-group results, indexed by group id.
    pub groups: Vec<RunResult>,
    /// All groups' client latencies under the total order
    /// `(replied, group, within-group completion order)`.
    pub latencies: Vec<(u32, RequestLatency)>,
    /// Merged client-observed response times (ms).
    pub response_times: Histogram,
    /// Merged log-scale latency histogram (bucket counts add).
    pub latency: LogHistogram,
    /// Completed real client requests, summed.
    pub completed_requests: u64,
    /// Cluster makespan: the slowest group's virtual finish time.
    pub makespan: SimTime,
    /// True if any group stalled or overran the time cap.
    pub deadlocked: bool,
    /// Merged host-side meters (wall_ns sums the per-group walls, which
    /// overlap under parallel workers — use [`ShardedRunResult::wall_ns`]
    /// for elapsed time).
    pub perf: PerfCounters,
    /// Merged metrics snapshot (counters add, gauges max). Contains the
    /// host-measured `engine.wall_ns` counter, so exclude it when
    /// asserting byte-stability.
    pub metrics: MetricsSnapshot,
    /// Merged decision trace under `(t_ns, group, within-group index)`,
    /// replicas remapped to `group * n_replicas + replica`.
    pub trace_records: Vec<dmt_obs::TraceRecord>,
    /// Cross-shard messages exchanged (0 without routing).
    pub shard_msgs: u64,
    /// Epoch barriers executed (0 without routing).
    pub epochs: u64,
    /// Events processed per group — the deterministic load-balance
    /// profile (`sum / max-per-worker` bounds achievable speedup).
    pub events_per_group: Vec<u64>,
    /// Host wall-clock of the whole sharded run, nanoseconds.
    pub wall_ns: u64,
    /// Host wall-clock of the merge phase alone, nanoseconds.
    pub merge_ns: u64,
}

impl ShardedRunResult {
    /// The deterministic upper bound on intra-run speedup at `workers`
    /// workers under this run's contiguous-chunk group assignment:
    /// total events divided by the heaviest worker's events. Unlike
    /// wall-clock speedup it is byte-stable on any host.
    pub fn balance_bound(&self, workers: usize) -> f64 {
        let total: u64 = self.events_per_group.iter().sum();
        let heaviest = worker_chunks(self.events_per_group.len(), workers.max(1))
            .map(|r| self.events_per_group[r].iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        if heaviest == 0 {
            1.0
        } else {
            total as f64 / heaviest as f64
        }
    }
}

/// Contiguous chunk assignment of `n_groups` to `workers`: worker `w`
/// owns `[w*k, min((w+1)*k, n))` with `k = ceil(n / workers)`. Chunked
/// (not round-robin) so each worker's groups form a splittable slice.
fn worker_chunks(n_groups: usize, workers: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let k = n_groups.div_ceil(workers.max(1));
    (0..n_groups.div_ceil(k.max(1))).map(move |w| w * k..((w + 1) * k).min(n_groups))
}

/// Pre-sized merge scratch for the deterministic output merge. Sized
/// once at run start from the scenario's request totals, it merges any
/// number of per-group latency streams without allocating — the merge
/// path stays allocation-free in steady state (asserted by the
/// dmt-bench counting-allocator test).
pub struct ShardMerger {
    lat: Vec<(u32, RequestLatency)>,
}

impl ShardMerger {
    /// `capacity` = total requests across all groups (known up front:
    /// `scenarios.iter().map(Scenario::total_requests).sum()`).
    pub fn with_capacity(capacity: usize) -> Self {
        ShardMerger {
            lat: Vec::with_capacity(capacity),
        }
    }

    /// Merges per-group latency streams under `(replied, group,
    /// within-group completion order)`. Within-group order is the
    /// engine's deterministic completion order; the sort key
    /// `(replied, group, position)` makes the total order explicit
    /// without relying on sort stability.
    pub fn merge_latencies<'a>(
        &mut self,
        groups: impl Iterator<Item = &'a [RequestLatency]>,
    ) -> &[(u32, RequestLatency)] {
        self.lat.clear();
        for (g, latencies) in groups.enumerate() {
            let g = g as u32;
            self.lat.extend(latencies.iter().map(|&l| (g, l)));
        }
        // Positions differ only within a group (completion order), so a
        // key of (replied, group) plus each entry's pre-sort index is
        // total; `sort_unstable_by_key` over an explicit total key
        // avoids the allocation a stable merge sort would make.
        self.lat
            .sort_unstable_by_key(|&(g, l)| (l.replied, g, l.enqueued, l.id.client, l.id.req_no));
        &self.lat
    }
}

/// Runs one scenario per group, `cfg.shards` workers, and merges the
/// outputs deterministically. Per-group engine `g` gets seed
/// `cfg.seed + g`, so group 0 of a sharded run is byte-identical to the
/// monolithic `Engine::new(scenario, cfg).run()` of the same scenario.
///
/// With `routing`, nested invocations may cross groups (see module
/// docs); without it, groups must be closed simulations.
pub fn run_sharded(
    scenarios: Vec<Scenario>,
    cfg: &EngineConfig,
    routing: Option<ShardRouting>,
) -> ShardedRunResult {
    assert!(!scenarios.is_empty(), "at least one group required");
    let wall_start = std::time::Instant::now();
    let n_groups = scenarios.len();
    let workers = cfg.shards.clamp(1, n_groups);
    let group_cfg = |g: usize| {
        let mut c = cfg.clone().with_seed(cfg.seed.wrapping_add(g as u64));
        c.remote = routing.as_ref().map(|r| RemoteRouting {
            group: g as u32,
            service_home: r.service_home.clone(),
            method: r.method,
            link: r.link,
        });
        c
    };
    let total_requests: usize = scenarios.iter().map(Scenario::total_requests).sum();

    let (results, shard_msgs, epochs) = match routing {
        None => (run_independent(scenarios, &group_cfg, workers), 0, 0),
        Some(ref r) => run_epochs(scenarios, &group_cfg, workers, r, cfg.max_time),
    };

    let merge_start = std::time::Instant::now();
    let mut merger = ShardMerger::with_capacity(total_requests);
    let merged: Vec<(u32, RequestLatency)> = merger
        .merge_latencies(results.iter().map(|r| r.latencies.as_slice()))
        .to_vec();
    let mut response_times = Histogram::with_capacity(total_requests);
    let mut latency = LogHistogram::new();
    let mut perf = PerfCounters::default();
    let mut metrics = MetricsSnapshot::default();
    let mut completed = 0;
    let mut makespan = SimTime::ZERO;
    let mut deadlocked = false;
    let mut events_per_group = Vec::with_capacity(n_groups);
    for r in &results {
        response_times.merge(&r.response_times);
        latency.merge(&r.latency);
        perf.merge(&r.perf);
        metrics.merge(&r.metrics);
        completed += r.completed_requests;
        makespan = makespan.max(r.makespan);
        deadlocked |= r.deadlocked;
        events_per_group.push(r.perf.events);
    }
    let traces: Vec<Vec<dmt_obs::TraceRecord>> =
        results.iter().map(|r| r.trace_records.clone()).collect();
    let trace_records = dmt_obs::merge_group_traces(&traces, cfg.n_replicas as u32);
    let merge_ns = merge_start.elapsed().as_nanos() as u64;

    ShardedRunResult {
        groups: results,
        latencies: merged,
        response_times,
        latency,
        completed_requests: completed,
        makespan,
        deadlocked,
        perf,
        metrics,
        trace_records,
        shard_msgs,
        epochs,
        events_per_group,
        wall_ns: wall_start.elapsed().as_nanos() as u64,
        merge_ns,
    }
}

/// Independent-group path: workers run contiguous chunks of groups in
/// parallel, each threading one reused queue through its chunk.
fn run_independent(
    scenarios: Vec<Scenario>,
    group_cfg: &(impl Fn(usize) -> EngineConfig + Sync),
    workers: usize,
) -> Vec<RunResult> {
    let n_groups = scenarios.len();
    if workers <= 1 {
        let mut queue = EngineQueue::new();
        let mut out = Vec::with_capacity(n_groups);
        for (g, sc) in scenarios.into_iter().enumerate() {
            let (res, q) = Engine::with_queue(sc, group_cfg(g), queue).run_returning_queue();
            queue = q;
            out.push(res);
        }
        return out;
    }
    let k = n_groups.div_ceil(workers);
    let mut chunks: Vec<Vec<Scenario>> = Vec::new();
    let mut it = scenarios.into_iter();
    loop {
        let chunk: Vec<Scenario> = it.by_ref().take(k).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut results: Vec<RunResult> = Vec::with_capacity(n_groups);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, chunk)| {
                s.spawn(move || {
                    let base = w * k;
                    let mut queue = EngineQueue::new();
                    let mut out = Vec::with_capacity(chunk.len());
                    for (i, sc) in chunk.into_iter().enumerate() {
                        let (res, q) = Engine::with_queue(sc, group_cfg(base + i), queue)
                            .run_returning_queue();
                        queue = q;
                        out.push(res);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("shard worker panicked"));
        }
    });
    results
}

/// Routed path: conservative-PDES epochs over long-lived group engines.
/// Each epoch runs every group to the barrier in parallel, then the
/// coordinator exchanges outbox messages in global `(at, from_group)`
/// order. Returns `(results, shard_msgs, epochs)`.
fn run_epochs(
    scenarios: Vec<Scenario>,
    group_cfg: &(impl Fn(usize) -> EngineConfig + Sync),
    workers: usize,
    routing: &ShardRouting,
    max_time: SimDuration,
) -> (Vec<RunResult>, u64, u64) {
    assert!(
        routing.link > SimDuration::ZERO,
        "cross-shard link latency must be positive (it is the PDES lookahead)"
    );
    let n_groups = scenarios.len();
    let mut engines: Vec<Engine> = scenarios
        .into_iter()
        .enumerate()
        .map(|(g, sc)| Engine::new(sc, group_cfg(g)))
        .collect();
    for e in &mut engines {
        e.start();
    }
    let cap = SimTime::ZERO + max_time;
    let mut pending: Vec<ShardMsg> = Vec::new();
    let mut wall: Vec<u64> = vec![0; n_groups];
    let mut shard_msgs = 0u64;
    let mut epochs = 0u64;
    let mut deadlocked = false;
    loop {
        // Deliver last epoch's messages in global (at, from_group) order
        // — generation order within a group breaks the remaining ties
        // (stable sort), so queue seq assignment at the target is a pure
        // function of the message set.
        pending.sort_by_key(|m| (m.at, m.from_group));
        shard_msgs += pending.len() as u64;
        for m in pending.drain(..) {
            engines[m.to_group as usize].inject(m, routing.link);
        }
        let Some(min_next) = engines.iter().filter_map(Engine::next_time).min() else {
            break; // fully drained, nothing in flight
        };
        if min_next > cap {
            deadlocked = true;
            break;
        }
        let epoch_end = min_next + routing.link;
        epochs += 1;
        // Parallel epoch: workers own contiguous chunks of engines.
        if workers <= 1 {
            for (g, e) in engines.iter_mut().enumerate() {
                let t0 = std::time::Instant::now();
                e.run_until(epoch_end);
                wall[g] += t0.elapsed().as_nanos() as u64;
            }
        } else {
            let k = n_groups.div_ceil(workers);
            std::thread::scope(|s| {
                for (chunk, walls) in engines.chunks_mut(k).zip(wall.chunks_mut(k)) {
                    s.spawn(move || {
                        for (e, wl) in chunk.iter_mut().zip(walls) {
                            let t0 = std::time::Instant::now();
                            e.run_until(epoch_end);
                            *wl += t0.elapsed().as_nanos() as u64;
                        }
                    });
                }
            });
        }
        for e in &mut engines {
            e.take_outbox(&mut pending);
        }
    }
    let results = engines
        .into_iter()
        .zip(wall)
        .map(|(mut e, w)| {
            e.set_wall_ns(w);
            e.finish(deadlocked).0
        })
        .collect();
    (results, shard_msgs, epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ClientScript;
    use dmt_core::SchedulerKind;
    use dmt_lang::ast::{CountExpr, IntExpr, MutexExpr};
    use dmt_lang::{compile, DurExpr, ObjectBuilder, RequestArgs, ServiceId, Value};

    fn counter_scenario(seed_off: u64, n_clients: usize, reqs: usize) -> Scenario {
        let mut ob = ObjectBuilder::new("ShardCounter");
        let cell = ob.cell();
        let mut m = ob.method("bump", 1);
        m.for_loop(CountExpr::Lit(2), |b| {
            b.sync(MutexExpr::This, |b| {
                b.compute(DurExpr::micros(50 + seed_off));
                b.update(cell, IntExpr::Arg(0));
            });
        });
        m.done();
        let program = compile::compile(&ob.build());
        let clients = (0..n_clients)
            .map(|c| {
                ClientScript::closed(vec![
                    (
                        dmt_lang::MethodIdx::new(0),
                        RequestArgs::new(vec![Value::Int(c as i64 + 1)]),
                    );
                    reqs
                ])
            })
            .collect();
        Scenario {
            program,
            lock_table: dmt_core::LockTable::default().into(),
            clients,
            dummy_method: None,
        }
    }

    fn cfg(kind: SchedulerKind) -> EngineConfig {
        EngineConfig::new(kind).with_seed(7).with_cpu_jitter(0.05)
    }

    fn key(r: &ShardedRunResult) -> (u64, u64, Vec<(u32, u64, u64)>, Vec<u64>) {
        (
            r.completed_requests,
            r.makespan.as_nanos(),
            r.latencies
                .iter()
                .map(|&(g, l)| (g, l.enqueued.as_nanos(), l.replied.as_nanos()))
                .collect(),
            r.groups
                .iter()
                .flat_map(|g| g.traces.iter().map(|t| t.state_hash))
                .collect(),
        )
    }

    #[test]
    fn group_zero_matches_the_monolithic_engine() {
        let sc = counter_scenario(0, 3, 4);
        let mono = Engine::new(sc.clone(), cfg(SchedulerKind::Mat)).run();
        let sharded = run_sharded(vec![sc], &cfg(SchedulerKind::Mat), None);
        let g0 = &sharded.groups[0];
        assert_eq!(g0.completed_requests, mono.completed_requests);
        assert_eq!(g0.makespan, mono.makespan);
        assert_eq!(g0.latencies, mono.latencies);
        assert_eq!(g0.traces.len(), mono.traces.len());
        for (a, b) in g0.traces.iter().zip(&mono.traces) {
            assert_eq!(a.state_hash, b.state_hash);
        }
    }

    #[test]
    fn worker_count_never_changes_the_merged_result() {
        let scenarios: Vec<Scenario> = (0..4).map(|g| counter_scenario(g, 2, 3)).collect();
        let base = run_sharded(scenarios.clone(), &cfg(SchedulerKind::Lsa), None);
        for shards in [2, 3, 4, 9] {
            let r = run_sharded(
                scenarios.clone(),
                &cfg(SchedulerKind::Lsa).with_shards(shards),
                None,
            );
            assert_eq!(key(&r), key(&base), "shards={shards} diverged");
        }
    }

    /// Ring topology: every group's object issues one nested call to the
    /// service homed on the next group.
    fn relay_scenario(n_groups: usize, me: usize) -> Scenario {
        let mut ob = ObjectBuilder::new("Relay");
        let cell = ob.cell();
        // Method 0: client entry — compute, then call the next group's
        // service (remote unless it resolves locally).
        let mut m = ob.method("relay", 0);
        m.compute(DurExpr::micros(80));
        m.sync(MutexExpr::This, |b| {
            b.update(cell, IntExpr::Lit(1));
        });
        m.nested(
            ServiceId::new(((me + 1) % n_groups) as u32),
            DurExpr::micros(40),
        );
        m.done();
        // Method 1: what a routed-in call executes here.
        let mut t = ob.method("touch", 0);
        t.sync(MutexExpr::This, |b| {
            b.compute(DurExpr::micros(20));
            b.update(cell, IntExpr::Lit(10));
        });
        t.done();
        let program = compile::compile(&ob.build());
        let clients = (0..2)
            .map(|_| {
                ClientScript::closed(vec![(dmt_lang::MethodIdx::new(0), RequestArgs::empty()); 2])
            })
            .collect();
        Scenario {
            program,
            lock_table: dmt_core::LockTable::default().into(),
            clients,
            dummy_method: None,
        }
    }

    fn ring_routing(n_groups: usize) -> ShardRouting {
        ShardRouting {
            service_home: std::sync::Arc::new((0..n_groups as u32).collect()),
            method: dmt_lang::MethodIdx::new(1),
            link: SimDuration::from_micros(200),
        }
    }

    #[test]
    fn routed_ring_is_worker_count_independent_and_completes() {
        let n_groups = 4;
        let scenarios: Vec<Scenario> = (0..n_groups).map(|g| relay_scenario(n_groups, g)).collect();
        let base = run_sharded(
            scenarios.clone(),
            &cfg(SchedulerKind::Mat),
            Some(ring_routing(n_groups)),
        );
        assert!(!base.deadlocked, "routed ring must complete");
        assert_eq!(base.completed_requests, (n_groups * 2 * 2) as u64);
        assert!(base.shard_msgs > 0, "ring must exchange messages");
        assert!(base.epochs > 0);
        for shards in [2, 4] {
            let r = run_sharded(
                scenarios.clone(),
                &cfg(SchedulerKind::Mat).with_shards(shards),
                Some(ring_routing(n_groups)),
            );
            assert_eq!(key(&r), key(&base), "routed shards={shards} diverged");
            assert_eq!(r.shard_msgs, base.shard_msgs);
            assert_eq!(r.epochs, base.epochs);
        }
    }

    #[test]
    fn balance_bound_reflects_event_distribution() {
        let scenarios: Vec<Scenario> = (0..4).map(|g| counter_scenario(g, 2, 3)).collect();
        let r = run_sharded(scenarios, &cfg(SchedulerKind::Seq), None);
        let b1 = r.balance_bound(1);
        let b4 = r.balance_bound(4);
        assert!((b1 - 1.0).abs() < 1e-12, "one worker owns everything");
        assert!(b4 > 1.0 && b4 <= 4.0, "bound must be in (1, workers]");
    }

    #[test]
    fn merger_orders_by_replied_then_group() {
        let lat = |e: u64, r: u64| RequestLatency {
            id: crate::msg::RequestId {
                client: 0,
                req_no: 0,
            },
            enqueued: SimTime::from_nanos(e),
            replied: SimTime::from_nanos(r),
        };
        let g0 = vec![lat(0, 50), lat(10, 90)];
        let g1 = vec![lat(5, 50), lat(20, 70)];
        let mut m = ShardMerger::with_capacity(4);
        let merged = m.merge_latencies([g0.as_slice(), g1.as_slice()].into_iter());
        let order: Vec<(u32, u64)> = merged
            .iter()
            .map(|&(g, l)| (g, l.replied.as_nanos()))
            .collect();
        assert_eq!(order, vec![(0, 50), (1, 50), (1, 70), (0, 90)]);
    }
}
