//! The determinism checker.
//!
//! Replica consistency is what all this machinery buys; the checker
//! verifies it the hard way. A cluster is run with per-replica CPU
//! jitter and per-link network jitter, so each replica's physical
//! timeline differs; then every replica pair is compared at the match
//! level the scheduler guarantees (global lock order for the single-
//! active-thread algorithms, per-mutex order for the concurrent ones).
//! The FREE scheduler is the negative control: with enough contention
//! and jitter it diverges, demonstrating that the check has teeth.

use crate::engine::{Engine, EngineConfig, RunResult};
use crate::msg::Scenario;
use crate::trace::{compare, Divergence, MatchLevel};
use dmt_core::SchedulerKind;

/// Result of a determinism check.
#[derive(Debug)]
pub enum CheckOutcome {
    /// Every live replica pair agreed at the required level.
    Converged,
    /// A pair disagreed (the replication bug deterministic scheduling
    /// prevents — expected for FREE).
    Diverged {
        pair: (usize, usize),
        divergence: Divergence,
    },
    /// The run itself failed (deadlock / cap) — no verdict.
    Stalled,
}

impl CheckOutcome {
    pub fn converged(&self) -> bool {
        matches!(self, CheckOutcome::Converged)
    }
}

/// The comparison granularity a scheduler kind warrants.
///
/// A *global* grant order is only meaningful when at most one thread is
/// ever runnable (SEQ, SAT): then every grant is causally ordered by the
/// single execution chain. Every concurrent algorithm — MAT and MAT-LL
/// included, once suspended monitor holders put several mutexes into
/// hand-off simultaneously — guarantees the per-mutex acquisition orders
/// (plus, therefore, the properly-synchronised state), which is also the
/// exact correctness criterion the original PDS and LSA papers state.
pub fn match_level(kind: SchedulerKind) -> MatchLevel {
    match kind {
        SchedulerKind::Seq | SchedulerKind::Sat => MatchLevel::GlobalOrder,
        _ => MatchLevel::PerMutexOrder,
    }
}

/// Post-fault re-convergence check (DESIGN.md §11's invariant R1/R2).
///
/// After a faulted run, replicas fall into three classes:
///
/// * **survivors** — alive and never recovered: must agree pairwise at
///   the scheduler's full [`match_level`] (same criterion as the
///   fault-free check);
/// * **recovered** — crashed and rejoined via state transfer: their
///   traces legitimately miss the requests executed during the outage,
///   so they owe (and are checked for) *state-hash agreement only*
///   against every other live replica;
/// * **dead** — still down at end of run: excluded (their traces are the
///   pre-crash prefix).
///
/// A deadlocked/capped run yields [`CheckOutcome::Stalled`] — no verdict.
/// Duplicate-delivery with a broken transport is expected to surface here
/// as a `FinishedCount` or `StateHash` divergence: that the checker
/// *flags* it is itself a tested property (see `tests_resilience`).
pub fn check_fault_convergence(res: &RunResult, kind: SchedulerKind) -> CheckOutcome {
    if res.deadlocked {
        return CheckOutcome::Stalled;
    }
    let level = match_level(kind);
    let n = res.traces.len();
    for i in 0..n {
        if !res.alive[i] {
            continue;
        }
        for j in (i + 1)..n {
            if !res.alive[j] {
                continue;
            }
            let hash_only = res.recovered[i] || res.recovered[j];
            let d = if hash_only {
                let (a, b) = (res.traces[i].state_hash, res.traces[j].state_hash);
                (a != b).then_some(Divergence::StateHash { a, b })
            } else {
                compare(&res.traces[i], &res.traces[j], level)
            };
            if let Some(divergence) = d {
                return CheckOutcome::Diverged {
                    pair: (i, j),
                    divergence,
                };
            }
        }
    }
    CheckOutcome::Converged
}

/// Runs `scenario` under `kind` with jitter and checks replica agreement.
pub fn check_determinism(
    scenario: Scenario,
    kind: SchedulerKind,
    seed: u64,
    cpu_jitter: f64,
) -> (RunResult, CheckOutcome) {
    let cfg = EngineConfig::new(kind)
        .with_seed(seed)
        .with_cpu_jitter(cpu_jitter);
    let res = Engine::new(scenario, cfg).run();
    if res.deadlocked {
        return (res, CheckOutcome::Stalled);
    }
    let level = match_level(kind);
    for i in 0..res.traces.len() {
        for j in (i + 1)..res.traces.len() {
            if let Some(d) = compare(&res.traces[i], &res.traces[j], level) {
                let outcome = CheckOutcome::Diverged {
                    pair: (i, j),
                    divergence: d,
                };
                return (res, outcome);
            }
        }
    }
    (res, CheckOutcome::Converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ClientScript;
    use dmt_lang::ast::{IntExpr, MutexExpr};
    use dmt_lang::{compile, DurExpr, ObjectBuilder, RequestArgs, Value};

    /// Contended, order-sensitive workload: threads multiply then add
    /// under one mutex, so different interleavings give different states.
    fn order_sensitive_scenario(n_clients: usize, reqs: usize) -> Scenario {
        let mut ob = ObjectBuilder::new("Sensitive");
        let c = ob.cell();
        let mut m = ob.method("mix", 1);
        m.compute(DurExpr::micros(50));
        m.sync(MutexExpr::This, |b| {
            // state = state * 3 + arg: non-commutative on purpose.
            b.set_cell(c, IntExpr::Cell(c));
            b.update(c, IntExpr::Cell(c)); // state *= 2
            b.update(c, IntExpr::Arg(0));
        });
        let mix = m.done();
        let noop = ob.method("noop", 0);
        let noop_idx = noop.done();
        let program = compile::compile(&ob.build());
        let clients = (0..n_clients)
            .map(|k| {
                ClientScript::repeated(
                    mix,
                    (0..reqs)
                        .map(|i| RequestArgs::new(vec![Value::Int((k * 100 + i) as i64 + 1)]))
                        .collect(),
                )
            })
            .collect();
        Scenario::new(program, clients).with_dummy_method(noop_idx)
    }

    #[test]
    fn deterministic_schedulers_converge_under_jitter() {
        for kind in SchedulerKind::DETERMINISTIC {
            let (_, outcome) = check_determinism(order_sensitive_scenario(4, 4), kind, 23, 0.30);
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }

    #[test]
    fn free_scheduler_diverges_eventually() {
        // The negative control: over several seeds, unconstrained
        // scheduling must produce at least one replica divergence.
        let mut diverged = false;
        for seed in 0..12 {
            let (_, outcome) = check_determinism(
                order_sensitive_scenario(6, 4),
                SchedulerKind::Free,
                seed,
                0.5,
            );
            if matches!(outcome, CheckOutcome::Diverged { .. }) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "FREE never diverged — the checker has no teeth");
    }

    #[test]
    fn convergence_holds_across_seeds() {
        for seed in [1, 7, 99] {
            let (_, outcome) = check_determinism(
                order_sensitive_scenario(3, 3),
                SchedulerKind::Mat,
                seed,
                0.4,
            );
            assert!(outcome.converged(), "seed {seed}: {outcome:?}");
        }
    }
}
