//! Execution traces and the replica-divergence comparison.
//!
//! Replica consistency is the paper's whole point, so the engine records
//! what each replica actually did: the global monitor-acquisition order,
//! the per-mutex acquisition orders, and the final state hash. Two
//! replicas *converge* when their states agree and their traces agree at
//! the granularity the scheduler guarantees (global order for most
//! algorithms; per-mutex order for PMAT, whose non-conflicting grants may
//! interleave freely — see `dmt_core::pmat`).

use dmt_core::ThreadId;
use dmt_lang::MutexId;
use std::collections::BTreeMap;

/// What one replica did during a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Every monitor acquisition (fresh or re-acquisition), in grant order.
    pub lock_order: Vec<(ThreadId, MutexId)>,
    /// Final replicated-state hash.
    pub state_hash: u64,
    /// Requests this replica completed.
    pub finished_threads: u64,
}

impl ExecutionTrace {
    pub fn record_grant(&mut self, tid: ThreadId, mutex: MutexId) {
        self.lock_order.push((tid, mutex));
    }

    /// Per-mutex acquisition orders derived from the global trace.
    pub fn per_mutex(&self) -> BTreeMap<MutexId, Vec<ThreadId>> {
        let mut map: BTreeMap<MutexId, Vec<ThreadId>> = BTreeMap::new();
        for &(tid, m) in &self.lock_order {
            map.entry(m).or_default().push(tid);
        }
        map
    }
}

/// How strictly two traces must match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchLevel {
    /// Identical global lock order (SEQ, SAT, LSA, PDS, MAT, MAT-LL).
    GlobalOrder,
    /// Identical per-mutex orders and state (PMAT).
    PerMutexOrder,
}

/// A detected divergence between two replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    StateHash { a: u64, b: u64 },
    FinishedCount { a: u64, b: u64 },
    GlobalOrder { position: usize },
    PerMutexOrder { mutex: MutexId },
}

/// Compares two replica traces at the requested strictness. `None` means
/// the replicas are consistent.
pub fn compare(a: &ExecutionTrace, b: &ExecutionTrace, level: MatchLevel) -> Option<Divergence> {
    if a.finished_threads != b.finished_threads {
        return Some(Divergence::FinishedCount {
            a: a.finished_threads,
            b: b.finished_threads,
        });
    }
    if a.state_hash != b.state_hash {
        return Some(Divergence::StateHash {
            a: a.state_hash,
            b: b.state_hash,
        });
    }
    match level {
        MatchLevel::GlobalOrder => {
            if a.lock_order != b.lock_order {
                let position = a
                    .lock_order
                    .iter()
                    .zip(&b.lock_order)
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| a.lock_order.len().min(b.lock_order.len()));
                return Some(Divergence::GlobalOrder { position });
            }
        }
        MatchLevel::PerMutexOrder => {
            let pa = a.per_mutex();
            let pb = b.per_mutex();
            if pa.len() != pb.len() {
                let mutex = pa
                    .keys()
                    .chain(pb.keys())
                    .find(|m| pa.get(m) != pb.get(m))
                    .copied()
                    .expect("maps differ");
                return Some(Divergence::PerMutexOrder { mutex });
            }
            for (m, seq_a) in &pa {
                if pb.get(m) != Some(seq_a) {
                    return Some(Divergence::PerMutexOrder { mutex: *m });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }

    fn trace(pairs: &[(u32, u32)], hash: u64) -> ExecutionTrace {
        let mut tr = ExecutionTrace {
            state_hash: hash,
            finished_threads: 2,
            ..Default::default()
        };
        for &(tid, mx) in pairs {
            tr.record_grant(t(tid), m(mx));
        }
        tr
    }

    #[test]
    fn identical_traces_converge() {
        let a = trace(&[(0, 1), (1, 1)], 7);
        let b = trace(&[(0, 1), (1, 1)], 7);
        assert_eq!(compare(&a, &b, MatchLevel::GlobalOrder), None);
        assert_eq!(compare(&a, &b, MatchLevel::PerMutexOrder), None);
    }

    #[test]
    fn state_mismatch_detected_first() {
        let a = trace(&[(0, 1)], 7);
        let b = trace(&[(0, 1)], 8);
        assert_eq!(
            compare(&a, &b, MatchLevel::GlobalOrder),
            Some(Divergence::StateHash { a: 7, b: 8 })
        );
    }

    #[test]
    fn global_order_mismatch_located() {
        let a = trace(&[(0, 1), (1, 2), (2, 3)], 7);
        let b = trace(&[(0, 1), (2, 3), (1, 2)], 7);
        assert_eq!(
            compare(&a, &b, MatchLevel::GlobalOrder),
            Some(Divergence::GlobalOrder { position: 1 })
        );
    }

    #[test]
    fn per_mutex_tolerates_cross_mutex_interleaving() {
        // Same per-mutex orders, different global interleaving: PMAT-ok.
        let a = trace(&[(0, 1), (1, 2), (2, 1)], 7);
        let b = trace(&[(1, 2), (0, 1), (2, 1)], 7);
        assert!(compare(&a, &b, MatchLevel::GlobalOrder).is_some());
        assert_eq!(compare(&a, &b, MatchLevel::PerMutexOrder), None);
    }

    #[test]
    fn per_mutex_violation_detected() {
        let a = trace(&[(0, 1), (1, 1)], 7);
        let b = trace(&[(1, 1), (0, 1)], 7);
        assert_eq!(
            compare(&a, &b, MatchLevel::PerMutexOrder),
            Some(Divergence::PerMutexOrder { mutex: m(1) })
        );
    }

    #[test]
    fn finished_count_mismatch() {
        let mut a = trace(&[], 7);
        a.finished_threads = 3;
        let b = trace(&[], 7);
        assert_eq!(
            compare(&a, &b, MatchLevel::GlobalOrder),
            Some(Divergence::FinishedCount { a: 3, b: 2 })
        );
    }
}
