//! Message types flowing through the total-order layer, and the scenario
//! description the engine executes.

use dmt_core::{CtrlMsg, ReplicaId, ThreadId};
use dmt_lang::{CompiledObject, MethodIdx, RequestArgs};
use std::sync::Arc;

/// Identifies one client request end-to-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestId {
    pub client: u32,
    pub req_no: u32,
}

/// Payloads ordered by the group communication system.
#[derive(Clone, Debug)]
pub enum GcMsg {
    /// A client request (or a PDS filler dummy).
    Request {
        id: RequestId,
        method: MethodIdx,
        args: RequestArgs,
        dummy: bool,
    },
    /// The designated invoker's broadcast of a nested-invocation reply.
    /// `call_no` is the per-thread nested-call counter the reply answers.
    NestedReply { tid: ThreadId, call_no: u32 },
    /// Scheduler control traffic (LSA leader announcements).
    Ctrl { from: ReplicaId, msg: CtrlMsg },
}

/// One client's scripted request sequence.
///
/// Two client models share this type:
///
/// * **closed loop** (`arrivals == None`, the paper's §3.5 setting) —
///   the next request is sent when the previous reply arrives, so the
///   offered load self-throttles to the system's speed;
/// * **open loop** (`arrivals == Some(schedule)`) — request `k` is
///   handed to the total-order layer at `schedule[k]` of virtual time
///   regardless of earlier replies, so queueing delay becomes visible
///   when the offered rate approaches the service capacity.
#[derive(Clone, Debug)]
pub struct ClientScript {
    pub requests: Vec<(MethodIdx, RequestArgs)>,
    /// Open-loop submission instants (one per request, non-decreasing);
    /// `None` selects the closed-loop model.
    pub arrivals: Option<Vec<dmt_sim::SimTime>>,
}

impl ClientScript {
    /// A closed-loop script from explicit `(method, args)` pairs.
    pub fn closed(requests: Vec<(MethodIdx, RequestArgs)>) -> Self {
        ClientScript {
            requests,
            arrivals: None,
        }
    }

    pub fn repeated(method: MethodIdx, args: Vec<RequestArgs>) -> Self {
        Self::closed(args.into_iter().map(|a| (method, a)).collect())
    }

    /// An open-loop script: request `k` is submitted at `arrivals[k]`.
    /// Panics unless the schedule has exactly one instant per request.
    pub fn open_loop(
        requests: Vec<(MethodIdx, RequestArgs)>,
        arrivals: Vec<dmt_sim::SimTime>,
    ) -> Self {
        assert_eq!(
            requests.len(),
            arrivals.len(),
            "open-loop schedule must cover every request"
        );
        ClientScript {
            requests,
            arrivals: Some(arrivals),
        }
    }

    /// True if this client submits on a schedule instead of reply-to-send.
    pub fn is_open_loop(&self) -> bool {
        self.arrivals.is_some()
    }
}

/// Everything the engine needs to run one experiment.
#[derive(Clone)]
pub struct Scenario {
    pub program: Arc<CompiledObject>,
    /// Static lock table (from dmt-analysis) for prediction-aware
    /// schedulers; pessimistic ones ignore it.
    pub lock_table: Arc<dmt_core::LockTable>,
    pub clients: Vec<ClientScript>,
    /// Zero-arg no-op method used for PDS dummies.
    pub dummy_method: Option<MethodIdx>,
}

impl Scenario {
    pub fn new(program: Arc<CompiledObject>, clients: Vec<ClientScript>) -> Self {
        let n = program.methods.len();
        Scenario {
            program,
            lock_table: Arc::new(dmt_core::LockTable::unanalyzed(n)),
            clients,
            dummy_method: None,
        }
    }

    pub fn with_lock_table(mut self, table: Arc<dmt_core::LockTable>) -> Self {
        self.lock_table = table;
        self
    }

    pub fn with_dummy_method(mut self, m: MethodIdx) -> Self {
        self.dummy_method = Some(m);
        self
    }

    pub fn total_requests(&self) -> usize {
        self.clients.iter().map(|c| c.requests.len()).sum()
    }

    /// The dense id of the object's `this` monitor: one past every mutex
    /// the program names statically or a client argument carries. Keeping
    /// the whole mutex id space contiguous from 0 lets the monitor layer
    /// use slot tables instead of maps (see DESIGN.md, dense-ID
    /// invariant).
    pub fn this_mutex(&self) -> dmt_lang::MutexId {
        let mut bound = self.program.mutex_bound();
        for script in &self.clients {
            for (_, args) in &script.requests {
                for v in args.values() {
                    if let dmt_lang::Value::Mutex(m) = v {
                        bound = bound.max(m.0 + 1);
                    }
                }
            }
        }
        dmt_lang::MutexId::new(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::{compile, ObjectBuilder};

    #[test]
    fn scenario_counts_requests() {
        let mut ob = ObjectBuilder::new("O");
        let m = ob.method("noop", 0);
        let mi = m.done();
        let program = compile::compile(&ob.build());
        let s = Scenario::new(
            program,
            vec![
                ClientScript::repeated(mi, vec![RequestArgs::empty(); 3]),
                ClientScript::repeated(mi, vec![RequestArgs::empty(); 2]),
            ],
        );
        assert_eq!(s.total_requests(), 5);
        assert!(s.dummy_method.is_none());
    }
}
