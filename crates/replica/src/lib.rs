//! # dmt-replica — the replication engine
//!
//! Hosts replicated objects on a simulated cluster: total-order request
//! delivery (via `dmt-groupcomm`), one deterministic scheduler per
//! replica (via `dmt-core`), interpreted method bodies (via `dmt-lang`),
//! nested invocations brokered by a designated invoker, first-reply
//! client semantics, deterministic fault injection with LSA leader
//! failover and quiescence-gated recovery, and full execution-trace
//! recording.
//!
//! ## Replication roles
//!
//! Every replica is a peer state machine consuming the same totally
//! ordered request stream; the asymmetric roles are all *elected by
//! position*, so they survive failures without extra protocol:
//!
//! * **Designated invoker** — the lowest-numbered live replica performs
//!   nested (outbound) invocations on behalf of the group and broadcasts
//!   the replies; on its crash the next-lowest survivor re-issues the
//!   outstanding calls (reply broadcasts are deduplicated by per-thread
//!   call number).
//! * **LSA leader** — for the leader/follower scheduler the same
//!   lowest-live rule picks the announcement leader; a crash triggers a
//!   detection delay followed by an `Ev::LeaderDetect` failover that every
//!   survivor applies at the same point in the total order.
//! * **Recovery donor** — when a crashed replica rejoins
//!   ([`crate::fault::FaultKind::Recover`]), the designated survivor
//!   donates its object state at a quiescent instant (passive-replication
//!   catch-up); the group-comm layer re-admits the node at the current
//!   sequence number.
//!
//! On top of the engine sit:
//!
//! * [`checker`] — the determinism checker: runs a cluster whose replicas
//!   experience different CPU and network jitter and verifies that the
//!   deterministic schedulers still converge (and that the FREE negative
//!   control diverges); [`checker::check_fault_convergence`] is the
//!   fault-aware variant (state-hash agreement for recovered replicas,
//!   full trace agreement for survivors);
//! * [`fault`] — the deterministic failure schedule ([`FaultPlan`]):
//!   crashes, recoveries, duplicate-delivery and reordering adversaries,
//!   injected as ordinary calendar-queue events (DESIGN.md §11);
//! * [`replay`] — deterministic replay for **passive replication**: a
//!   primary's recorded grant log replayed on a backup reproduces the
//!   primary's state (paper §1's log re-execution argument).

pub mod checker;
pub mod engine;
pub mod fault;
pub mod msg;
pub mod replay;
pub mod shard;
pub mod trace;

pub use checker::{check_determinism, check_fault_convergence, CheckOutcome};
pub use engine::{
    Engine, EngineConfig, EngineQueue, PerfCounters, RemoteRouting, RequestLatency, RunResult,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultRecord, FaultRecordKind};
pub use msg::{ClientScript, GcMsg, RequestId, Scenario};
pub use replay::{record_primary, replay_on_backup, PrimaryLog};
pub use shard::{run_sharded, ShardMerger, ShardMsg, ShardMsgKind, ShardRouting, ShardedRunResult};
pub use trace::{compare, Divergence, ExecutionTrace, MatchLevel};
