//! # dmt-replica — the replication engine
//!
//! Hosts replicated objects on a simulated cluster: total-order request
//! delivery (via `dmt-groupcomm`), one deterministic scheduler per
//! replica (via `dmt-core`), interpreted method bodies (via `dmt-lang`),
//! nested invocations brokered by a designated invoker, first-reply
//! client semantics, replica failure injection with LSA leader failover,
//! and full execution-trace recording.
//!
//! On top of the engine sit:
//!
//! * [`checker`] — the determinism checker: runs a cluster whose replicas
//!   experience different CPU and network jitter and verifies that the
//!   deterministic schedulers still converge (and that the FREE negative
//!   control diverges);
//! * [`replay`] — deterministic replay for **passive replication**: a
//!   primary's recorded grant log replayed on a backup reproduces the
//!   primary's state (paper §1's log re-execution argument).

pub mod checker;
pub mod engine;
pub mod msg;
pub mod replay;
pub mod trace;

pub use checker::{check_determinism, CheckOutcome};
pub use engine::{Engine, EngineConfig, PerfCounters, RequestLatency, RunResult};
pub use msg::{ClientScript, GcMsg, RequestId, Scenario};
pub use replay::{record_primary, replay_on_backup, PrimaryLog};
pub use trace::{compare, Divergence, ExecutionTrace, MatchLevel};
