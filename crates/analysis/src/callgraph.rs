//! Call graph construction over an object implementation.
//!
//! Paper §4 assumes: all called methods are final, and no recursion.
//! §4.4 relaxes finality through the repository approach — a virtual call
//! site declares its candidate implementations, and the analysis treats
//! the call as possibly reaching any of them. Recursion stays a hard
//! stop: a method from which recursion is reachable is reported
//! unanalysable and "steps back to the simpler algorithm" (the paper's
//! favoured fallback), which our lock table encodes as `None`.

use dmt_lang::ast::{ObjectImpl, Stmt};
use dmt_lang::MethodIdx;

/// The call structure of one object.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[m]` = methods `m` can invoke (static targets and all
    /// virtual candidates), deduplicated, in first-occurrence order.
    callees: Vec<Vec<MethodIdx>>,
    /// Total number of call *sites* naming each method (virtual sites
    /// count once per candidacy), plus ∞-marking for call-in-loop.
    call_sites: Vec<u32>,
    /// True if the method is named by a call site inside a loop.
    called_in_loop: Vec<bool>,
    /// Methods from which a cycle (recursion) is reachable.
    recursive: Vec<bool>,
}

impl CallGraph {
    pub fn build(obj: &ObjectImpl) -> Self {
        let n = obj.methods.len();
        let mut callees: Vec<Vec<MethodIdx>> = vec![Vec::new(); n];
        let mut call_sites = vec![0u32; n];
        let mut called_in_loop = vec![false; n];

        for (mi, m) in obj.methods.iter().enumerate() {
            collect_calls(&m.body, false, &mut |target, in_loop| {
                if !callees[mi].contains(&target) {
                    callees[mi].push(target);
                }
                call_sites[target.index()] = call_sites[target.index()].saturating_add(1);
                if in_loop {
                    called_in_loop[target.index()] = true;
                }
            });
        }

        // A method is "recursive" when it can reach itself through the
        // call relation. Compute reachability per method (n is small).
        let mut recursive = vec![false; n];
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = callees[start].iter().map(|c| c.index()).collect();
            while let Some(v) = stack.pop() {
                if v == start {
                    recursive[start] = true;
                    break;
                }
                if !seen[v] {
                    seen[v] = true;
                    stack.extend(callees[v].iter().map(|c| c.index()));
                }
            }
        }

        CallGraph {
            callees,
            call_sites,
            called_in_loop,
            recursive,
        }
    }

    pub fn callees(&self, m: MethodIdx) -> &[MethodIdx] {
        &self.callees[m.index()]
    }

    /// Every method transitively reachable from `m`, including `m`.
    pub fn reachable(&self, m: MethodIdx) -> Vec<MethodIdx> {
        let mut seen = vec![false; self.callees.len()];
        let mut order = Vec::new();
        let mut stack = vec![m];
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            order.push(v);
            for &c in &self.callees[v.index()] {
                stack.push(c);
            }
        }
        order
    }

    /// Can a cycle be reached from `m` (directly recursive or calling into
    /// recursion)? Such start methods are unanalysable (paper §4.4).
    pub fn reaches_recursion(&self, m: MethodIdx) -> bool {
        self.reachable(m).iter().any(|v| self.recursive[v.index()])
    }

    /// Is the method invoked from more than one call site, or from inside
    /// a loop? Its sync blocks can then be entered repeatedly per request,
    /// so their table entries must stay pinned until the thread ends.
    pub fn multi_called(&self, m: MethodIdx) -> bool {
        self.call_sites[m.index()] > 1 || self.called_in_loop[m.index()]
    }

    pub fn call_sites(&self, m: MethodIdx) -> u32 {
        self.call_sites[m.index()]
    }
}

fn collect_calls(stmts: &[Stmt], in_loop: bool, f: &mut impl FnMut(MethodIdx, bool)) {
    for s in stmts {
        match s {
            Stmt::Call { method, .. } => f(*method, in_loop),
            Stmt::VirtualCall { candidates, .. } => {
                for &c in candidates {
                    f(c, in_loop);
                }
            }
            Stmt::Sync { body, .. } => collect_calls(body, in_loop, f),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_calls(then_branch, in_loop, f);
                collect_calls(else_branch, in_loop, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => collect_calls(body, true, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{ArgExpr, CountExpr, IntExpr};
    use dmt_lang::ObjectBuilder;

    #[test]
    fn straight_call_chain() {
        let mut ob = ObjectBuilder::new("O");
        let leaf = ob.method("leaf", 0).private();
        let leaf_idx = leaf.done();
        let mut mid = ob.method("mid", 0).private();
        mid.call(leaf_idx, vec![]);
        let mid_idx = mid.done();
        let mut start = ob.method("start", 0);
        start.call(mid_idx, vec![]);
        let start_idx = start.done();
        let g = CallGraph::build(&ob.build());
        assert_eq!(g.callees(start_idx), &[mid_idx]);
        let reach = g.reachable(start_idx);
        assert!(
            reach.contains(&leaf_idx) && reach.contains(&mid_idx) && reach.contains(&start_idx)
        );
        assert!(!g.reaches_recursion(start_idx));
        assert!(!g.multi_called(leaf_idx));
    }

    #[test]
    fn detects_self_recursion() {
        let mut ob = ObjectBuilder::new("O");
        let self_idx = ob.next_method_idx();
        let mut m = ob.method("rec", 0);
        m.call(self_idx, vec![]);
        m.done();
        let g = CallGraph::build(&ob.build());
        assert!(g.reaches_recursion(self_idx));
    }

    #[test]
    fn detects_mutual_recursion_reachable_from_start() {
        let mut ob = ObjectBuilder::new("O");
        let a_idx = ob.next_method_idx();
        let b_idx = MethodIdx::new(a_idx.0 + 1);
        let start_idx = MethodIdx::new(a_idx.0 + 2);
        let mut a = ob.method("a", 0).private();
        a.call(b_idx, vec![]);
        assert_eq!(a.done(), a_idx);
        let mut b = ob.method("b", 0).private();
        b.call(a_idx, vec![]);
        assert_eq!(b.done(), b_idx);
        let mut s = ob.method("start", 0);
        s.call(a_idx, vec![]);
        assert_eq!(s.done(), start_idx);
        // Also a clean method to show the flag is per start method.
        let clean = ob.method("clean", 0);
        let clean_idx = clean.done();
        let g = CallGraph::build(&ob.build());
        assert!(g.reaches_recursion(start_idx));
        assert!(!g.reaches_recursion(clean_idx));
    }

    #[test]
    fn multi_call_by_two_sites() {
        let mut ob = ObjectBuilder::new("O");
        let leaf = ob.method("leaf", 0).private();
        let leaf_idx = leaf.done();
        let mut s = ob.method("start", 0);
        s.call(leaf_idx, vec![]);
        s.call(leaf_idx, vec![]);
        s.done();
        let g = CallGraph::build(&ob.build());
        assert!(g.multi_called(leaf_idx));
        assert_eq!(g.call_sites(leaf_idx), 2);
    }

    #[test]
    fn call_in_loop_is_multi() {
        let mut ob = ObjectBuilder::new("O");
        let leaf = ob.method("leaf", 0).private();
        let leaf_idx = leaf.done();
        let mut s = ob.method("start", 0);
        s.for_loop(CountExpr::Lit(3), |b| {
            b.call(leaf_idx, vec![]);
        });
        s.done();
        let g = CallGraph::build(&ob.build());
        assert!(g.multi_called(leaf_idx));
    }

    #[test]
    fn virtual_candidates_all_count() {
        let mut ob = ObjectBuilder::new("O");
        let a = ob.method("implA", 0).private().non_final();
        let a_idx = a.done();
        let b = ob.method("implB", 0).private().non_final();
        let b_idx = b.done();
        let mut s = ob.method("start", 1);
        s.virtual_call(vec![a_idx, b_idx], IntExpr::Arg(0), vec![]);
        let s_idx = s.done();
        let g = CallGraph::build(&ob.build());
        assert_eq!(g.callees(s_idx), &[a_idx, b_idx]);
        let _ = ArgExpr::CallerArg(0); // keep import used in this module
    }
}
