//! Lock-parameter classification (paper §4.2).
//!
//! "In order to determine which objects will be locked during method
//! execution, we need to inspect the synchronized parameter and find out
//! when this parameter is assigned the last time." Parameters fall into
//! three classes:
//!
//! * announceable **at method entry** — `this`, a constant monitor, a
//!   method parameter, or a pool slot indexed by a method parameter;
//! * announceable **after the last assignment** — a method-local
//!   variable;
//! * **spontaneous** — instance variables, pool slots indexed by mutable
//!   state, and method-call results: "the parameter is unknown until the
//!   locking happens".

use dmt_lang::ast::MutexExpr;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamClass {
    /// The value is fixed by the request arguments: announce right after
    /// method start.
    AtEntry,
    /// A local variable: announce right after its last assignment.
    AfterAssign,
    /// Unknown until the lock executes; the lock itself doubles as the
    /// announcement (`lockInfo` + `lock`, §4.2).
    Spontaneous,
}

impl ParamClass {
    pub fn is_spontaneous(self) -> bool {
        self == ParamClass::Spontaneous
    }
}

/// Classifies a synchronisation parameter expression.
pub fn classify(e: &MutexExpr) -> ParamClass {
    match e {
        MutexExpr::This | MutexExpr::Konst(_) | MutexExpr::Arg(_) | MutexExpr::Pool { .. } => {
            ParamClass::AtEntry
        }
        MutexExpr::Local(_) => ParamClass::AfterAssign,
        MutexExpr::Field(_) | MutexExpr::PoolByCell { .. } | MutexExpr::CallResult { .. } => {
            ParamClass::Spontaneous
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ids::{CallSiteId, CellId, FieldId, LocalId, MutexId};

    #[test]
    fn entry_class() {
        assert_eq!(classify(&MutexExpr::This), ParamClass::AtEntry);
        assert_eq!(
            classify(&MutexExpr::Konst(MutexId::new(1))),
            ParamClass::AtEntry
        );
        assert_eq!(classify(&MutexExpr::Arg(0)), ParamClass::AtEntry);
        assert_eq!(
            classify(&MutexExpr::Pool {
                base: 0,
                len: 100,
                index_arg: 2
            }),
            ParamClass::AtEntry
        );
    }

    #[test]
    fn local_class() {
        assert_eq!(
            classify(&MutexExpr::Local(LocalId::new(0))),
            ParamClass::AfterAssign
        );
        assert!(!classify(&MutexExpr::Local(LocalId::new(0))).is_spontaneous());
    }

    #[test]
    fn spontaneous_class() {
        assert!(classify(&MutexExpr::Field(FieldId::new(0))).is_spontaneous());
        assert!(classify(&MutexExpr::PoolByCell {
            base: 0,
            len: 4,
            cell: CellId::new(0)
        })
        .is_spontaneous());
        assert!(classify(&MutexExpr::CallResult {
            site: CallSiteId::new(0),
            resolves_to: FieldId::new(0)
        })
        .is_spontaneous());
    }
}
