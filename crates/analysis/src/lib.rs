//! # dmt-analysis — static lock analysis and code injection
//!
//! The second half of the paper (§4): predict each start method's future
//! lock acquisitions by static analysis, and rewrite the method bodies so
//! the scheduler learns, at run time, how the prediction unfolds.
//!
//! The crate mirrors the paper's pipeline (which used the TPL source
//! transformation toolbox on Java; ours works on `dmt-lang` ASTs):
//!
//! * [`callgraph`] — which methods can call which, recursion detection,
//!   multi-call accounting (the §4.4 restrictions and their relaxations),
//! * [`paths`] — execution-path enumeration per start method: every
//!   syncid the flow can pass, with loop/multi-call "repeatable" flags,
//! * [`lockparam`] — classification of each synchronisation parameter
//!   (announceable at entry / after last assignment / spontaneous, §4.2),
//! * [`mod@transform`] — the injection pass: `lockInfo` announcements,
//!   branch and post-loop `ignore`s (Figure 4),
//! * [`table`] — assembly of the static [`dmt_core::LockTable`] the
//!   scheduler's bookkeeping module is initialised with,
//! * [`report`] — analysis statistics for the `tab-analysis` experiment,
//! * [`pretty`] — a printer for original vs. transformed sources (the
//!   Figure 4 golden test renders through it),
//! * [`racepred`] — the *dynamic* counterpart: replays a recorded
//!   Grant/Release trace (`dmt-obs`), rebuilds critical sections and the
//!   lock graph, and predicts deadlock cycles and schedule-sensitive
//!   reorderings a different deterministic schedule could realise.

pub mod callgraph;
pub mod lockparam;
pub mod paths;
pub mod pretty;
pub mod racepred;
pub mod report;
pub mod table;
pub mod transform;

pub use callgraph::CallGraph;
pub use lockparam::{classify, ParamClass};
pub use paths::MethodSummary;
pub use racepred::{predict_races, CriticalSection, RaceReport};
pub use report::{analyze, AnalysisReport};
pub use table::build_lock_table;
pub use transform::{audit_fusion, transform, FusionAudit, MethodFusion};
