//! Lock-order / race prediction over recorded traces.
//!
//! The static passes in this crate predict lock sets *forward* from the
//! AST; this module works *backward* from a recorded execution, in the
//! spirit of the dynamic predictive-race-detection literature
//! (PAPERS.md, *Cross-thread critical sections and efficient dynamic
//! race prediction methods*): replay one replica's Grant/Release
//! stream, rebuild every critical section, build the lock graph, and
//! report what a *different* deterministic schedule could have done
//! with the same program —
//!
//! * **findings**: cycles in the lock graph (strongly connected
//!   components with ≥ 2 mutexes, or a self-loop). The witnessed run
//!   completed, but a schedule that interleaves the inverted nestings
//!   deadlocks — the classic AB/BA prediction. A trace with no nested
//!   holds has no edges and therefore zero findings.
//! * **statistics**: schedule-sensitive adjacent pairs — consecutive
//!   critical sections on the same mutex owned by different threads
//!   whose surrounding hold sets are disjoint, i.e. acquisitions a
//!   different deterministic scheduler is free to reorder without
//!   violating any lock-order constraint visible in the trace. These
//!   are not defects (per-mutex order *is* the deterministic contract);
//!   they quantify how much ordering freedom the schedule family has.
//!
//! Everything is replayed in record order with id-sorted outputs, so
//! the rendered report is byte-stable and golden-testable.

use dmt_core::{Decision, ThreadId};
use dmt_lang::MutexId;
use dmt_obs::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write;

/// One reconstructed critical section on one mutex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalSection {
    pub tid: ThreadId,
    pub mutex: MutexId,
    /// Grant stamp (virtual ns).
    pub start_ns: u64,
    /// Release stamp (virtual ns).
    pub end_ns: u64,
    /// Mutexes the thread already held at the grant.
    pub held_at_entry: Vec<MutexId>,
}

/// The replayed lock graph and its predictions.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Replica whose stream was replayed.
    pub replica: u32,
    /// Closed critical sections, in close order.
    pub sections: Vec<CriticalSection>,
    /// Lock-order edges `held → acquired` with multiplicities, sorted.
    pub edges: Vec<(MutexId, MutexId, u64)>,
    /// Lock-graph cycles (id-sorted mutex sets): the findings. Each is
    /// a potential deadlock under a schedule that interleaves the
    /// inverted nestings.
    pub cycles: Vec<Vec<MutexId>>,
    /// Per-mutex count of reorderable adjacent cross-thread critical-
    /// section pairs (see module docs), id-sorted.
    pub reorderable: Vec<(MutexId, u64)>,
}

impl RaceReport {
    /// Number of findings (predicted deadlock cycles).
    pub fn findings(&self) -> usize {
        self.cycles.len()
    }

    /// Total reorderable adjacent pairs across all mutexes.
    pub fn reorderable_total(&self) -> u64 {
        self.reorderable.iter().map(|&(_, n)| n).sum()
    }

    /// Byte-stable text rendering (golden-tested in dmt-bench).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "race-prediction report (replica {})", self.replica);
        let n_mutexes = {
            let mut ids: Vec<u32> = self
                .sections
                .iter()
                .map(|s| s.mutex.index() as u32)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let _ = writeln!(
            out,
            "critical sections: {} across {} mutexes",
            self.sections.len(),
            n_mutexes
        );
        let _ = writeln!(out, "lock-order edges: {}", self.edges.len());
        for &(held, acquired, count) in &self.edges {
            let _ = writeln!(
                out,
                "  m{} -> m{} x{}",
                held.index(),
                acquired.index(),
                count
            );
        }
        let _ = writeln!(
            out,
            "lock-order cycles (potential deadlocks): {}",
            self.cycles.len()
        );
        for cycle in &self.cycles {
            let names: Vec<String> = cycle.iter().map(|m| format!("m{}", m.index())).collect();
            let _ = writeln!(out, "  cycle: {}", names.join(" <-> "));
        }
        let _ = writeln!(
            out,
            "schedule-sensitive adjacent pairs: {}",
            self.reorderable_total()
        );
        for &(m, n) in &self.reorderable {
            let _ = writeln!(out, "  m{}: {}", m.index(), n);
        }
        out
    }
}

/// Replays `records` (events of `replica` only) and predicts.
pub fn predict_races(records: &[TraceRecord], replica: u32) -> RaceReport {
    // (tid, mutex) → (start, depth, held-at-entry).
    let mut open: BTreeMap<(u32, u32), (u64, u32, Vec<MutexId>)> = BTreeMap::new();
    let mut sections: Vec<CriticalSection> = Vec::new();
    let mut edges: BTreeMap<(u32, u32), u64> = BTreeMap::new();

    for rec in records.iter().filter(|r| r.replica == replica) {
        match rec.ev {
            TraceEvent::Sched(Decision::Grant { tid, mutex, .. }) => {
                let k = (tid.0, mutex.index() as u32);
                if let Some(entry) = open.get_mut(&k) {
                    entry.1 += 1; // reentrant
                    continue;
                }
                let held: Vec<MutexId> = open
                    .range((tid.0, 0)..=(tid.0, u32::MAX))
                    .map(|(&(_, m), _)| MutexId::new(m))
                    .collect();
                for &h in &held {
                    *edges
                        .entry((h.index() as u32, mutex.index() as u32))
                        .or_default() += 1;
                }
                open.insert(k, (rec.t_ns, 1, held));
            }
            TraceEvent::MutexReleased { tid, mutex } => {
                let k = (tid.0, mutex.index() as u32);
                if let Some(entry) = open.get_mut(&k) {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        let (start_ns, _, held_at_entry) = open.remove(&k).unwrap();
                        sections.push(CriticalSection {
                            tid,
                            mutex,
                            start_ns,
                            end_ns: rec.t_ns,
                            held_at_entry,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    let edge_list: Vec<(MutexId, MutexId, u64)> = edges
        .iter()
        .map(|(&(h, a), &c)| (MutexId::new(h), MutexId::new(a), c))
        .collect();
    let cycles = find_cycles(&edges);
    let reorderable = reorderable_pairs(&sections);

    RaceReport {
        replica,
        sections,
        edges: edge_list,
        cycles,
        reorderable,
    }
}

/// Strongly connected components of the lock graph with ≥ 2 nodes (or a
/// self-loop): each is a family of cyclic lock-order dependencies.
/// Iterative Tarjan over id-sorted adjacency, so output order is
/// deterministic; each SCC's mutex set is emitted id-sorted, and SCCs
/// are sorted by their smallest member.
fn find_cycles(edges: &BTreeMap<(u32, u32), u64>) -> Vec<Vec<MutexId>> {
    let mut nodes: Vec<u32> = edges
        .keys()
        .flat_map(|&(a, b)| [a, b])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    nodes.sort_unstable();
    let index_of: BTreeMap<u32, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in edges.keys() {
        adj[index_of[&a]].push(index_of[&b]);
    }

    // Iterative Tarjan.
    const UNSET: usize = usize::MAX;
    let n = nodes.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Work stack: (node, next-child position).
    let mut work: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        work.push((start, 0));
        while let Some(&mut (v, ref mut child)) = work.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    let mut cycles: Vec<Vec<MutexId>> = sccs
        .into_iter()
        .filter(|scc| {
            scc.len() >= 2 || {
                let v = scc[0];
                edges.contains_key(&(nodes[v], nodes[v]))
            }
        })
        .map(|scc| {
            let mut ids: Vec<u32> = scc.into_iter().map(|v| nodes[v]).collect();
            ids.sort_unstable();
            ids.into_iter().map(MutexId::new).collect()
        })
        .collect();
    cycles.sort();
    cycles
}

/// Counts, per mutex, consecutive critical-section pairs owned by
/// different threads whose entry hold sets are disjoint — reorderable
/// by a different deterministic schedule without violating any
/// trace-visible lock-order constraint.
fn reorderable_pairs(sections: &[CriticalSection]) -> Vec<(MutexId, u64)> {
    let mut per_mutex: BTreeMap<u32, Vec<&CriticalSection>> = BTreeMap::new();
    for s in sections {
        per_mutex.entry(s.mutex.index() as u32).or_default().push(s);
    }
    let mut out = Vec::new();
    for (m, mut list) in per_mutex {
        // A mutex's sections are disjoint in time; order them by start.
        list.sort_by_key(|s| (s.start_ns, s.tid.0));
        let mut count = 0u64;
        for pair in list.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.tid != b.tid && !a.held_at_entry.iter().any(|h| b.held_at_entry.contains(h)) {
                count += 1;
            }
        }
        if count > 0 {
            out.push((MutexId::new(m), count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }
    fn grant(t_ns: u64, tid: ThreadId, mutex: MutexId) -> TraceRecord {
        TraceRecord {
            t_ns,
            replica: 0,
            ev: TraceEvent::Sched(Decision::Grant {
                tid,
                mutex,
                from_wait: false,
            }),
        }
    }
    fn release(t_ns: u64, tid: ThreadId, mutex: MutexId) -> TraceRecord {
        TraceRecord {
            t_ns,
            replica: 0,
            ev: TraceEvent::MutexReleased { tid, mutex },
        }
    }

    #[test]
    fn ab_ba_inversion_is_one_cycle() {
        // t0: A then B (nested); later t1: B then A (nested).
        let records = vec![
            grant(0, t(0), m(0)),
            grant(5, t(0), m(1)),
            release(10, t(0), m(1)),
            release(15, t(0), m(0)),
            grant(20, t(1), m(1)),
            grant(25, t(1), m(0)),
            release(30, t(1), m(0)),
            release(35, t(1), m(1)),
        ];
        let r = predict_races(&records, 0);
        assert_eq!(r.sections.len(), 4);
        assert_eq!(
            r.edges,
            vec![(m(0), m(1), 1), (m(1), m(0), 1)],
            "both nesting orders observed"
        );
        assert_eq!(r.findings(), 1);
        assert_eq!(r.cycles, vec![vec![m(0), m(1)]]);
    }

    #[test]
    fn consistent_order_has_no_findings_but_counts_reorderable_pairs() {
        // Both threads lock A then B — no cycle; the back-to-back
        // same-mutex sections by different threads are reorderable.
        let records = vec![
            grant(0, t(0), m(0)),
            grant(5, t(0), m(1)),
            release(10, t(0), m(1)),
            release(15, t(0), m(0)),
            grant(20, t(1), m(0)),
            grant(25, t(1), m(1)),
            release(30, t(1), m(1)),
            release(35, t(1), m(0)),
        ];
        let r = predict_races(&records, 0);
        assert_eq!(r.findings(), 0);
        // m0: t0's CS then t1's CS, neither holding anything at entry →
        // reorderable. m1: both held m0 at entry → constrained.
        assert_eq!(r.reorderable, vec![(m(0), 1)]);
    }

    #[test]
    fn flat_locking_yields_no_edges_and_no_findings() {
        let records = vec![
            grant(0, t(0), m(4)),
            release(5, t(0), m(4)),
            grant(6, t(1), m(4)),
            release(9, t(1), m(4)),
        ];
        let r = predict_races(&records, 0);
        assert!(r.edges.is_empty());
        assert_eq!(r.findings(), 0);
        assert_eq!(r.reorderable, vec![(m(4), 1)]);
    }

    #[test]
    fn three_way_cycle_detected_as_one_scc() {
        // 0→1, 1→2, 2→0.
        let records = vec![
            grant(0, t(0), m(0)),
            grant(1, t(0), m(1)),
            release(2, t(0), m(1)),
            release(3, t(0), m(0)),
            grant(10, t(1), m(1)),
            grant(11, t(1), m(2)),
            release(12, t(1), m(2)),
            release(13, t(1), m(1)),
            grant(20, t(2), m(2)),
            grant(21, t(2), m(0)),
            release(22, t(2), m(0)),
            release(23, t(2), m(2)),
        ];
        let r = predict_races(&records, 0);
        assert_eq!(r.cycles, vec![vec![m(0), m(1), m(2)]]);
    }

    #[test]
    fn render_is_stable() {
        let records = vec![
            grant(0, t(0), m(0)),
            grant(5, t(0), m(1)),
            release(10, t(0), m(1)),
            release(15, t(0), m(0)),
            grant(20, t(1), m(1)),
            grant(25, t(1), m(0)),
            release(30, t(1), m(0)),
            release(35, t(1), m(1)),
        ];
        let a = predict_races(&records, 0).render();
        let b = predict_races(&records, 0).render();
        assert_eq!(a, b);
        assert!(a.contains("lock-order cycles (potential deadlocks): 1"));
        assert!(a.contains("cycle: m0 <-> m1"));
    }
}
