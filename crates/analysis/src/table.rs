//! Assembly of the static lock table (paper §4.1): "we get a list of
//! syncids for each start method and with it all the static information
//! the scheduler needs. The scheduler is initialised with that
//! information at start-up."

use crate::callgraph::CallGraph;
use crate::paths::{summarize, MethodSummary};
use dmt_core::{LockTable, StaticSyncEntry};
use dmt_lang::ast::ObjectImpl;
use dmt_lang::MethodIdx;
use std::sync::Arc;

/// Builds the lock table for every method of `obj`. Rows for non-public
/// methods and for methods from which recursion is reachable are `None`
/// (unanalysed — the scheduler falls back to pessimism for them).
pub fn build_lock_table(obj: &ObjectImpl) -> Arc<LockTable> {
    let graph = CallGraph::build(obj);
    let rows = (0..obj.methods.len())
        .map(|i| {
            let mi = MethodIdx::new(i as u32);
            if !obj.methods[i].public {
                return None;
            }
            let summary = summarize(obj, &graph, mi);
            summary_to_row(&summary)
        })
        .collect();
    Arc::new(LockTable::new(rows))
}

fn summary_to_row(s: &MethodSummary) -> Option<Vec<StaticSyncEntry>> {
    if !s.analyzable {
        return None;
    }
    Some(
        s.syncs
            .iter()
            .map(|info| StaticSyncEntry {
                sync_id: info.sync_id,
                repeatable: info.repeatable,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{CountExpr, MutexExpr};
    use dmt_lang::{ObjectBuilder, SyncId};

    #[test]
    fn public_methods_get_rows() {
        let mut ob = ObjectBuilder::new("O");
        let mut pubm = ob.method("p", 1);
        pubm.sync(MutexExpr::Arg(0), |_| {});
        pubm.done();
        let mut privm = ob.method("q", 0).private();
        privm.sync(MutexExpr::This, |_| {});
        privm.done();
        let table = build_lock_table(&ob.build());
        let row = table.entries(MethodIdx::new(0)).unwrap();
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].sync_id, SyncId::new(0));
        assert!(!row[0].repeatable);
        assert!(
            table.entries(MethodIdx::new(1)).is_none(),
            "private: no row"
        );
    }

    #[test]
    fn callee_syncs_appear_in_start_row() {
        let mut ob = ObjectBuilder::new("O");
        let mut h = ob.method("h", 0).private();
        h.sync(MutexExpr::This, |_| {});
        let h_idx = h.done();
        let mut m = ob.method("m", 0);
        m.sync(MutexExpr::This, |_| {});
        m.call(h_idx, vec![]);
        m.done();
        let table = build_lock_table(&ob.build());
        let row = table.entries(MethodIdx::new(1)).unwrap();
        assert_eq!(row.len(), 2, "own block + callee block");
    }

    #[test]
    fn loop_blocks_marked_repeatable() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        m.for_loop(CountExpr::Lit(2), |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        });
        m.done();
        let table = build_lock_table(&ob.build());
        let row = table.entries(MethodIdx::new(0)).unwrap();
        assert!(row[0].repeatable);
    }

    #[test]
    fn recursive_start_method_row_is_none() {
        let mut ob = ObjectBuilder::new("O");
        let self_idx = ob.next_method_idx();
        let mut m = ob.method("rec", 0);
        m.call(self_idx, vec![]);
        m.done();
        let table = build_lock_table(&ob.build());
        assert!(table.entries(MethodIdx::new(0)).is_none());
    }
}
