//! A Java-flavoured pretty-printer for `dmt-lang` objects.
//!
//! Renders original and transformed methods side by side in the style of
//! the paper's Figure 4 (synchronized blocks become explicit
//! `scheduler.lock`/`unlock` pairs, injections show as
//! `scheduler.lockInfo`/`scheduler.ignore`). Used by the Figure 4 golden
//! test and the `analysis_transform` example.

use dmt_lang::ast::{
    ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, Method, MutexExpr, ObjectImpl, Stmt,
};

/// Renders a whole object.
pub fn print_object(obj: &ObjectImpl) -> String {
    let mut out = String::new();
    out.push_str(&format!("class {} {{\n", obj.name));
    for m in &obj.methods {
        out.push_str(&print_method(m, 1));
    }
    out.push_str("}\n");
    out
}

/// Renders one method at the given indent level.
pub fn print_method(m: &Method, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    let vis = if m.public { "public" } else { "private" };
    let fin = if m.is_final { " final" } else { "" };
    let params: Vec<String> = (0..m.arity).map(|i| format!("Object a{i}")).collect();
    let mut out = format!(
        "{pad}{vis}{fin} void {}({}) {{\n",
        m.name,
        params.join(", ")
    );
    print_block(&m.body, indent + 1, &mut out);
    out.push_str(&format!("{pad}}}\n"));
    out
}

fn print_block(stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Compute(d) => out.push_str(&format!("{pad}compute({});\n", dur(d))),
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                out.push_str(&format!(
                    "{pad}scheduler.lock({}, {});\n",
                    sync_id.0,
                    mutex(param)
                ));
                print_block(body, indent, out);
                out.push_str(&format!(
                    "{pad}scheduler.unlock({}, {});\n",
                    sync_id.0,
                    mutex(param)
                ));
            }
            Stmt::Wait(p) => out.push_str(&format!("{pad}{}.wait();\n", mutex(p))),
            Stmt::Notify { param, all } => {
                let call = if *all { "notifyAll" } else { "notify" };
                out.push_str(&format!("{pad}{}.{call}();\n", mutex(param)));
            }
            Stmt::Nested { service, dur: d } => out.push_str(&format!(
                "{pad}svc{}.invoke(); // nested, {}\n",
                service.0,
                dur(d)
            )),
            Stmt::Update { cell, delta } => {
                out.push_str(&format!("{pad}state[{}] += {};\n", cell.0, int(delta)))
            }
            Stmt::UpdateIndexed {
                base,
                len,
                index_arg,
                delta,
            } => out.push_str(&format!(
                "{pad}state[{base} + a{index_arg} % {len}] += {};\n",
                int(delta)
            )),
            Stmt::SetCell { cell, value } => {
                out.push_str(&format!("{pad}state[{}] = {};\n", cell.0, int(value)))
            }
            Stmt::Assign { local, expr } => {
                out.push_str(&format!("{pad}v{} = {};\n", local.0, mutex(expr)))
            }
            Stmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond(c)));
                print_block(then_branch, indent + 1, out);
                if else_branch.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    print_block(else_branch, indent + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::For { count, body } => {
                out.push_str(&format!(
                    "{pad}for (int i = 0; i < {}; i++) {{\n",
                    countx(count)
                ));
                print_block(body, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::While { cond: c, body } => {
                out.push_str(&format!("{pad}while ({}) {{\n", cond(c)));
                print_block(body, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Call { method, args } => {
                let a: Vec<String> = args.iter().map(arg).collect();
                out.push_str(&format!("{pad}this.fn{}({});\n", method.0, a.join(", ")));
            }
            Stmt::VirtualCall {
                candidates, args, ..
            } => {
                let a: Vec<String> = args.iter().map(arg).collect();
                let c: Vec<String> = candidates.iter().map(|m| format!("fn{}", m.0)).collect();
                out.push_str(&format!(
                    "{pad}iface.dispatch[{}]({});\n",
                    c.join("|"),
                    a.join(", ")
                ));
            }
            Stmt::LockInfo { sync_id, param } => out.push_str(&format!(
                "{pad}scheduler.lockInfo({}, {});\n",
                sync_id.0,
                mutex(param)
            )),
            Stmt::IgnoreSync { sync_id } => {
                out.push_str(&format!("{pad}scheduler.ignore({});\n", sync_id.0))
            }
            Stmt::Return => out.push_str(&format!("{pad}return;\n")),
        }
    }
}

fn mutex(e: &MutexExpr) -> String {
    match e {
        MutexExpr::This => "this".into(),
        MutexExpr::Konst(m) => format!("GLOBAL_{}", m.0),
        MutexExpr::Arg(i) => format!("a{i}"),
        MutexExpr::Local(l) => format!("v{}", l.0),
        MutexExpr::Field(f) => format!("this.f{}", f.0),
        MutexExpr::Pool {
            base,
            len,
            index_arg,
        } => {
            format!("pool{base}[a{index_arg} % {len}]")
        }
        MutexExpr::PoolByCell { base, len, cell } => {
            format!("pool{base}[state[{}] % {len}]", cell.0)
        }
        MutexExpr::CallResult { site, .. } => format!("lookup{}()", site.0),
    }
}

fn cond(c: &CondExpr) -> String {
    match c {
        CondExpr::Konst(b) => b.to_string(),
        CondExpr::ArgFlag(i) => format!("a{i}"),
        CondExpr::ArgIntLt(i, k) => format!("a{i} < {k}"),
        CondExpr::CellEq(cl, k) => format!("state[{}] == {k}", cl.0),
        CondExpr::CellLt(cl, k) => format!("state[{}] < {k}", cl.0),
        CondExpr::CellGe(cl, k) => format!("state[{}] >= {k}", cl.0),
        CondExpr::ParamEqField(i, f) => format!("this.f{}.equals(a{i})", f.0),
        CondExpr::Not(inner) => format!("!({})", cond(inner)),
    }
}

fn int(e: &IntExpr) -> String {
    match e {
        IntExpr::Lit(v) => v.to_string(),
        IntExpr::Arg(i) => format!("a{i}"),
        IntExpr::Cell(c) => format!("state[{}]", c.0),
    }
}

fn dur(e: &DurExpr) -> String {
    match e {
        DurExpr::Nanos(n) => format!("{:.3}ms", *n as f64 / 1e6),
        DurExpr::Arg(i) => format!("a{i} ns"),
    }
}

fn countx(e: &CountExpr) -> String {
    match e {
        CountExpr::Lit(n) => n.to_string(),
        CountExpr::Arg(i) => format!("a{i}"),
    }
}

fn arg(e: &ArgExpr) -> String {
    match e {
        ArgExpr::Const(v) => format!("{v:?}"),
        ArgExpr::CallerArg(i) => format!("a{i}"),
        ArgExpr::Local(l) => format!("v{}", l.0),
        ArgExpr::Field(f) => format!("this.f{}", f.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ObjectBuilder;

    #[test]
    fn renders_sync_as_scheduler_calls() {
        let mut ob = ObjectBuilder::new("T");
        let mut m = ob.method("foo", 1);
        m.sync(MutexExpr::Arg(0), |b| {
            b.compute_ms(1);
        });
        m.done();
        let text = print_object(&ob.build());
        assert!(text.contains("scheduler.lock(0, a0);"));
        assert!(text.contains("scheduler.unlock(0, a0);"));
        assert!(text.contains("compute(1.000ms);"));
        assert!(text.contains("class T {"));
    }

    #[test]
    fn renders_injections() {
        let mut ob = ObjectBuilder::new("T");
        let mut m = ob.method("foo", 1);
        m.sync(MutexExpr::Arg(0), |_| {});
        m.done();
        let transformed = crate::transform::transform(&ob.build());
        let text = print_object(&transformed);
        assert!(text.contains("scheduler.lockInfo(0, a0);"));
    }
}
