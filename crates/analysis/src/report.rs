//! Analysis statistics — the data behind the `tab-analysis` experiment
//! (how much of a workload the static analysis can actually predict).

use crate::callgraph::CallGraph;
use crate::lockparam::ParamClass;
use crate::paths::{summarize, MethodSummary};
use dmt_lang::ast::ObjectImpl;
use dmt_lang::MethodIdx;
use std::fmt;

/// Per-start-method analysis statistics.
#[derive(Clone, Debug)]
pub struct MethodReport {
    pub name: String,
    pub analyzable: bool,
    pub path_count: u64,
    pub n_syncs: usize,
    pub n_at_entry: usize,
    pub n_after_assign: usize,
    pub n_spontaneous: usize,
    pub n_repeatable: usize,
    /// Every lock parameter known the moment the request starts —
    /// the best case for PMAT (Figure 3(b)).
    pub predictable_at_entry: bool,
}

/// Whole-object analysis report.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    pub object: String,
    pub methods: Vec<MethodReport>,
}

impl AnalysisReport {
    pub fn analyzable_fraction(&self) -> f64 {
        if self.methods.is_empty() {
            return 1.0;
        }
        self.methods.iter().filter(|m| m.analyzable).count() as f64 / self.methods.len() as f64
    }

    pub fn spontaneous_fraction(&self) -> f64 {
        let total: usize = self.methods.iter().map(|m| m.n_syncs).sum();
        if total == 0 {
            return 0.0;
        }
        let spont: usize = self.methods.iter().map(|m| m.n_spontaneous).sum();
        spont as f64 / total as f64
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "analysis report for object `{}`", self.object)?;
        writeln!(
            f,
            "{:<18} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>9}",
            "method", "paths", "syncs", "entry", "assign", "spont", "loop", "predict@0"
        )?;
        for m in &self.methods {
            if !m.analyzable {
                writeln!(f, "{:<18} (unanalysable: recursion reachable)", m.name)?;
                continue;
            }
            writeln!(
                f,
                "{:<18} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6} {:>9}",
                m.name,
                m.path_count,
                m.n_syncs,
                m.n_at_entry,
                m.n_after_assign,
                m.n_spontaneous,
                m.n_repeatable,
                if m.predictable_at_entry { "yes" } else { "no" },
            )?;
        }
        Ok(())
    }
}

/// Analyses every start (public) method of `obj`.
pub fn analyze(obj: &ObjectImpl) -> AnalysisReport {
    let graph = CallGraph::build(obj);
    let methods = obj
        .start_methods()
        .into_iter()
        .map(|mi| method_report(obj, &graph, mi))
        .collect();
    AnalysisReport {
        object: obj.name.clone(),
        methods,
    }
}

fn method_report(obj: &ObjectImpl, graph: &CallGraph, mi: MethodIdx) -> MethodReport {
    let s: MethodSummary = summarize(obj, graph, mi);
    MethodReport {
        name: s.name.clone(),
        analyzable: s.analyzable,
        path_count: s.path_count,
        n_syncs: s.syncs.len(),
        n_at_entry: s
            .syncs
            .iter()
            .filter(|x| x.class == ParamClass::AtEntry)
            .count(),
        n_after_assign: s
            .syncs
            .iter()
            .filter(|x| x.class == ParamClass::AfterAssign)
            .count(),
        n_spontaneous: s.spontaneous_count(),
        n_repeatable: s.syncs.iter().filter(|x| x.repeatable).count(),
        predictable_at_entry: s.predictable_at_entry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{CondExpr, MutexExpr};
    use dmt_lang::ObjectBuilder;

    #[test]
    fn report_counts_classes() {
        let mut ob = ObjectBuilder::new("O");
        let f = ob.field();
        let mut m = ob.method("m", 1);
        m.sync(MutexExpr::Arg(0), |_| {});
        m.if_else(
            CondExpr::ArgFlag(0),
            |b| {
                b.sync(MutexExpr::Field(f), |_| {});
            },
            |_| {},
        );
        m.done();
        let report = analyze(&ob.build());
        assert_eq!(report.methods.len(), 1);
        let r = &report.methods[0];
        assert!(r.analyzable);
        assert_eq!(r.n_syncs, 2);
        assert_eq!(r.n_at_entry, 1);
        assert_eq!(r.n_spontaneous, 1);
        assert_eq!(r.path_count, 2);
        assert!(!r.predictable_at_entry);
        assert!((report.spontaneous_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(report.analyzable_fraction(), 1.0);
    }

    #[test]
    fn display_renders_every_method() {
        let mut ob = ObjectBuilder::new("O");
        let m = ob.method("alpha", 0);
        m.done();
        let self_idx = ob.next_method_idx();
        let mut rec = ob.method("beta", 0);
        rec.call(self_idx, vec![]);
        rec.done();
        let report = analyze(&ob.build());
        let text = report.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("unanalysable"));
        assert_eq!(report.analyzable_fraction(), 0.5);
    }
}
