//! The code-injection pass (paper §4.1–§4.2, Figure 4).
//!
//! Produces a rewritten object in which every method additionally tells
//! the scheduler's bookkeeping module how its lock future unfolds:
//!
//! * **entry announcements** — `lockInfo(syncid, mutex)` at method start
//!   for every block whose parameter is known at entry (`this`,
//!   constants, method parameters, argument-indexed pools);
//! * **post-assignment announcements** — for a block synchronising on a
//!   local variable that is assigned exactly once at the top level, the
//!   `lockInfo` goes right after that assignment ("right after the last
//!   assignment", §4.2); any other assignment pattern is treated as
//!   spontaneous (conservative, always sound: the lock itself then
//!   doubles as the announcement);
//! * **branch ignores** — entering one arm of an `if` emits
//!   `ignore(syncid)` for every block reachable only in the other arm
//!   (Figure 4);
//! * **post-loop ignores** — after a loop containing blocks, `ignore`
//!   retires their (repeatable) entries: "the mutex must be respected as
//!   long as the loop has not been finished" (§4.4);
//! * **return ignores** — an early return emits `ignore` for every block
//!   in the method's scope that is not currently held (Java's implicit
//!   monitor release handles the held ones);
//! * **post-virtual-call ignores** — after a dispatch site, the blocks of
//!   *all* candidates are retired; the chosen candidate resolved its own
//!   entries internally, the others were bypassed (§4.4 repository
//!   relaxation).
//!
//! Blocks reachable through *multiply-invoked* methods are never ignored
//! (and are marked repeatable in the lock table): their entries must stay
//! pinned because a later call may lock them again — the sound, if
//! pessimistic, reading of §4.4.

use crate::callgraph::CallGraph;
use crate::lockparam::{classify, ParamClass};
use dmt_lang::ast::{Method, MutexExpr, ObjectImpl, Stmt};
use dmt_lang::ids::LocalId;
use dmt_lang::{MethodIdx, SyncId};
use std::collections::{BTreeSet, HashMap};

/// Rewrites `obj` with bookkeeping announcements. Syncids are preserved.
pub fn transform(obj: &ObjectImpl) -> ObjectImpl {
    let graph = CallGraph::build(obj);
    let scopes = IgnoreScopes::build(obj, &graph);
    let methods = (0..obj.methods.len())
        .map(|i| transform_method(obj, &graph, &scopes, MethodIdx::new(i as u32)))
        .collect();
    ObjectImpl {
        name: obj.name.clone(),
        methods,
        n_cells: obj.n_cells,
        n_fields: obj.n_fields,
    }
}

/// Per-method "ignore scope": the syncids a path through the method is
/// responsible for resolving — its own blocks plus those of singly-called
/// callees, transitively. Multiply-called callees are excluded (their
/// entries stay pinned).
struct IgnoreScopes {
    per_method: Vec<BTreeSet<SyncId>>,
}

impl IgnoreScopes {
    fn build(obj: &ObjectImpl, graph: &CallGraph) -> Self {
        let n = obj.methods.len();
        let mut per_method = vec![BTreeSet::new(); n];
        // Iterate to a fixpoint; the graph is acyclic for analysable
        // methods and small in practice.
        for _ in 0..n + 1 {
            for mi in 0..n {
                let mut set: BTreeSet<SyncId> = own_syncs(&obj.methods[mi].body);
                for &callee in graph.callees(MethodIdx::new(mi as u32)) {
                    if !graph.multi_called(callee) && !graph.reaches_recursion(callee) {
                        set.extend(per_method[callee.index()].iter().copied());
                    }
                }
                per_method[mi] = set;
            }
        }
        IgnoreScopes { per_method }
    }

    fn of(&self, m: MethodIdx) -> &BTreeSet<SyncId> {
        &self.per_method[m.index()]
    }
}

fn own_syncs(stmts: &[Stmt]) -> BTreeSet<SyncId> {
    let mut out = BTreeSet::new();
    visit_own(stmts, &mut |sid, _| {
        out.insert(sid);
    });
    out
}

/// Visits the method's own sync blocks (not through calls).
fn visit_own(stmts: &[Stmt], f: &mut impl FnMut(SyncId, &MutexExpr)) {
    for s in stmts {
        match s {
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                f(*sync_id, param);
                visit_own(body, f);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_own(then_branch, f);
                visit_own(else_branch, f);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => visit_own(body, f),
            _ => {}
        }
    }
}

/// Syncids a block can resolve: own blocks plus scopes of singly-called
/// callees invoked within it.
fn block_scope(stmts: &[Stmt], graph: &CallGraph, scopes: &IgnoreScopes) -> BTreeSet<SyncId> {
    let mut out = BTreeSet::new();
    for s in stmts {
        match s {
            Stmt::Sync { sync_id, body, .. } => {
                out.insert(*sync_id);
                out.extend(block_scope(body, graph, scopes));
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                out.extend(block_scope(then_branch, graph, scopes));
                out.extend(block_scope(else_branch, graph, scopes));
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                out.extend(block_scope(body, graph, scopes));
            }
            Stmt::Call { method, .. }
                if !graph.multi_called(*method) && !graph.reaches_recursion(*method) =>
            {
                out.extend(scopes.of(*method).iter().copied());
            }
            Stmt::VirtualCall { candidates, .. } => {
                for &c in candidates {
                    if !graph.multi_called(c) && !graph.reaches_recursion(c) {
                        out.extend(scopes.of(c).iter().copied());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn transform_method(
    obj: &ObjectImpl,
    graph: &CallGraph,
    scopes: &IgnoreScopes,
    mi: MethodIdx,
) -> Method {
    let m = obj.method(mi);
    // Locals assigned exactly once at the top level of the body, with the
    // statement index of that assignment.
    let mut assign_counts: HashMap<LocalId, usize> = HashMap::new();
    count_assigns(&m.body, &mut assign_counts);
    let top_level_single_assign: HashMap<LocalId, usize> = m
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Stmt::Assign { local, .. } if assign_counts.get(local) == Some(&1) => Some((*local, i)),
            _ => None,
        })
        .collect();

    // Syncs announceable at entry / after a qualifying assignment.
    let mut entry_infos: Vec<(SyncId, MutexExpr)> = Vec::new();
    let mut after_assign: HashMap<usize, Vec<(SyncId, MutexExpr)>> = HashMap::new();
    visit_own(&m.body, &mut |sid, param| match classify(param) {
        ParamClass::AtEntry => entry_infos.push((sid, param.clone())),
        ParamClass::AfterAssign => {
            if let MutexExpr::Local(l) = param {
                if let Some(&idx) = top_level_single_assign.get(l) {
                    after_assign
                        .entry(idx)
                        .or_default()
                        .push((sid, param.clone()));
                }
                // Otherwise: conservative — treated as spontaneous.
            }
        }
        ParamClass::Spontaneous => {}
    });
    entry_infos.sort_by_key(|&(sid, _)| sid);

    // A method that can run more than once per request (multiple call
    // sites, or called from a loop) must not retire entries at all: a
    // branch "bypassed" in this activation may be taken in the next one.
    // Its whole body is treated like a loop body.
    let reexecutable = graph.multi_called(mi);
    let ctx = Ctx {
        graph,
        scopes,
        method_scope: scopes.of(mi).clone(),
        reexecutable,
    };
    let mut body = Vec::with_capacity(m.body.len() + entry_infos.len());
    for (sid, param) in entry_infos {
        body.push(Stmt::LockInfo {
            sync_id: sid,
            param,
        });
    }
    rewrite_block(
        &m.body,
        &ctx,
        &after_assign,
        &mut Vec::new(),
        Pos {
            top_level: true,
            in_loop: reexecutable,
        },
        &mut body,
    );

    Method {
        name: m.name.clone(),
        arity: m.arity,
        n_locals: m.n_locals,
        public: m.public,
        is_final: m.is_final,
        body,
    }
}

fn count_assigns(stmts: &[Stmt], out: &mut HashMap<LocalId, usize>) {
    for s in stmts {
        match s {
            Stmt::Assign { local, .. } => *out.entry(*local).or_insert(0) += 1,
            Stmt::Sync { body, .. } | Stmt::For { body, .. } | Stmt::While { body, .. } => {
                count_assigns(body, out)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                count_assigns(then_branch, out);
                count_assigns(else_branch, out);
            }
            _ => {}
        }
    }
}

struct Ctx<'a> {
    graph: &'a CallGraph,
    scopes: &'a IgnoreScopes,
    /// Syncids this method's paths are responsible for resolving.
    method_scope: BTreeSet<SyncId>,
    /// Method may run repeatedly within one request: no ignores at all.
    reexecutable: bool,
}

/// Rewrite position: `top_level` enables the post-assignment lockInfo
/// placement (computed over top-level indices only); `in_loop` suppresses
/// branch and post-loop ignores — a later iteration may re-enter the
/// "bypassed" block, so retiring its entry inside a loop is unsound (the
/// outermost loop's own post-loop ignore retires everything instead).
#[derive(Clone, Copy)]
struct Pos {
    top_level: bool,
    in_loop: bool,
}

/// Rewrites one block. `held` tracks enclosing sync blocks (excluded from
/// return-ignores).
fn rewrite_block(
    stmts: &[Stmt],
    ctx: &Ctx<'_>,
    after_assign: &HashMap<usize, Vec<(SyncId, MutexExpr)>>,
    held: &mut Vec<SyncId>,
    pos: Pos,
    out: &mut Vec<Stmt>,
) {
    for (i, s) in stmts.iter().enumerate() {
        match s {
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                let mut new_body = Vec::with_capacity(body.len());
                held.push(*sync_id);
                rewrite_block(
                    body,
                    ctx,
                    after_assign,
                    held,
                    Pos {
                        top_level: false,
                        ..pos
                    },
                    &mut new_body,
                );
                held.pop();
                out.push(Stmt::Sync {
                    sync_id: *sync_id,
                    param: param.clone(),
                    body: new_body,
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let inner_pos = Pos {
                    top_level: false,
                    ..pos
                };
                let mut new_then = Vec::new();
                let mut new_else = Vec::new();
                if !pos.in_loop {
                    let then_scope = block_scope(then_branch, ctx.graph, ctx.scopes);
                    let else_scope = block_scope(else_branch, ctx.graph, ctx.scopes);
                    for &sid in else_scope.difference(&then_scope) {
                        new_then.push(Stmt::IgnoreSync { sync_id: sid });
                    }
                    for &sid in then_scope.difference(&else_scope) {
                        new_else.push(Stmt::IgnoreSync { sync_id: sid });
                    }
                }
                rewrite_block(
                    then_branch,
                    ctx,
                    after_assign,
                    held,
                    inner_pos,
                    &mut new_then,
                );
                rewrite_block(
                    else_branch,
                    ctx,
                    after_assign,
                    held,
                    inner_pos,
                    &mut new_else,
                );
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: new_then,
                    else_branch: new_else,
                });
            }
            Stmt::For { count, body } => {
                let inner = block_scope(body, ctx.graph, ctx.scopes);
                let mut new_body = Vec::new();
                rewrite_block(
                    body,
                    ctx,
                    after_assign,
                    held,
                    Pos {
                        top_level: false,
                        in_loop: true,
                    },
                    &mut new_body,
                );
                out.push(Stmt::For {
                    count: count.clone(),
                    body: new_body,
                });
                if !pos.in_loop {
                    for &sid in &inner {
                        out.push(Stmt::IgnoreSync { sync_id: sid });
                    }
                }
            }
            Stmt::While { cond, body } => {
                let inner = block_scope(body, ctx.graph, ctx.scopes);
                let mut new_body = Vec::new();
                rewrite_block(
                    body,
                    ctx,
                    after_assign,
                    held,
                    Pos {
                        top_level: false,
                        in_loop: true,
                    },
                    &mut new_body,
                );
                out.push(Stmt::While {
                    cond: cond.clone(),
                    body: new_body,
                });
                if !pos.in_loop {
                    for &sid in &inner {
                        out.push(Stmt::IgnoreSync { sync_id: sid });
                    }
                }
            }
            Stmt::Return => {
                // Retire everything in scope that is not currently held —
                // unless this method can run again within the request.
                if !ctx.reexecutable {
                    for &sid in &ctx.method_scope {
                        if !held.contains(&sid) {
                            out.push(Stmt::IgnoreSync { sync_id: sid });
                        }
                    }
                }
                out.push(Stmt::Return);
            }
            Stmt::VirtualCall {
                site,
                candidates,
                selector,
                args,
            } => {
                out.push(Stmt::VirtualCall {
                    site: *site,
                    candidates: candidates.clone(),
                    selector: selector.clone(),
                    args: args.clone(),
                });
                // A site inside a loop makes its candidates multi-called,
                // so `retired` is empty there by construction; checking
                // `pos.in_loop` as well keeps the invariant explicit.
                if !pos.in_loop {
                    let mut retired = BTreeSet::new();
                    for &c in candidates {
                        if !ctx.graph.multi_called(c) && !ctx.graph.reaches_recursion(c) {
                            retired.extend(ctx.scopes.of(c).iter().copied());
                        }
                    }
                    for sid in retired {
                        out.push(Stmt::IgnoreSync { sync_id: sid });
                    }
                }
            }
            Stmt::Assign { local, expr } => {
                out.push(Stmt::Assign {
                    local: *local,
                    expr: expr.clone(),
                });
                if pos.top_level {
                    if let Some(infos) = after_assign.get(&i) {
                        for (sid, param) in infos {
                            out.push(Stmt::LockInfo {
                                sync_id: *sid,
                                param: param.clone(),
                            });
                        }
                    }
                }
            }
            other => out.push(other.clone()),
        }
    }
}

/// Per-method census of the superinstruction fusion pass.
///
/// The fusion pass itself lives in `dmt_lang::threaded` rather than here:
/// it rewrites the threaded op stream at lowering time, is on by default
/// for every compile, and `dmt-analysis` depends on `dmt-lang` (not the
/// other way around), so the rewrite cannot live in this crate without a
/// dependency cycle. What belongs at the analysis layer is the *audit*:
/// which pairs fused where, and the proof obligation that fusion changed
/// no scheduler-visible behaviour. [`audit_fusion`] compiles the object
/// twice (fused and unfused) and checks that every method's
/// action-emission profile — the sequence of opcodes that end an
/// interpreter step with a scheduler [`Action`](dmt_lang::Action) — is
/// identical under both, the static face of the
/// fusion-never-crosses-a-sync-boundary invariant (DESIGN.md §10).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodFusion {
    pub name: String,
    /// Threaded ops before fusion (carriers included after).
    pub ops: usize,
    /// `Update ; Unlock` pairs fused.
    pub update_unlock: u32,
    /// `UpdateIndexed ; Unlock` pairs fused (the Figure-1 hot pair).
    pub update_indexed_unlock: u32,
    /// `SetCell ; Unlock` pairs fused.
    pub set_cell_unlock: u32,
    /// `BranchIfFalse ; Compute` pairs fused.
    pub br_false_compute: u32,
    /// `BranchIfFalse ; Nested` pairs fused.
    pub br_false_nested: u32,
}

impl MethodFusion {
    pub fn pairs(&self) -> u32 {
        self.update_unlock
            + self.update_indexed_unlock
            + self.set_cell_unlock
            + self.br_false_compute
            + self.br_false_nested
    }
}

/// The whole-object fusion audit: per-method pair counts plus the
/// emission-equivalence check.
#[derive(Clone, Debug, Default)]
pub struct FusionAudit {
    pub per_method: Vec<MethodFusion>,
}

impl FusionAudit {
    /// Total fused pairs across the object. Always equals the compiled
    /// program's own [`fused_pairs`](dmt_lang::threaded::ThreadedCode)
    /// meter ([`audit_fusion`] asserts it).
    pub fn total_pairs(&self) -> u32 {
        self.per_method.iter().map(MethodFusion::pairs).sum()
    }
}

impl std::fmt::Display for FusionAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<18} {:>5} {:>7} {:>9} {:>9} {:>8} {:>8}",
            "method", "ops", "upd+ul", "updix+ul", "setc+ul", "br+comp", "br+nest"
        )?;
        for m in &self.per_method {
            writeln!(
                f,
                "{:<18} {:>5} {:>7} {:>9} {:>9} {:>8} {:>8}",
                m.name,
                m.ops,
                m.update_unlock,
                m.update_indexed_unlock,
                m.set_cell_unlock,
                m.br_false_compute,
                m.br_false_nested
            )?;
        }
        writeln!(f, "total fused pairs: {}", self.total_pairs())
    }
}

/// Audits the superinstruction fusion of `obj`: counts fused pairs per
/// method and verifies fused/unfused action-emission equivalence.
///
/// Panics if fusion changed any method's emission profile — that would
/// mean a superinstruction swallowed or reordered a scheduler
/// consultation, which no optimisation is licensed to do.
pub fn audit_fusion(obj: &ObjectImpl) -> FusionAudit {
    use dmt_lang::threaded::{action_profile, OpCode};

    let fused = dmt_lang::compile::compile(obj);
    let plain = dmt_lang::compile_unfused(obj);
    let mut audit = FusionAudit::default();
    for (mi, m) in fused.methods.iter().enumerate() {
        let len = m.code.len();
        assert_eq!(
            action_profile(&fused.flat, mi, len),
            action_profile(&plain.flat, mi, len),
            "fusion changed the action profile of `{}`",
            m.name
        );
        let start = fused.flat.entries[mi] as usize;
        let mut row = MethodFusion {
            name: m.name.clone(),
            ops: len,
            ..MethodFusion::default()
        };
        for op in &fused.flat.ops[start..start + len] {
            match op.code {
                OpCode::UpdateUnlock => row.update_unlock += 1,
                OpCode::UpdateIndexedUnlock => row.update_indexed_unlock += 1,
                OpCode::SetCellUnlock => row.set_cell_unlock += 1,
                OpCode::BrFalseCompute => row.br_false_compute += 1,
                OpCode::BrFalseNested => row.br_false_nested += 1,
                _ => {}
            }
        }
        audit.per_method.push(row);
    }
    assert_eq!(
        audit.total_pairs(),
        fused.flat.fused_pairs,
        "audit census disagrees with the lowering's own fused-pair meter"
    );
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{ArgExpr, CondExpr, CountExpr, DurExpr};
    use dmt_lang::ObjectBuilder;

    fn find_stmts<'a>(body: &'a [Stmt], pred: &impl Fn(&Stmt) -> bool, out: &mut Vec<&'a Stmt>) {
        for s in body {
            if pred(s) {
                out.push(s);
            }
            match s {
                Stmt::Sync { body, .. } | Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    find_stmts(body, pred, out)
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    find_stmts(then_branch, pred, out);
                    find_stmts(else_branch, pred, out);
                }
                _ => {}
            }
        }
    }

    fn all_matching(obj: &ObjectImpl, name: &str, pred: impl Fn(&Stmt) -> bool) -> usize {
        let mi = obj.method_by_name(name).unwrap();
        let mut out = Vec::new();
        find_stmts(&obj.method(mi).body, &pred, &mut out);
        out.len()
    }

    /// The Figure 4 example: two branches, arg param vs. field param.
    fn figure4() -> ObjectImpl {
        let mut ob = ObjectBuilder::new("Fig4");
        let myo = ob.field();
        let mut m = ob.method("foo", 1);
        m.if_else(
            CondExpr::ParamEqField(0, myo),
            |b| {
                b.sync(MutexExpr::Arg(0), |_| {});
            },
            |b| {
                b.sync(MutexExpr::Field(myo), |_| {});
            },
        );
        m.done();
        ob.build()
    }

    #[test]
    fn figure4_transformation() {
        let t = transform(&figure4());
        let mi = t.method_by_name("foo").unwrap();
        let body = &t.method(mi).body;
        // lockInfo for the arg-param block (syncid 0) at method entry.
        assert_eq!(
            body[0],
            Stmt::LockInfo {
                sync_id: SyncId::new(0),
                param: MutexExpr::Arg(0)
            }
        );
        // Branches ignore each other's blocks.
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &body[1]
        else {
            panic!("expected if")
        };
        assert_eq!(
            then_branch[0],
            Stmt::IgnoreSync {
                sync_id: SyncId::new(1)
            }
        );
        assert_eq!(
            else_branch[0],
            Stmt::IgnoreSync {
                sync_id: SyncId::new(0)
            }
        );
        // The spontaneous field param got no lockInfo anywhere.
        let infos = all_matching(
            &t,
            "foo",
            |s| matches!(s, Stmt::LockInfo { sync_id, .. } if *sync_id == SyncId::new(1)),
        );
        assert_eq!(infos, 0);
    }

    #[test]
    fn syncids_are_preserved() {
        let obj = figure4();
        let t = transform(&obj);
        assert_eq!(obj.all_sync_ids(), t.all_sync_ids());
        assert!(
            t.validate().is_empty(),
            "transformed object must stay valid"
        );
    }

    #[test]
    fn loops_get_post_loop_ignores() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        m.for_loop(CountExpr::Lit(3), |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        });
        m.done();
        let t = transform(&ob.build());
        let body = &t.method(MethodIdx::new(0)).body;
        // entry lockInfo, loop, post-loop ignore.
        assert!(matches!(body[0], Stmt::LockInfo { .. }));
        assert!(matches!(body[1], Stmt::For { .. }));
        assert_eq!(
            body[2],
            Stmt::IgnoreSync {
                sync_id: SyncId::new(0)
            }
        );
    }

    #[test]
    fn returns_retire_unexecuted_blocks_but_not_held_ones() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 2);
        m.sync(MutexExpr::Arg(0), |b| {
            b.if_then(CondExpr::ArgFlag(1), |b| {
                b.ret();
            });
        });
        m.sync(MutexExpr::This, |_| {});
        m.done();
        let t = transform(&ob.build());
        let mut rets = Vec::new();
        find_stmts(
            &t.method(MethodIdx::new(0)).body,
            &|s| matches!(s, Stmt::Return),
            &mut rets,
        );
        assert_eq!(rets.len(), 1);
        // The ignore for the *second* block (syncid 1) must precede the
        // return; the held first block (syncid 0) must not be ignored.
        let mut ignores = Vec::new();
        find_stmts(
            &t.method(MethodIdx::new(0)).body,
            &|s| matches!(s, Stmt::IgnoreSync { .. }),
            &mut ignores,
        );
        assert!(ignores.contains(&&Stmt::IgnoreSync {
            sync_id: SyncId::new(1)
        }));
        assert!(!ignores.contains(&&Stmt::IgnoreSync {
            sync_id: SyncId::new(0)
        }));
    }

    #[test]
    fn local_param_announced_after_single_assignment() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        let l = m.local();
        m.compute(DurExpr::millis(1));
        m.assign(l, MutexExpr::Arg(0));
        m.sync(MutexExpr::Local(l), |_| {});
        m.done();
        let t = transform(&ob.build());
        let body = &t.method(MethodIdx::new(0)).body;
        // compute, assign, lockInfo, sync
        assert!(matches!(body[0], Stmt::Compute(_)));
        assert!(matches!(body[1], Stmt::Assign { .. }));
        assert_eq!(
            body[2],
            Stmt::LockInfo {
                sync_id: SyncId::new(0),
                param: MutexExpr::Local(LocalId::new(0))
            }
        );
    }

    #[test]
    fn reassigned_local_is_treated_spontaneously() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        let l = m.local();
        m.assign(l, MutexExpr::Arg(0));
        m.assign(l, MutexExpr::This);
        m.sync(MutexExpr::Local(l), |_| {});
        m.done();
        let t = transform(&ob.build());
        assert_eq!(
            all_matching(&t, "m", |s| matches!(s, Stmt::LockInfo { .. })),
            0
        );
    }

    #[test]
    fn virtual_call_retires_all_candidates() {
        let mut ob = ObjectBuilder::new("O");
        let mut a = ob.method("a", 0).private().non_final();
        a.sync(MutexExpr::This, |_| {});
        let a_idx = a.done();
        let mut b = ob.method("b", 0).private().non_final();
        b.sync(MutexExpr::This, |_| {});
        let b_idx = b.done();
        let mut m = ob.method("m", 1);
        m.virtual_call(vec![a_idx, b_idx], dmt_lang::ast::IntExpr::Arg(0), vec![]);
        m.done();
        let t = transform(&ob.build());
        let body = &t.method(t.method_by_name("m").unwrap()).body;
        assert!(matches!(body[0], Stmt::VirtualCall { .. }));
        assert_eq!(
            body[1],
            Stmt::IgnoreSync {
                sync_id: SyncId::new(0)
            }
        );
        assert_eq!(
            body[2],
            Stmt::IgnoreSync {
                sync_id: SyncId::new(1)
            }
        );
    }

    #[test]
    fn fusion_audit_counts_hot_pairs_and_matches_meter() {
        let mut ob = ObjectBuilder::new("O");
        let cell = ob.cell();
        let mut m = ob.method("m", 2);
        m.sync(MutexExpr::Arg(0), |b| {
            // `update` directly before the monitor exit: the canonical
            // critical-section tail, fused to UpdateUnlock.
            b.update(cell, dmt_lang::ast::IntExpr::Lit(1));
        });
        m.done();
        let obj = ob.build();
        let audit = audit_fusion(&obj);
        assert_eq!(audit.per_method.len(), 1);
        assert_eq!(audit.per_method[0].name, "m");
        assert_eq!(audit.per_method[0].update_unlock, 1);
        assert_eq!(audit.total_pairs(), 1);
        // The rendered census stays greppable for tooling.
        let shown = audit.to_string();
        assert!(shown.contains("total fused pairs: 1"), "{shown}");
    }

    #[test]
    fn fusion_audit_covers_transformed_objects_too() {
        // The audit must hold for the bookkeeping-injected rewrite as
        // well — lockInfo/ignore are action opcodes and must never be
        // swallowed by fusion.
        let t = transform(&figure4());
        let audit = audit_fusion(&t);
        assert_eq!(audit.per_method.len(), t.methods.len());
    }

    #[test]
    fn multi_called_callee_blocks_never_ignored() {
        let mut ob = ObjectBuilder::new("O");
        let mut h = ob.method("h", 0).private();
        h.sync(MutexExpr::This, |_| {});
        let h_idx = h.done();
        let mut m = ob.method("m", 1);
        m.if_else(
            CondExpr::ArgFlag(0),
            |b| {
                b.call(h_idx, vec![]);
            },
            |_| {},
        );
        m.call(h_idx, vec![]);
        m.done();
        let t = transform(&ob.build());
        // h is multi-called → its block must never appear in an ignore.
        assert_eq!(
            all_matching(&t, "m", |s| matches!(s, Stmt::IgnoreSync { .. })),
            0
        );
        let _ = ArgExpr::CallerArg(0);
    }
}
