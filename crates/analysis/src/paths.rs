//! Execution-path enumeration (paper §4.1).
//!
//! "By code analysis, we can figure out all execution paths for all start
//! methods and the syncids of the synchronized blocks on the paths." The
//! summary computed here records, for one start method, every syncid its
//! flow can pass (transitively through calls), each with its parameter
//! class and whether it can be entered repeatedly — plus the path count
//! the paper's "limited number of paths" restriction refers to.

use crate::callgraph::CallGraph;
use crate::lockparam::{classify, ParamClass};
use dmt_lang::ast::{MutexExpr, ObjectImpl, Stmt};
use dmt_lang::{MethodIdx, SyncId};

/// One synchronized block reachable from a start method.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncInfo {
    pub sync_id: SyncId,
    /// Method whose body contains the block.
    pub in_method: MethodIdx,
    pub param: MutexExpr,
    pub class: ParamClass,
    /// Entered under a loop in its own method, or reachable via a method
    /// invoked more than once per request — the lock can recur, so the
    /// table entry must stay pinned until an explicit ignore (§4.4).
    pub repeatable: bool,
}

/// Static summary of one start method.
#[derive(Clone, Debug)]
pub struct MethodSummary {
    pub method: MethodIdx,
    pub name: String,
    /// False when recursion is reachable: the analysis steps back to the
    /// unpredicted algorithm for this method (paper §4.4).
    pub analyzable: bool,
    /// All reachable synchronized blocks, ordered by syncid.
    pub syncs: Vec<SyncInfo>,
    /// Number of distinct execution paths (branches multiply, loops count
    /// as take-or-skip, virtual calls sum over candidates). Saturating.
    pub path_count: u64,
}

impl MethodSummary {
    pub fn spontaneous_count(&self) -> usize {
        self.syncs
            .iter()
            .filter(|s| s.class.is_spontaneous())
            .count()
    }

    pub fn at_entry_count(&self) -> usize {
        self.syncs
            .iter()
            .filter(|s| s.class == ParamClass::AtEntry)
            .count()
    }

    /// Can the thread be predicted the moment the method starts (every
    /// lock parameter known at entry and nothing repeatable-unbounded)?
    pub fn predictable_at_entry(&self) -> bool {
        self.analyzable && self.syncs.iter().all(|s| s.class == ParamClass::AtEntry)
    }
}

/// Summarises `start` (usually a public method) of `obj`.
pub fn summarize(obj: &ObjectImpl, graph: &CallGraph, start: MethodIdx) -> MethodSummary {
    let name = obj.method(start).name.clone();
    if graph.reaches_recursion(start) {
        return MethodSummary {
            method: start,
            name,
            analyzable: false,
            syncs: Vec::new(),
            path_count: 0,
        };
    }
    let mut syncs = Vec::new();
    for m in graph.reachable(start) {
        let repeat_via_calls = m != start && graph.multi_called(m);
        collect_syncs(&obj.method(m).body, m, false, repeat_via_calls, &mut syncs);
    }
    syncs.sort_by_key(|s| s.sync_id);
    let path_count = count_paths(obj, graph, start);
    MethodSummary {
        method: start,
        name,
        analyzable: true,
        syncs,
        path_count,
    }
}

fn collect_syncs(
    stmts: &[Stmt],
    in_method: MethodIdx,
    in_loop: bool,
    repeat_via_calls: bool,
    out: &mut Vec<SyncInfo>,
) {
    for s in stmts {
        match s {
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                out.push(SyncInfo {
                    sync_id: *sync_id,
                    in_method,
                    param: param.clone(),
                    class: classify(param),
                    repeatable: in_loop || repeat_via_calls,
                });
                collect_syncs(body, in_method, in_loop, repeat_via_calls, out);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_syncs(then_branch, in_method, in_loop, repeat_via_calls, out);
                collect_syncs(else_branch, in_method, in_loop, repeat_via_calls, out);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                collect_syncs(body, in_method, true, repeat_via_calls, out);
            }
            _ => {}
        }
    }
}

/// Path count with memoised per-method results. Recursion was excluded
/// before calling.
fn count_paths(obj: &ObjectImpl, graph: &CallGraph, start: MethodIdx) -> u64 {
    fn of_method(obj: &ObjectImpl, m: MethodIdx, memo: &mut Vec<Option<u64>>) -> u64 {
        if let Some(v) = memo[m.index()] {
            return v;
        }
        // Mark with 1 to guard against unexpected cycles (validated
        // acyclic by the caller).
        memo[m.index()] = Some(1);
        let v = of_block(obj, &obj.method(m).body, memo);
        memo[m.index()] = Some(v);
        v
    }

    fn of_block(obj: &ObjectImpl, stmts: &[Stmt], memo: &mut Vec<Option<u64>>) -> u64 {
        let mut paths: u64 = 1;
        for s in stmts {
            let f = match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => of_block(obj, then_branch, memo).saturating_add(of_block(
                    obj,
                    else_branch,
                    memo,
                )),
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    // Take-or-skip abstraction for counting purposes.
                    of_block(obj, body, memo).saturating_add(1)
                }
                Stmt::Sync { body, .. } => of_block(obj, body, memo),
                Stmt::Call { method, .. } => of_method(obj, *method, memo),
                Stmt::VirtualCall { candidates, .. } => candidates
                    .iter()
                    .map(|c| of_method(obj, *c, memo))
                    .fold(0u64, u64::saturating_add),
                _ => 1,
            };
            paths = paths.saturating_mul(f.max(1));
        }
        paths
    }

    let _ = graph;
    let mut memo = vec![None; obj.methods.len()];
    of_method(obj, start, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::ast::{CondExpr, CountExpr, IntExpr};
    use dmt_lang::ObjectBuilder;

    fn summarize_obj(obj: &ObjectImpl, name: &str) -> MethodSummary {
        let graph = CallGraph::build(obj);
        summarize(obj, &graph, obj.method_by_name(name).unwrap())
    }

    #[test]
    fn straight_line_single_sync() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        m.sync(MutexExpr::Arg(0), |_| {});
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        assert!(s.analyzable);
        assert_eq!(s.syncs.len(), 1);
        assert_eq!(s.syncs[0].class, ParamClass::AtEntry);
        assert!(!s.syncs[0].repeatable);
        assert_eq!(s.path_count, 1);
        assert!(s.predictable_at_entry());
    }

    #[test]
    fn figure4_shape_counts_two_paths() {
        // if (myo.equals(o)) sync(o) {} else sync(myo) {}
        let mut ob = ObjectBuilder::new("O");
        let myo = ob.field();
        let mut m = ob.method("foo", 1);
        m.if_else(
            CondExpr::ParamEqField(0, myo),
            |b| {
                b.sync(MutexExpr::Arg(0), |_| {});
            },
            |b| {
                b.sync(MutexExpr::Field(myo), |_| {});
            },
        );
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "foo");
        assert_eq!(s.path_count, 2);
        assert_eq!(s.syncs.len(), 2);
        assert_eq!(s.at_entry_count(), 1);
        assert_eq!(s.spontaneous_count(), 1);
        assert!(!s.predictable_at_entry());
    }

    #[test]
    fn loops_mark_repeatable() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        m.for_loop(CountExpr::Lit(10), |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        });
        m.sync(MutexExpr::This, |_| {});
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        let rep: Vec<bool> = s.syncs.iter().map(|x| x.repeatable).collect();
        assert_eq!(rep, vec![true, false]);
    }

    #[test]
    fn callee_syncs_are_included() {
        let mut ob = ObjectBuilder::new("O");
        let mut helper = ob.method("helper", 1).private();
        helper.sync(MutexExpr::Arg(0), |_| {});
        let helper_idx = helper.done();
        let mut m = ob.method("m", 1);
        m.call(helper_idx, vec![dmt_lang::ast::ArgExpr::CallerArg(0)]);
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        assert_eq!(s.syncs.len(), 1);
        assert_eq!(s.syncs[0].in_method, helper_idx);
        assert!(
            !s.syncs[0].repeatable,
            "singly-called callee is not repeatable"
        );
    }

    #[test]
    fn multi_called_callee_marks_repeatable() {
        let mut ob = ObjectBuilder::new("O");
        let mut helper = ob.method("helper", 0).private();
        helper.sync(MutexExpr::This, |_| {});
        let helper_idx = helper.done();
        let mut m = ob.method("m", 0);
        m.call(helper_idx, vec![]);
        m.call(helper_idx, vec![]);
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        assert_eq!(s.syncs.len(), 1);
        assert!(s.syncs[0].repeatable);
    }

    #[test]
    fn recursion_is_unanalyzable() {
        let mut ob = ObjectBuilder::new("O");
        let self_idx = ob.next_method_idx();
        let mut m = ob.method("rec", 0);
        m.call(self_idx, vec![]);
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "rec");
        assert!(!s.analyzable);
        assert!(s.syncs.is_empty());
    }

    #[test]
    fn virtual_call_paths_sum() {
        let mut ob = ObjectBuilder::new("O");
        let mut a = ob.method("a", 0).private().non_final();
        a.if_else(CondExpr::Konst(true), |_| {}, |_| {});
        let a_idx = a.done();
        let b = ob.method("b", 0).private().non_final();
        let b_idx = b.done();
        let mut m = ob.method("m", 1);
        m.virtual_call(vec![a_idx, b_idx], IntExpr::Arg(0), vec![]);
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        assert_eq!(s.path_count, 3); // a has 2 paths + b has 1
    }

    #[test]
    fn path_count_multiplies_sequential_branches() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 2);
        for i in 0..2 {
            m.if_else(CondExpr::ArgFlag(i), |_| {}, |_| {});
        }
        m.done();
        let obj = ob.build();
        let s = summarize_obj(&obj, "m");
        assert_eq!(s.path_count, 4);
    }
}
