//! Golden test for the paper's Figure 4: the exact transformation of
//!
//! ```java
//! private Object myo;
//! public void foo(Object o) {
//!     if (myo.equals(o)) synchronized(o) { … }
//!     else synchronized(myo) { … }
//! }
//! ```
//!
//! into scheduler calls with the injected `lockInfo`/`ignore` pattern the
//! paper prints. The rendered output is pinned verbatim so any change to
//! the injection strategy has to be acknowledged here.

use dmt_analysis::{pretty, transform};
use dmt_lang::ast::{CondExpr, MutexExpr};
use dmt_lang::ObjectBuilder;

fn figure4_object() -> dmt_lang::ast::ObjectImpl {
    let mut ob = ObjectBuilder::new("Fig4");
    let myo = ob.field();
    let mut m = ob.method("foo", 1);
    m.if_else(
        CondExpr::ParamEqField(0, myo),
        |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        },
        |b| {
            b.sync(MutexExpr::Field(myo), |_| {});
        },
    );
    m.done();
    ob.build()
}

#[test]
fn figure4_transformation_is_pinned() {
    let transformed = transform(&figure4_object());
    let rendered = pretty::print_object(&transformed);
    let expected = "\
class Fig4 {
    public final void foo(Object a0) {
        scheduler.lockInfo(0, a0);
        if (this.f0.equals(a0)) {
            scheduler.ignore(1);
            scheduler.lock(0, a0);
            scheduler.unlock(0, a0);
        } else {
            scheduler.ignore(0);
            scheduler.lock(1, this.f0);
            scheduler.unlock(1, this.f0);
        }
    }
}
";
    assert_eq!(rendered, expected, "Figure 4 output drifted:\n{rendered}");
}

#[test]
fn figure4_matches_papers_injection_pattern() {
    // The paper's checklist for this example (§4.2, Figure 4):
    // 1. the non-spontaneous parameter is announced right after method
    //    start;
    let transformed = transform(&figure4_object());
    let rendered = pretty::print_object(&transformed);
    let announce = rendered
        .find("scheduler.lockInfo(0, a0);")
        .expect("entry announcement");
    let branch = rendered.find("if (").expect("branch");
    assert!(announce < branch, "announcement must precede the branch");
    // 2. the spontaneous parameter (instance variable) gets no lockInfo;
    assert!(!rendered.contains("lockInfo(1"));
    // 3. each path ignores the other path's block.
    assert!(rendered.contains("scheduler.ignore(1);"));
    assert!(rendered.contains("scheduler.ignore(0);"));
}
