//! Wall-clock bench for the Figure-3 experiment (lock prediction on
//! disjoint mutex sets): MAT vs MAT-LL vs PMAT. Asserts the virtual-time
//! win before timing the simulations.

use dmt_bench::ubench::time_case;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig3;
use std::hint::black_box;

fn main() {
    let params = fig3::Fig3Params {
        n_clients: 6,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig3::scenario(&params);

    let mean = |kind: SchedulerKind| {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    };
    assert!(mean(SchedulerKind::Pmat) < mean(SchedulerKind::Mat));

    for kind in [
        SchedulerKind::Mat,
        SchedulerKind::MatLL,
        SchedulerKind::Pmat,
    ] {
        let scenario = pair.for_kind(kind);
        time_case("fig3_prediction", kind.name(), || {
            let cfg = EngineConfig::new(kind).with_seed(3);
            Engine::new(black_box(scenario.clone()), cfg).run().makespan
        });
    }
}
