//! Criterion bench for the Figure-3 experiment (lock prediction on
//! disjoint mutex sets): MAT vs MAT-LL vs PMAT. Asserts the virtual-time
//! win before timing the simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig3;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let params = fig3::Fig3Params { n_clients: 6, requests_per_client: 2, ..Default::default() };
    let pair = fig3::scenario(&params);

    let mean = |kind: SchedulerKind| {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    };
    assert!(mean(SchedulerKind::Pmat) < mean(SchedulerKind::Mat));

    let mut group = c.benchmark_group("fig3_prediction");
    for kind in [SchedulerKind::Mat, SchedulerKind::MatLL, SchedulerKind::Pmat] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let scenario = pair.for_kind(kind);
            b.iter(|| {
                let cfg = EngineConfig::new(kind).with_seed(3);
                black_box(Engine::new(black_box(scenario.clone()), cfg).run().makespan)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
