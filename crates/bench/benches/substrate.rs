//! Microbenchmarks of the substrate hot paths: PRNG, event queue,
//! monitor mechanics, interpreter stepping, and the static analysis
//! passes. These guard the constants behind every experiment.

use dmt_bench::ubench::time_case;
use dmt_core::{LockOutcome, SyncCore, ThreadId};
use dmt_lang::ast::{IntExpr, MutexExpr};
use dmt_lang::{compile, MethodIdx, MutexId, ObjectBuilder, ObjectState, RequestArgs, ThreadVm};
use dmt_sim::{EventQueue, SimDuration, SplitMix64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// The pre-calendar substrate: a binary heap with the same
/// `(time, insertion-seq)` FIFO tie-break, inlined here so the calendar
/// queue can be benched against the structure it replaced without the
/// library shipping both.
#[derive(Default)]
struct BinHeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    now: u64,
    seq: u64,
}

impl BinHeapQueue {
    fn push_after(&mut self, d: u64, e: u32) {
        self.heap.push(Reverse((self.now + d, self.seq, e)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse((at, _, e))| {
            self.now = at;
            (at, e)
        })
    }
}

/// Figure-1-shaped delay mix: half the traffic is zero-delay scheduler
/// steps, a quarter is lock-scale microsecond hops, a quarter is
/// millisecond compute completions.
fn fig1_delay(r: &mut SplitMix64) -> u64 {
    match r.next_below(4) {
        0 | 1 => 0,
        2 => 1_000 + r.next_below(5_000),
        _ => 1_000_000 + r.next_below(14_000_000),
    }
}

/// Open-loop-shaped horizon: arrivals are pre-scheduled across a
/// multi-second window (far beyond the calendar window, exercising the
/// overflow heap), each followed by short service steps.
fn openloop_delay(r: &mut SplitMix64) -> u64 {
    2_000_000 + r.next_below(2_000_000_000)
}

fn bench_rng() {
    time_case("splitmix64", "next_u64_x1024", {
        let mut rng = SplitMix64::new(7);
        move || {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= rng.next_u64();
            }
            acc
        }
    });
}

fn bench_event_queue() {
    time_case("event_queue", "push_pop_x1024", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..1024u32 {
            q.push_after(
                SimDuration::from_nanos(((i * 2654435761) % 10_000) as u64 + 1),
                i,
            );
        }
        let mut acc = 0u32;
        while let Some((_, e)) = q.pop() {
            acc ^= e;
        }
        acc
    });

    // Steady-state churn at the Figure-1 horizon: a resident population
    // of 256 events, each pop re-arming one event with the engine's
    // delay mix. Calendar queue vs the binary heap it replaced.
    time_case("event_queue", "calendar_fig1_churn_x4096", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut rng = SplitMix64::new(42);
        for i in 0..256u32 {
            q.push_after(SimDuration::from_nanos(fig1_delay(&mut rng)), i);
        }
        let mut acc = 0u32;
        for _ in 0..4096 {
            let (_, e) = q.pop().expect("resident population");
            acc ^= e;
            q.push_after(SimDuration::from_nanos(fig1_delay(&mut rng)), e);
        }
        acc
    });
    time_case("event_queue", "binheap_fig1_churn_x4096", || {
        let mut q = BinHeapQueue::default();
        let mut rng = SplitMix64::new(42);
        for i in 0..256u32 {
            q.push_after(fig1_delay(&mut rng), i);
        }
        let mut acc = 0u32;
        for _ in 0..4096 {
            let (_, e) = q.pop().expect("resident population");
            acc ^= e;
            q.push_after(fig1_delay(&mut rng), e);
        }
        acc
    });

    // Open-loop horizon: 1024 arrivals pre-scheduled seconds ahead
    // (overflow territory), each spawning two short service steps on
    // delivery.
    time_case("event_queue", "calendar_openloop_x1024", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut rng = SplitMix64::new(7);
        for i in 0..1024u32 {
            q.push_after(SimDuration::from_nanos(openloop_delay(&mut rng)), i);
        }
        let mut acc = 0u32;
        let mut followups = 2048u32;
        while let Some((_, e)) = q.pop() {
            acc ^= e;
            if followups > 0 {
                followups -= 1;
                q.push_after(SimDuration::from_nanos(rng.next_below(1_000)), e);
            }
        }
        acc
    });
    time_case("event_queue", "binheap_openloop_x1024", || {
        let mut q = BinHeapQueue::default();
        let mut rng = SplitMix64::new(7);
        for i in 0..1024u32 {
            q.push_after(openloop_delay(&mut rng), i);
        }
        let mut acc = 0u32;
        let mut followups = 2048u32;
        while let Some((_, e)) = q.pop() {
            acc ^= e;
            if followups > 0 {
                followups -= 1;
                q.push_after(rng.next_below(1_000), e);
            }
        }
        acc
    });
}

fn bench_sync_core() {
    time_case("sync_core", "lock_unlock_uncontended_x512", || {
        let mut core = SyncCore::new(true);
        let t = ThreadId::new(0);
        for i in 0..512u32 {
            let m = MutexId::new(i % 64);
            assert_eq!(core.lock(t, m), LockOutcome::Acquired);
            core.unlock(t, m);
        }
        core.is_quiescent()
    });
    time_case("sync_core", "contended_handoff_chain_x512", || {
        let mut core = SyncCore::new(true);
        let m = MutexId::new(0);
        core.lock(ThreadId::new(0), m);
        for i in 1..512u32 {
            core.lock(ThreadId::new(i), m);
        }
        let mut holder = ThreadId::new(0);
        for _ in 0..512 {
            match core.unlock(holder, m) {
                Some(g) => holder = g.tid,
                None => break,
            }
        }
        core.is_quiescent()
    });
}

fn bench_interpreter() {
    let mut ob = ObjectBuilder::new("Hot");
    let cell = ob.cell();
    let mut m = ob.method("hot", 1);
    m.for_loop(dmt_lang::ast::CountExpr::Lit(64), |b| {
        b.sync(MutexExpr::This, |b| {
            b.update(cell, IntExpr::Arg(0));
        });
    });
    m.done();
    let program = compile::compile(&ob.build());
    time_case("interpreter", "loop64_lock_update_unlock", || {
        let mut state = ObjectState::for_object(&program, MutexId::new(9));
        let mut vm = ThreadVm::new(
            program.clone(),
            MethodIdx::new(0),
            RequestArgs::new(vec![dmt_lang::Value::Int(1)]),
        );
        dmt_lang::interp::run_to_completion(&mut vm, &mut state).len()
    });
}

fn bench_analysis() {
    let obj = dmt_workload::fig1::build_object(&dmt_workload::fig1::Fig1Params::default());
    time_case("analysis", "transform_fig1_object", || {
        black_box(dmt_analysis::transform(black_box(&obj)))
    });
    time_case("analysis", "lock_table_fig1_object", || {
        black_box(dmt_analysis::build_lock_table(black_box(&obj)))
    });
}

fn main() {
    bench_rng();
    bench_event_queue();
    bench_sync_core();
    bench_interpreter();
    bench_analysis();
}
