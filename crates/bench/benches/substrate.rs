//! Microbenchmarks of the substrate hot paths: PRNG, event queue,
//! monitor mechanics, interpreter stepping, and the static analysis
//! passes. These guard the constants behind every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dmt_core::{LockOutcome, SyncCore, ThreadId};
use dmt_lang::ast::{IntExpr, MutexExpr};
use dmt_lang::{compile, MethodIdx, MutexId, ObjectBuilder, ObjectState, RequestArgs, ThreadVm};
use dmt_sim::{EventQueue, SimDuration, SplitMix64};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitmix64");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("next_u64_x1024", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("push_pop_x1024", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1024u32 {
                q.push_after(SimDuration::from_nanos(((i * 2654435761) % 10_000) as u64 + 1), i);
            }
            let mut acc = 0u32;
            while let Some((_, e)) = q.pop() {
                acc ^= e;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_sync_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_core");
    group.throughput(Throughput::Elements(512));
    group.bench_function("lock_unlock_uncontended_x512", |b| {
        b.iter(|| {
            let mut core = SyncCore::new(true);
            let t = ThreadId::new(0);
            for i in 0..512u32 {
                let m = MutexId::new(i % 64);
                assert_eq!(core.lock(t, m), LockOutcome::Acquired);
                core.unlock(t, m);
            }
            black_box(core.is_quiescent())
        });
    });
    group.bench_function("contended_handoff_chain_x512", |b| {
        b.iter(|| {
            let mut core = SyncCore::new(true);
            let m = MutexId::new(0);
            core.lock(ThreadId::new(0), m);
            for i in 1..512u32 {
                core.lock(ThreadId::new(i), m);
            }
            let mut holder = ThreadId::new(0);
            for _ in 0..512 {
                let grants = core.unlock(holder, m);
                match grants.first() {
                    Some(g) => holder = g.tid,
                    None => break,
                }
            }
            black_box(core.is_quiescent())
        });
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut ob = ObjectBuilder::new("Hot");
    let cell = ob.cell();
    let mut m = ob.method("hot", 1);
    m.for_loop(dmt_lang::ast::CountExpr::Lit(64), |b| {
        b.sync(MutexExpr::This, |b| {
            b.update(cell, IntExpr::Arg(0));
        });
    });
    m.done();
    let program = compile::compile(&ob.build());
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(64 * 3)); // lock+unlock+update per iter
    group.bench_function("loop64_lock_update_unlock", |b| {
        b.iter(|| {
            let mut state = ObjectState::for_object(&program, MutexId::new(9));
            let mut vm = ThreadVm::new(
                program.clone(),
                MethodIdx::new(0),
                RequestArgs::new(vec![dmt_lang::Value::Int(1)]),
            );
            black_box(dmt_lang::interp::run_to_completion(&mut vm, &mut state).len())
        });
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let obj = dmt_workload::fig1::build_object(&dmt_workload::fig1::Fig1Params::default());
    let mut group = c.benchmark_group("analysis");
    group.bench_function("transform_fig1_object", |b| {
        b.iter(|| black_box(dmt_analysis::transform(black_box(&obj))));
    });
    group.bench_function("lock_table_fig1_object", |b| {
        b.iter(|| black_box(dmt_analysis::build_lock_table(black_box(&obj))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_event_queue,
    bench_sync_core,
    bench_interpreter,
    bench_analysis
);
criterion_main!(benches);
