//! Dispatch-style comparison of the interpreter: the retired per-step
//! `match instr` loop vs flat threaded-code dispatch vs threaded code
//! with superinstruction fusion, on the Figure-1 request mix. The
//! equivalence line printed first is byte-stable; the ns/op lines vary
//! with the host. See `ubench::interp_bench` for the harness.
//!
//! `--smoke` (tier-1) runs only the equivalence check — one pass per
//! style, assertions on, no timed batches.

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        dmt_bench::ubench::interp_smoke();
    } else {
        dmt_bench::ubench::interp_bench();
    }
}
