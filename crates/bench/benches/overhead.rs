//! Wall-clock bench for the instrumentation/bookkeeping overhead question
//! (paper §5: "at which point performance decreases again due to runtime
//! overhead"). Wall-clock is the right meter here: the injected
//! `lockInfo`/`ignore` calls and the syncid-table bookkeeping cost host
//! cycles, not virtual time.

use dmt_bench::ubench::time_case;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig1;
use std::hint::black_box;

fn main() {
    let params = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        n_mutexes: 1, // fully conflicting: prediction cannot help
        ..Default::default()
    };
    let pair = fig1::scenario(&params);
    let cases: [(&str, SchedulerKind, bool); 4] = [
        ("MAT_plain", SchedulerKind::Mat, false),
        ("MAT_analysed", SchedulerKind::Mat, true),
        ("MATLL_analysed", SchedulerKind::MatLL, true),
        ("PMAT_analysed", SchedulerKind::Pmat, true),
    ];
    for (label, kind, analysed) in cases {
        let scenario = if analysed {
            pair.analysed.clone()
        } else {
            pair.plain.clone()
        };
        time_case("instrumentation_overhead", label, || {
            let cfg = EngineConfig::new(kind).with_seed(5);
            Engine::new(black_box(scenario.clone()), cfg)
                .run()
                .completed_requests
        });
    }
}
