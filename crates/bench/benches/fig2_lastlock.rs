//! Wall-clock bench for the Figure-2 experiment (last-lock analysis):
//! MAT vs MAT-LL on the reply-building workload. Also asserts the
//! virtual-time ordering so a regression in the hand-off logic fails the
//! bench run, not just the figure.

use dmt_bench::ubench::time_case;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig2;
use std::hint::black_box;

fn main() {
    let params = fig2::Fig2Params {
        n_clients: 4,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig2::scenario(&params);

    // Sanity: the virtual-time result must hold before we time anything.
    let mean = |kind: SchedulerKind| {
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    };
    assert!(mean(SchedulerKind::MatLL) < mean(SchedulerKind::Mat));

    for kind in [SchedulerKind::Mat, SchedulerKind::MatLL] {
        let scenario = pair.for_kind(kind);
        time_case("fig2_lastlock", kind.name(), || {
            let cfg = EngineConfig::new(kind).with_seed(3);
            Engine::new(black_box(scenario.clone()), cfg).run().makespan
        });
    }
}
