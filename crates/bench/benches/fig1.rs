//! Wall-clock bench for the Figure-1 experiment: one measurement per
//! scheduler on a reduced paper workload (4 clients, 2 requests each).
//! The measured quantity is host wall-clock of the whole cluster
//! simulation; the *virtual-time* response curves come from
//! `cargo run -p dmt-bench --release --bin figures -- fig1`.

use dmt_bench::ubench::time_case;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig1;
use std::hint::black_box;

fn main() {
    let params = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig1::scenario(&params);
    for kind in SchedulerKind::ALL {
        let scenario = pair.for_kind(kind);
        time_case("fig1_cluster_sim", kind.name(), || {
            let cfg = EngineConfig::new(kind).with_seed(7);
            let res = Engine::new(black_box(scenario.clone()), cfg).run();
            assert!(!res.deadlocked);
            res.completed_requests
        });
    }
}
