//! Criterion bench for the Figure-1 experiment: one measurement per
//! scheduler on a reduced paper workload (4 clients, 2 requests each).
//! The measured quantity is host wall-clock of the whole cluster
//! simulation; the *virtual-time* response curves come from
//! `cargo run -p dmt-bench --release --bin figures -- fig1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let params = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        ..Default::default()
    };
    let pair = fig1::scenario(&params);
    let mut group = c.benchmark_group("fig1_cluster_sim");
    for kind in SchedulerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let scenario = pair.for_kind(kind);
            b.iter(|| {
                let cfg = EngineConfig::new(kind).with_seed(7);
                let res = Engine::new(black_box(scenario.clone()), cfg).run();
                assert!(!res.deadlocked);
                black_box(res.completed_requests)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
