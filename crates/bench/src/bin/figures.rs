//! Regenerates every table and figure of the paper (and the ablations).
//!
//! ```text
//! cargo run -p dmt-bench --release --bin figures -- all
//! cargo run -p dmt-bench --release --bin figures -- fig1 [--quick] [--csv]
//! cargo run -p dmt-bench --release --bin figures -- bench     # BENCH_engine.json
//! cargo run -p dmt-bench --release --bin figures -- openloop  # BENCH_openloop.json
//! cargo run -p dmt-bench --release --bin figures -- faults    # BENCH_faults.json
//! cargo run -p dmt-bench --release --bin figures -- obs       # BENCH_obs.json
//! cargo run -p dmt-bench --release --bin figures -- contention # BENCH_contention.json + .folded
//! cargo run -p dmt-bench --release --bin figures -- shard     # BENCH_shard.json
//! cargo run -p dmt-bench --release --bin figures -- trace --out trace.json [--sched MAT]
//! ```
//!
//! `--shards N` routes every sweep's cluster runs through the sharded
//! engine with `N` intra-run workers; tables and artifacts are
//! byte-identical for every `N` (that is the point).

use dmt_bench::*;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig};
use dmt_workload::fig1;
use std::time::Instant;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn engine_bench(client_counts: &[usize], requests: usize, quick: bool) {
    let rows = engine_bench_experiment(client_counts, requests);

    // Sweep parallelism (across independent grid cells): the same
    // Figure-1 table serially and with the sweep driver; the tables
    // must be identical. Force at least two workers so the parallel
    // path is exercised (and the recorded speedup is a real
    // measurement) even on a single-core host, where `sweep_threads()`
    // would degenerate to 1 and the "parallel" run would just be the
    // serial run again.
    let threads = sweep_threads().max(2);
    let t0 = Instant::now();
    let serial = fig1_experiment_with_opts(client_counts, requests, true, 1, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let parallel = fig1_experiment_with_opts(client_counts, requests, true, threads, 1);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    let identical = serial.to_string() == parallel.to_string();
    assert!(identical, "parallel sweep produced a different table");

    // Intra-run parallelism (inside ONE sharded cluster run): the same
    // partitioned open-loop workload with one shard worker and with
    // `threads`; merged results must be identical, and the
    // deterministic balance bound says what the partition would buy on
    // real cores (the measured ratio is honest about this host).
    let shard_groups = 8;
    let p = dmt_workload::openloop::OpenLoopParams {
        n_clients: if quick { 400 } else { 4_000 },
        requests_per_client: 1,
        ..dmt_workload::openloop::OpenLoopParams::default()
    }
    .with_offered_rps(if quick { 800.0 } else { 8_000.0 })
    .with_read_fraction(0.9)
    .with_seed(9001);
    let shard_scs: Vec<_> = dmt_workload::openloop::sharded_scenarios(&p, shard_groups)
        .iter()
        .map(|pair| pair.for_kind(SchedulerKind::Mat))
        .collect();
    let shard_cfg = |w: usize| {
        EngineConfig::new(SchedulerKind::Mat)
            .with_seed(7)
            .with_shards(w)
    };
    let shard_serial = dmt_replica::run_sharded(shard_scs.clone(), &shard_cfg(1), None);
    let shard_parallel = dmt_replica::run_sharded(shard_scs, &shard_cfg(threads), None);
    let shard_identical = shard_serial.completed_requests == shard_parallel.completed_requests
        && shard_serial.makespan == shard_parallel.makespan
        && shard_serial.events_per_group == shard_parallel.events_per_group;
    assert!(shard_identical, "shard workers changed the merged result");
    let shard_serial_ms = shard_serial.wall_ns as f64 / 1e6;
    let shard_parallel_ms = shard_parallel.wall_ns as f64 / 1e6;
    let balance_bound = shard_parallel.balance_bound(threads);

    let mut total = dmt_replica::PerfCounters::default();
    for r in &rows {
        total.merge(&r.perf);
    }
    let base_total = BASELINE_TOTAL_NS_PER_EVENT;
    let improvement = if base_total > 0.0 {
        (1.0 - total.ns_per_event() / base_total) * 100.0
    } else {
        0.0
    };

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!(
        "  \"sweep\": {{\"clients\": {client_counts:?}, \"requests_per_client\": {requests}, \"quick\": {quick}}},\n"
    ));
    j.push_str("  \"baseline\": {\n    \"note\": \"dense-ID slot-table engine, re-baselined 2026-08-06; ns/event on the same sweep\",\n");
    j.push_str("    \"per_kind\": {");
    for (i, (k, v)) in BASELINE_NS_PER_EVENT.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{}\": {v:.1}", json_escape(k)));
    }
    j.push_str(&format!(
        "}},\n    \"ns_per_event\": {base_total:.1}\n  }},\n"
    ));
    j.push_str("  \"current\": {\n    \"per_kind\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "      {{\"kind\": \"{}\", \"events\": {}, \"sched_events\": {}, \"sched_fanout\": {:.4}, \"sched_actions\": {}, \"vm_steps\": {}, \"fused_steps\": {}, \"batched_steps\": {}, \"vm_allocs\": {}, \"vm_reuses\": {}, \"wall_ns\": {}, \"ns_per_event\": {:.1}}}{}\n",
            json_escape(r.kind.name()),
            r.perf.events,
            r.perf.sched_events,
            r.perf.sched_fanout(),
            r.perf.sched_actions,
            r.perf.vm_steps,
            r.perf.fused_steps,
            r.perf.batched_steps,
            r.perf.vm_allocs,
            r.perf.vm_reuses,
            r.perf.wall_ns,
            r.perf.ns_per_event(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str(&format!(
        "    ],\n    \"total\": {{\"events\": {}, \"sched_events\": {}, \"sched_fanout\": {:.4}, \"sched_actions\": {}, \"vm_steps\": {}, \"fused_steps\": {}, \"batched_steps\": {}, \"vm_allocs\": {}, \"vm_reuses\": {}, \"wall_ns\": {}, \"ns_per_event\": {:.1}}}\n  }},\n",
        total.events, total.sched_events, total.sched_fanout(), total.sched_actions,
        total.vm_steps, total.fused_steps, total.batched_steps, total.vm_allocs, total.vm_reuses,
        total.wall_ns, total.ns_per_event(),
    ));
    j.push_str(&format!(
        "  \"ns_per_event_improvement_pct\": {improvement:.1},\n"
    ));
    j.push_str(&format!(
        "  \"sweep_parallelism\": {{\"threads\": {threads}, \"serial_wall_ms\": {serial_ms:.1}, \"parallel_wall_ms\": {parallel_ms:.1}, \"speedup\": {:.2}, \"tables_identical\": {identical}, \"note\": \"across independent sweep cells; each cluster run stays serial\"}},\n",
        serial_ms / parallel_ms.max(1e-9),
    ));
    j.push_str(&format!(
        "  \"intra_run_parallelism\": {{\"n_groups\": {shard_groups}, \"shard_workers\": {threads}, \"serial_wall_ms\": {shard_serial_ms:.1}, \"parallel_wall_ms\": {shard_parallel_ms:.1}, \"measured_speedup\": {:.2}, \"balance_bound\": {balance_bound:.2}, \"results_identical\": {shard_identical}, \"note\": \"inside one sharded cluster run; balance_bound is the deterministic speedup bound (BENCH_shard.json has the full sweep), measured_speedup is whatever this host's cores allow\"}}\n",
        shard_serial_ms / shard_parallel_ms.max(1e-9),
    ));
    j.push_str("}\n");

    let path = artifact_path("BENCH_engine.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{j}");
    eprintln!("wrote {path}");
}

/// Quick runs use smoke-test grids, so their JSON must not overwrite
/// the checked-in full-sweep artifacts; they land in `target/` instead.
fn artifact_path(name: &str, quick: bool) -> String {
    if quick {
        let _ = std::fs::create_dir_all("target");
        format!("target/{name}")
    } else {
        name.to_string()
    }
}

fn obs_bench(quick: bool, csv: bool) {
    let grid = if quick {
        ObsGrid::quick()
    } else {
        ObsGrid::default()
    };
    let rows = obs_experiment(&grid);
    let t = obs_table(&rows);
    if csv {
        println!("# {}", t.title);
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    let j = obs_json(&grid, &rows);
    let path = artifact_path("BENCH_obs.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// One traced cluster run exported in Chrome's Trace Event Format —
/// open the file in `chrome://tracing` or Perfetto. Scheduler decisions
/// and group-comm legs appear as instants, request lifecycles as async
/// spans, queue depths as counter tracks.
fn trace_export(out: Option<&str>, sched: Option<&str>, quick: bool) {
    let kind = match sched {
        None => SchedulerKind::Mat,
        Some(s) => SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .unwrap_or_else(|| {
                eprintln!("unknown scheduler `{s}`");
                std::process::exit(2);
            }),
    };
    let p = fig1::Fig1Params {
        n_clients: if quick { 3 } else { 6 },
        requests_per_client: if quick { 2 } else { 3 },
        ..fig1::Fig1Params::default()
    };
    let pair = fig1::scenario(&p);
    let cfg = EngineConfig::new(kind)
        .with_seed(7)
        .with_tracing()
        .with_depth_sampling();
    let res = Engine::new(pair.for_kind(kind), cfg).run();
    assert!(!res.deadlocked);
    let json = dmt_obs::chrome_trace_json(&res.trace_records);
    let default_name = format!("TRACE_{}_fig1.json", kind.name().to_lowercase());
    let path = out
        .map(str::to_string)
        .unwrap_or_else(|| artifact_path(&default_name, quick));
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!(
        "wrote {path} ({} records, {} requests) — load in chrome://tracing",
        res.trace_records.len(),
        res.completed_requests
    );
}

fn openloop_bench(quick: bool, csv: bool) {
    let grid = if quick {
        OpenLoopGrid::quick()
    } else {
        OpenLoopGrid::default()
    };
    let rows = openloop_experiment(&grid);
    let t = openloop_table(&rows);
    if csv {
        println!("# {}", t.title);
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    let j = openloop_json(&grid, &rows);
    let path = artifact_path("BENCH_openloop.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn faults_bench(quick: bool, csv: bool) {
    let grid = if quick {
        FaultGrid::quick()
    } else {
        FaultGrid::default()
    };
    let rows = faults_experiment(&grid);
    let t = faults_table(&rows);
    if csv {
        println!("# {}", t.title);
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    let j = faults_json(&grid, &rows);
    let path = artifact_path("BENCH_faults.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn contention_bench(quick: bool, csv: bool) {
    let grid = if quick {
        ContentionGrid::quick()
    } else {
        ContentionGrid::default()
    };
    let report = contention_experiment(&grid);
    for t in [contention_table(&report), autopilot_table(&report)] {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
    let j = contention_json(&grid, &report);
    let path = artifact_path("BENCH_contention.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
    let folded_path = artifact_path("CONTENTION_mat_openloop.folded", quick);
    std::fs::write(&folded_path, &report.folded)
        .unwrap_or_else(|e| panic!("write {folded_path}: {e}"));
    eprintln!(
        "wrote {folded_path} ({} frames) — feed to any flamegraph.pl-compatible renderer",
        report.folded.lines().count()
    );
}

fn shard_bench(quick: bool, csv: bool) {
    let grid = if quick {
        ShardGrid::quick()
    } else {
        ShardGrid::default()
    };
    let report = shard_experiment(&grid);
    let t = shard_table(&report);
    if csv {
        println!("# {}", t.title);
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
    let j = shard_json(&grid, &report);
    let path = artifact_path("BENCH_shard.json", quick);
    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--out`, `--sched` and `--shards` take a value; skip it when
    // locating the experiment name.
    let mut what: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut sched: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "--sched" | "--shards" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{} needs a value", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--out" => out = Some(v.as_str()),
                    "--sched" => sched = Some(v.as_str()),
                    _ => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => set_sweep_shards(n),
                        _ => {
                            eprintln!("--shards needs a positive integer, got `{v}`");
                            std::process::exit(2);
                        }
                    },
                }
                i += 2;
            }
            s if !s.starts_with("--") => {
                what = what.or(Some(s));
                i += 1;
            }
            _ => i += 1,
        }
    }
    let what = what.unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let client_counts: Vec<usize> = if quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32]
    };
    let requests = if quick { 2 } else { 4 };

    let emit = |t: &Table| {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    };

    let run_one = |name: &str| match name {
        "fig1" => emit(&fig1_experiment(&client_counts, requests, false)),
        "fig1x" => emit(&fig1_experiment(&client_counts, requests, true)),
        "fig2" => emit(&fig2_experiment(&[0.0, 1.0, 2.0, 5.0, 10.0])),
        "fig3" => emit(&fig3_experiment(&client_counts)),
        "fig4" => println!("{}", fig4_experiment()),
        "analysis" => println!("{}", analysis_experiment()),
        "abl-mutexes" => emit(&abl_mutexes_experiment(&[1, 10, 100, 1000])),
        "abl-overhead" => emit(&abl_overhead_experiment()),
        "abl-wan" => emit(&abl_wan_experiment(&[0, 2, 10, 50])),
        "abl-passive" => emit(&abl_passive_experiment()),
        "determinism" => emit(&determinism_experiment()),
        "bench" => engine_bench(&client_counts, requests, quick),
        "openloop" => openloop_bench(quick, csv),
        "faults" => faults_bench(quick, csv),
        "obs" => obs_bench(quick, csv),
        "contention" => contention_bench(quick, csv),
        "shard" => shard_bench(quick, csv),
        "trace" => trace_export(out, sched, quick),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "known: fig1 fig1x fig2 fig3 fig4 analysis abl-mutexes \
                 abl-overhead abl-wan abl-passive determinism bench openloop \
                 faults obs contention shard trace all"
            );
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "fig1",
            "fig1x",
            "fig2",
            "fig3",
            "fig4",
            "analysis",
            "abl-mutexes",
            "abl-overhead",
            "abl-wan",
            "abl-passive",
            "determinism",
            "openloop",
            "faults",
            "obs",
            "contention",
            "shard",
            "trace",
            "bench",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(what);
    }
}
