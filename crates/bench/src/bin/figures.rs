//! Regenerates every table and figure of the paper (and the ablations).
//!
//! ```text
//! cargo run -p dmt-bench --release --bin figures -- all
//! cargo run -p dmt-bench --release --bin figures -- fig1 [--quick] [--csv]
//! ```

use dmt_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");

    let client_counts: Vec<usize> =
        if quick { vec![1, 2, 4, 8] } else { vec![1, 2, 4, 8, 16, 24, 32] };
    let requests = if quick { 2 } else { 4 };

    let emit = |t: &Table| {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    };

    let run_one = |name: &str| match name {
        "fig1" => emit(&fig1_experiment(&client_counts, requests, false)),
        "fig1x" => emit(&fig1_experiment(&client_counts, requests, true)),
        "fig2" => emit(&fig2_experiment(&[0.0, 1.0, 2.0, 5.0, 10.0])),
        "fig3" => emit(&fig3_experiment(&client_counts)),
        "fig4" => println!("{}", fig4_experiment()),
        "analysis" => println!("{}", analysis_experiment()),
        "abl-mutexes" => emit(&abl_mutexes_experiment(&[1, 10, 100, 1000])),
        "abl-overhead" => emit(&abl_overhead_experiment()),
        "abl-wan" => emit(&abl_wan_experiment(&[0, 2, 10, 50])),
        "abl-passive" => emit(&abl_passive_experiment()),
        "determinism" => emit(&determinism_experiment()),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "known: fig1 fig1x fig2 fig3 fig4 analysis abl-mutexes \
                 abl-overhead abl-wan abl-passive determinism all"
            );
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "fig1", "fig1x", "fig2", "fig3", "fig4", "analysis", "abl-mutexes", "abl-overhead",
            "abl-wan", "abl-passive", "determinism",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(what);
    }
}
