//! The experiments of EXPERIMENTS.md, one function per table/figure.
//!
//! Sweeps fan their independent (scheduler, scenario, seed) cluster
//! runs across cores via [`run_jobs`]; every run is a self-contained
//! simulation, so the tables are bit-identical to the serial ones —
//! results are written back by job index, never by completion order.

use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_groupcomm::NetConfig;
use dmt_replica::{check_determinism, run_sharded, Engine, EngineConfig, PerfCounters, RunResult};
use dmt_sim::SimDuration;
use dmt_workload::{bank, buffer, fig1, fig2, fig3};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The parallel sweep driver: runs `f(0..n_jobs)` across `threads`
/// worker threads (`std::thread::scope`, no extra deps) and returns the
/// results in job order. Workers pull job indices from a shared atomic
/// counter, so long and short simulations interleave freely; ordering
/// determinism comes from slotting each result at its job index.
pub fn run_jobs<T, F>(n_jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_prioritized(n_jobs, threads, |_| 0u64, f)
}

/// [`run_jobs`] with a dispatch priority: jobs are *started* in
/// descending `priority` order (ties keep index order), so the longest
/// simulations — e.g. the fig1 high-client points — go to workers first
/// instead of straggling at the end of the sweep on many-core hosts.
/// Results are still slotted by job index, so the output (and every
/// table built from it) is byte-identical for any priority function and
/// any worker count.
pub fn run_jobs_prioritized<T, F, K, P>(n_jobs: usize, threads: usize, priority: P, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    K: Ord,
    P: Fn(usize) -> K,
{
    let mut order: Vec<usize> = (0..n_jobs).collect();
    // Stable sort: equal priorities preserve submission order.
    order.sort_by_key(|&i| std::cmp::Reverse(priority(i)));
    let threads = threads.max(1).min(n_jobs.max(1));
    if threads <= 1 {
        let mut results: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
        for &i in &order {
            results[i] = Some(f(i));
        }
        return results
            .into_iter()
            .map(|o| o.expect("every job index runs exactly once"))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                let order = &order;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= order.len() {
                            break;
                        }
                        let i = order[pos];
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("every job index runs exactly once"))
        .collect()
}

/// Worker count for parallel sweeps: `DMT_SWEEP_THREADS` if set, else
/// the machine's available parallelism.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("DMT_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Intra-run shard worker count used by the sweep wrappers that don't
/// take an explicit one — set by the `figures --shards N` flag. This is
/// *orthogonal* to [`sweep_threads`]: sweep workers parallelise across
/// independent grid points, shard workers parallelise inside one
/// sharded cluster run. Defaults to 1 (monolithic engine).
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the default intra-run shard worker count (the `--shards` flag).
pub fn set_sweep_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The current default intra-run shard worker count.
pub fn sweep_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// Runs one cluster scenario under `cfg`, routing through the sharded
/// engine when `cfg.shards > 1` and through the monolithic engine
/// otherwise. A single scenario is a single shard group, and group 0 of
/// the sharded engine is defined to be the monolithic engine (same
/// seed, same queue discipline), so the returned [`RunResult`] is
/// byte-for-byte the same either way — the sharded route just exercises
/// the partition/merge machinery. `crates/bench/tests/shard_determinism.rs`
/// pins that equivalence on the full fig1 and open-loop grids.
pub fn run_engine(scenario: dmt_replica::Scenario, cfg: EngineConfig) -> RunResult {
    if cfg.shards <= 1 {
        return Engine::new(scenario, cfg).run();
    }
    let mut sharded = run_sharded(vec![scenario], &cfg, None);
    sharded.groups.remove(0)
}

/// Baseline simulator throughput (ns/event) per scheduler on the
/// Figure-1 sweep. Re-baselined 2026-08-06 to the dense-ID slot-table
/// engine (the previous HashMap/BTreeSet baseline — SEQ 442, SAT 407,
/// LSA 536, PDS 920, MAT 462, total 570 — predated that refactor and
/// overstated every subsequent improvement). Same machine command:
/// `figures -- bench` with the default full sweep. Kept so
/// BENCH_engine.json always reports before → after, and so the
/// tracing-disabled overhead guard (`tests/trace_overhead.rs`) has a
/// pinned reference.
pub const BASELINE_NS_PER_EVENT: [(&str, f64); 5] = [
    ("SEQ", 173.4),
    ("SAT", 170.3),
    ("LSA", 212.9),
    ("PDS", 247.4),
    ("MAT", 176.0),
];

/// Events-weighted ns/event over the whole baseline sweep (same
/// measurement as the per-kind table above).
pub const BASELINE_TOTAL_NS_PER_EVENT: f64 = 200.5;

/// Events-weighted ns/event after the allocation-free substrate landed
/// (pooled VM frames, interned request args, incremental state hash,
/// slab-backed calendar event queue). Pinned 2026-08-06 from the full
/// sweep, fastest-of-three per point. [`BASELINE_TOTAL_NS_PER_EVENT`]
/// stays the before→after reference in `BENCH_engine.json`; this pin is
/// what the tracing-disabled overhead guard (`tests/trace_overhead.rs`)
/// holds the hot path against, so a regression back toward the old cost
/// fails loudly instead of hiding inside the old pin's slack.
pub const POOLED_TOTAL_NS_PER_EVENT: f64 = 168.0;

/// Events-weighted ns/event after the threaded-code interpreter landed
/// (flat op stream with pre-resolved operands, superinstruction fusion,
/// batched request admission, split-borrow dispatch loop, incremental
/// PDS pool counters). Pinned 2026-08-08 from the full sweep, fastest
/// of four `figures -- bench` repeats (measured band 131.3–144.2 on a
/// noisy single-core host; the minimum is the faithful estimate, see
/// `engine_bench_experiment`, and the pin keeps a small margin above
/// it). This supersedes
/// [`POOLED_TOTAL_NS_PER_EVENT`] as the pin behind the
/// tracing-disabled overhead guard (`tests/trace_overhead.rs`), with
/// 2× release slack: a regression to even half-way back toward the
/// pooled-substrate cost now fails loudly.
pub const THREADED_TOTAL_NS_PER_EVENT: f64 = 135.0;

/// Events-weighted ns/event after the dispatch fan-out collapse landed
/// (same-instant grant fusion in the step loop, in-place action
/// application with no per-dispatch buffer moves, gated MAT
/// bookkeeping, in-place admission, interleaved-pass measurement).
/// Pinned 2026-08-08 from the full sweep (calm-window band ≈119–123
/// ns/event, vs ≈129–133 for the previous commit's binary measured in
/// the same windows; this host's noise bursts reach ≈200). Supersedes
/// [`THREADED_TOTAL_NS_PER_EVENT`] as the pin behind the
/// tracing-disabled overhead guard (`tests/trace_overhead.rs`): at the
/// unchanged 2× release slack the limit drops 270 → 210 ns/event,
/// below what the pre-fusion engine's noisy band could excuse.
pub const FUSED_TOTAL_NS_PER_EVENT: f64 = 105.0;

/// Ceiling on the scheduler-dispatch fan-out (`sched_events / events`,
/// [`PerfCounters::sched_fanout`]) per scheduler, pinned from the full
/// Figure-1 sweep. The ratio is a pure counter quotient — deterministic
/// for a given grid — but quick grids weight admission-heavy warm-up
/// more, so the pins carry a small margin above the larger of the full
/// and quick grid values. `tests/fanout_guard.rs` holds every kind
/// under its pin: a new dispatch leg on the hot path (the thing this
/// ratio counts) fails loudly instead of hiding inside wall-clock
/// noise.
pub const MAX_SCHED_FANOUT: [(&str, f64); 5] = [
    ("SEQ", 1.32),
    ("SAT", 1.32),
    ("LSA", 1.00),
    ("PDS", 1.22),
    ("MAT", 1.32),
];

/// Per-kind event counts recorded in the committed `BENCH_engine.json`,
/// if one is readable: `[(kind name, events), ..]` from the
/// `"current"."per_kind"` rows. Used only to order sweep dispatch
/// (longest-first), so a missing or stale artifact degrades scheduling,
/// never results. Parsed with a dumb scanner on purpose — the artifact
/// is machine-written by `figures -- bench` with one row per line, and
/// the bench crate has no JSON dependency to spend on a hint.
pub fn recorded_kind_events() -> Option<Vec<(String, u64)>> {
    let path = std::path::Path::new("BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .or_else(|_| {
            // Tests run from the crate directory; the artifact lives at
            // the workspace root.
            std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_engine.json"
            ))
        })
        .ok()?;
    // Rows before the "current" section (the baseline table) hold
    // ns/event pins, not counts; skip to the measured rows.
    let current = &text[text.find("\"current\"")?..];
    let mut rows = Vec::new();
    for line in current.lines() {
        let Some(k) = line.find("\"kind\": \"") else {
            continue;
        };
        let kind = line[k + 9..].split('"').next()?.to_string();
        let e = line.find("\"events\": ")?;
        let events: u64 = line[e + 10..]
            .split(|c: char| !c.is_ascii_digit())
            .next()?
            .parse()
            .ok()?;
        rows.push((kind, events));
    }
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

/// The five algorithms of the paper's Figure 1.
pub const FIG1_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
];

/// The paper's algorithms plus our predicted extensions.
pub const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
    SchedulerKind::MatLL,
    SchedulerKind::Pmat,
];

fn ms(x: f64) -> String {
    format!("{x:.2}")
}

/// One Figure-1 sweep point: the full cluster simulation for one
/// (clients, scheduler) pair. Self-contained so sweep points can run on
/// any worker thread.
fn fig1_point(
    n_clients: usize,
    requests_per_client: usize,
    kind: SchedulerKind,
    shards: usize,
) -> dmt_replica::RunResult {
    let params = fig1::Fig1Params::default()
        .with_clients(n_clients)
        .with_seed(1000 + n_clients as u64);
    let params = fig1::Fig1Params {
        requests_per_client,
        ..params
    };
    let pair = fig1::scenario(&params);
    let cfg = EngineConfig::new(kind)
        .with_seed(7)
        .with_cpu_jitter(0.05)
        .with_shards(shards);
    let res = run_engine(pair.for_kind(kind), cfg);
    assert!(!res.deadlocked, "{kind} stalled at {n_clients} clients");
    res
}

/// **fig1** — mean response time vs. number of clients, per scheduler
/// (paper Figure 1). `extended` adds the MAT-LL and PMAT series.
pub fn fig1_experiment(
    client_counts: &[usize],
    requests_per_client: usize,
    extended: bool,
) -> Table {
    fig1_experiment_with_threads(
        client_counts,
        requests_per_client,
        extended,
        sweep_threads(),
    )
}

/// [`fig1_experiment`] with an explicit worker count (1 = serial). The
/// table is identical for every worker count.
pub fn fig1_experiment_with_threads(
    client_counts: &[usize],
    requests_per_client: usize,
    extended: bool,
    threads: usize,
) -> Table {
    fig1_experiment_with_opts(
        client_counts,
        requests_per_client,
        extended,
        threads,
        sweep_shards(),
    )
}

/// [`fig1_experiment`] with explicit sweep-worker *and* shard-worker
/// counts. The table is identical for every `(threads, shards)`
/// combination — sweep workers only reorder wall-clock, and a
/// single-group sharded run is defined to equal the monolithic engine.
pub fn fig1_experiment_with_opts(
    client_counts: &[usize],
    requests_per_client: usize,
    extended: bool,
    threads: usize,
    shards: usize,
) -> Table {
    let kinds: Vec<SchedulerKind> = if extended {
        ALL_KINDS.to_vec()
    } else {
        FIG1_KINDS.to_vec()
    };
    let mut cols: Vec<String> = vec!["clients".into()];
    for k in &kinds {
        cols.push(format!("{k} mean"));
        cols.push(format!("{k} p50"));
        cols.push(format!("{k} p95"));
        cols.push(format!("{k} p99"));
    }
    let mut t = Table::new(
        "Figure 1: response time (ms) vs clients (3 replicas, LAN)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let n_jobs = client_counts.len() * kinds.len();
    // High-client points dominate the sweep's wall-clock; start them
    // first so they don't straggle (results still slot by job index).
    // Client count alone ties every scheduler at one sweep point, and a
    // tie falls back to kind order — which inverts the true cost order
    // (LSA's control legs and PDS's dummies make them the long cells).
    // When a previous bench artifact is around, its recorded per-kind
    // event counts break the tie, so the longest-first order is the
    // same in quick and full mode and independent of kind enumeration
    // order. Priorities only reorder wall-clock — results still slot by
    // job index — so a missing artifact just means the old ordering.
    let recorded = recorded_kind_events();
    let kind_weight = |kind: SchedulerKind| -> u64 {
        recorded
            .as_deref()
            .and_then(|rows| {
                rows.iter()
                    .find(|(name, _)| name == kind.name())
                    .map(|&(_, events)| events)
            })
            .unwrap_or(1)
    };
    let cells = run_jobs_prioritized(
        n_jobs,
        threads,
        |job| {
            let clients = client_counts[job / kinds.len()] as u64;
            clients * kind_weight(kinds[job % kinds.len()])
        },
        |job| {
            let n = client_counts[job / kinds.len()];
            let kind = kinds[job % kinds.len()];
            let mut res = fig1_point(n, requests_per_client, kind, shards);
            [
                ms(res.response_times.mean()),
                ms(res.response_times.percentile(50.0)),
                ms(res.response_times.percentile(95.0)),
                ms(res.response_times.percentile(99.0)),
            ]
        },
    );
    for (i, &n) in client_counts.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for cell in cells[i * kinds.len()..(i + 1) * kinds.len()]
            .iter()
            .flatten()
        {
            row.push(cell.clone());
        }
        t.push_row(row);
    }
    t
}

/// Per-scheduler simulator-throughput measurement over the Figure-1
/// sweep. Serial on purpose: ns/event is a host-time measurement and
/// concurrent runs would pollute each other's clocks.
pub struct EngineBenchRow {
    pub kind: SchedulerKind,
    pub perf: PerfCounters,
}

/// **bench** — engine hot-path cost on the Figure-1 sweep (all five
/// paper schedulers), aggregated per scheduler.
pub fn engine_bench_experiment(
    client_counts: &[usize],
    requests_per_client: usize,
) -> Vec<EngineBenchRow> {
    // Runs are deterministic but the clock is not: scheduler noise
    // (CI neighbours, cold caches) only ever inflates wall time, so the
    // fastest repeat of each cell is the faithful cost estimate. On the
    // noisy single-vCPU hosts this repo benches on, that noise arrives
    // in multi-second bursts — back-to-back repeats of one cell all
    // land inside the same burst, which is why a per-cell `(0..3)` retry
    // loop routinely left cells 10%+ above their floor. Instead the
    // whole (kind x clients) grid is swept in full passes and each cell
    // keeps its fastest pass: consecutive visits to one cell are now a
    // full grid apart, so a burst has to span the entire sweep to taint
    // a cell's minimum.
    // Shards stay at 1: ns/event prices the monolithic hot path, and
    // the sharded wrapper's merge would pollute the wall clock.
    const PASSES: usize = 5;
    let mut best: Vec<Vec<Option<PerfCounters>>> =
        vec![vec![None; client_counts.len()]; FIG1_KINDS.len()];
    for _ in 0..PASSES {
        for (ki, &kind) in FIG1_KINDS.iter().enumerate() {
            for (ci, &n) in client_counts.iter().enumerate() {
                let perf = fig1_point(n, requests_per_client, kind, 1).perf;
                let slot = &mut best[ki][ci];
                let faster = slot.as_ref().is_none_or(|b| perf.wall_ns < b.wall_ns);
                if faster {
                    *slot = Some(perf);
                }
            }
        }
    }
    FIG1_KINDS
        .iter()
        .zip(best)
        .map(|(&kind, cells)| {
            let mut agg = PerfCounters::default();
            for perf in cells {
                agg.merge(&perf.expect("every cell measured"));
            }
            EngineBenchRow { kind, perf: agg }
        })
        .collect()
}

/// **fig2** — MAT vs MAT-LL as the post-last-lock computation grows
/// (paper Figure 2: hand-off before thread termination).
pub fn fig2_experiment(final_ms_values: &[f64]) -> Table {
    let mut t = Table::new(
        "Figure 2: last-lock analysis — response time vs final computation",
        &["final_ms", "MAT (ms)", "MAT-LL (ms)", "speedup"],
    );
    let kinds = [SchedulerKind::Mat, SchedulerKind::MatLL];
    let means = run_jobs(final_ms_values.len() * 2, sweep_threads(), |job| {
        let f = final_ms_values[job / 2];
        let kind = kinds[job % 2];
        let p = fig2::Fig2Params {
            final_ms: f,
            ..fig2::Fig2Params::default()
        };
        let pair = fig2::scenario(&p);
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    });
    for (i, &f) in final_ms_values.iter().enumerate() {
        let (mat, ll) = (means[i * 2], means[i * 2 + 1]);
        t.push_row(vec![ms(f), ms(mat), ms(ll), format!("{:.2}x", mat / ll)]);
    }
    t
}

/// **fig3** — MAT vs MAT-LL vs PMAT on disjoint lock sets (paper
/// Figure 3: prediction enables non-conflicting concurrency).
pub fn fig3_experiment(client_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 3: lock prediction — response time on disjoint mutexes",
        &[
            "clients",
            "MAT (ms)",
            "MAT-LL (ms)",
            "PMAT (ms)",
            "ideal (ms)",
        ],
    );
    let kinds = [
        SchedulerKind::Mat,
        SchedulerKind::MatLL,
        SchedulerKind::Pmat,
    ];
    let means = run_jobs(client_counts.len() * 3, sweep_threads(), |job| {
        let n = client_counts[job / 3];
        let kind = kinds[job % 3];
        let p = fig3::Fig3Params {
            n_clients: n,
            ..fig3::Fig3Params::default()
        };
        let pair = fig3::scenario(&p);
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    });
    for (i, &n) in client_counts.iter().enumerate() {
        let p = fig3::Fig3Params {
            n_clients: n,
            ..fig3::Fig3Params::default()
        };
        // Ideal: full overlap — a request costs its own work plus wire.
        let ideal = p.pre_ms + p.cs_ms + 4.0 * NetConfig::lan().one_way.as_millis_f64();
        t.push_row(vec![
            n.to_string(),
            ms(means[i * 3]),
            ms(means[i * 3 + 1]),
            ms(means[i * 3 + 2]),
            ms(ideal),
        ]);
    }
    t
}

/// **fig4** — the code transformation example (paper Figure 4), rendered.
pub fn fig4_experiment() -> String {
    use dmt_lang::ast::{CondExpr, MutexExpr};
    use dmt_lang::ObjectBuilder;
    let mut ob = ObjectBuilder::new("Fig4");
    let myo = ob.field();
    let mut m = ob.method("foo", 1);
    m.if_else(
        CondExpr::ParamEqField(0, myo),
        |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        },
        |b| {
            b.sync(MutexExpr::Field(myo), |_| {});
        },
    );
    m.done();
    let obj = ob.build();
    let transformed = dmt_analysis::transform(&obj);
    format!(
        "=== original ===\n{}\n=== after analysis & injection ===\n{}",
        dmt_analysis::pretty::print_object(&obj),
        dmt_analysis::pretty::print_object(&transformed),
    )
}

/// **tab-analysis** — static-analysis statistics over the workload suite.
pub fn analysis_experiment() -> String {
    let objects = [
        fig1::build_object(&fig1::Fig1Params::default()),
        fig2::build_object(&fig2::Fig2Params::default()),
        fig3::build_object(&fig3::Fig3Params::default()),
        bank::build_object(&bank::BankParams::default()),
        buffer::build_object(&buffer::BufferParams::default()),
    ];
    let mut out = String::new();
    for obj in &objects {
        out.push_str(&dmt_analysis::analyze(obj).to_string());
        out.push('\n');
    }
    out
}

/// **abl-mutexes** — locking granularity sweep: the paper's §4 claim that
/// pessimism hurts most with fine-grained locking.
pub fn abl_mutexes_experiment(mutex_counts: &[u32]) -> Table {
    let mut t = Table::new(
        "Ablation: locking granularity (8 clients) — MAT vs PMAT",
        &["mutexes", "MAT (ms)", "PMAT (ms)", "gain"],
    );
    let kinds = [SchedulerKind::Mat, SchedulerKind::Pmat];
    let means = run_jobs(mutex_counts.len() * 2, sweep_threads(), |job| {
        let m = mutex_counts[job / 2];
        let kind = kinds[job % 2];
        let p = fig1::Fig1Params::default().with_mutexes(m).with_clients(8);
        let pair = fig1::scenario(&p);
        let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(5)).run();
        assert!(!res.deadlocked);
        res.response_times.mean()
    });
    for (i, &m) in mutex_counts.iter().enumerate() {
        let (mat, pmat) = (means[i * 2], means[i * 2 + 1]);
        t.push_row(vec![
            m.to_string(),
            ms(mat),
            ms(pmat),
            format!("{:.2}x", mat / pmat),
        ]);
    }
    t
}

/// **abl-overhead** — what the instrumentation costs. Virtual time can't
/// see bookkeeping cost (injected calls take zero simulated time), so the
/// measure is host wall-clock per simulated request: plain vs analysed
/// object under the same pessimistic scheduler, plus PMAT on a workload
/// where prediction cannot help (one global mutex).
pub fn abl_overhead_experiment() -> Table {
    let mut t = Table::new(
        "Ablation: instrumentation & bookkeeping overhead (1 mutex, 8 clients)",
        &["configuration", "resp (ms)", "host µs/request"],
    );
    let p = fig1::Fig1Params::default().with_mutexes(1).with_clients(8);
    let pair = fig1::scenario(&p);
    let mut run = |label: &str, kind: SchedulerKind, analysed: bool| {
        let scenario = if analysed {
            pair.analysed.clone()
        } else {
            pair.plain.clone()
        };
        let total = (p.n_clients * p.requests_per_client) as f64;
        let start = Instant::now();
        let res = Engine::new(scenario, EngineConfig::new(kind).with_seed(5)).run();
        let wall = start.elapsed().as_micros() as f64 / total;
        assert!(!res.deadlocked);
        t.push_row(vec![
            label.to_string(),
            ms(res.response_times.mean()),
            format!("{wall:.1}"),
        ]);
    };
    run("MAT plain", SchedulerKind::Mat, false);
    run("MAT analysed", SchedulerKind::Mat, true);
    run("MAT-LL analysed", SchedulerKind::MatLL, true);
    run(
        "PMAT analysed (no disjointness to exploit)",
        SchedulerKind::Pmat,
        true,
    );
    t
}

/// **abl-wan** — network sensitivity and LSA failover cost (paper §3.5).
pub fn abl_wan_experiment(one_way_ms: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: WAN latency — LSA vs MAT, and LSA leader takeover",
        &[
            "one-way (ms)",
            "LSA (ms)",
            "MAT (ms)",
            "LSA ctrl msgs",
            "LSA takeover (ms)",
        ],
    );
    // Three independent cluster runs per latency point: LSA, MAT, and
    // the LSA leader-kill failover run.
    let results = run_jobs(one_way_ms.len() * 3, sweep_threads(), |job| {
        let w = one_way_ms[job / 3];
        let p = fig1::Fig1Params::default().with_clients(6);
        let pair = fig1::scenario(&p);
        let net = if w == 0 {
            NetConfig::lan()
        } else {
            NetConfig::wan(w)
        };
        match job % 3 {
            0 | 1 => {
                let kind = if job % 3 == 0 {
                    SchedulerKind::Lsa
                } else {
                    SchedulerKind::Mat
                };
                let cfg = EngineConfig::new(kind).with_seed(5).with_net(net);
                let res = Engine::new(pair.for_kind(kind), cfg).run();
                assert!(!res.deadlocked, "{kind} under {w}ms WAN");
                res
            }
            _ => {
                let cfg = EngineConfig::new(SchedulerKind::Lsa)
                    .with_seed(5)
                    .with_net(net)
                    .with_kill(0, SimDuration::from_millis(20));
                Engine::new(pair.for_kind(SchedulerKind::Lsa), cfg).run()
            }
        }
    });
    for (i, &w) in one_way_ms.iter().enumerate() {
        let (lsa, mat, fo) = (&results[i * 3], &results[i * 3 + 1], &results[i * 3 + 2]);
        let takeover = fo
            .takeover_gap
            .map(|g| ms(g.as_millis_f64()))
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            if w == 0 {
                "0.25 (LAN)".into()
            } else {
                w.to_string()
            },
            ms(lsa.response_times.mean()),
            ms(mat.response_times.mean()),
            lsa.ctrl_messages.to_string(),
            takeover,
        ]);
    }
    t
}

/// **abl-passive** — passive replication: log replay equivalence per
/// scheduler (paper §1's motivation for determinism beyond active
/// replication).
pub fn abl_passive_experiment() -> Table {
    use dmt_lang::compile::compile;
    use dmt_replica::{record_primary, replay_on_backup};
    let mut t = Table::new(
        "Ablation: passive replication — primary log replay",
        &["scheduler", "requests", "grants", "replay matches"],
    );
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 3,
        ..fig1::Fig1Params::default()
    };
    let obj = fig1::build_object(&p);
    let program = compile(&obj);
    let requests: Vec<_> = fig1::client_scripts(&p)
        .into_iter()
        .flat_map(|c| c.requests)
        .collect();
    let dummy = program.method_by_name("noop");
    for kind in dmt_core::SchedulerKind::ALL {
        let log = record_primary(program.clone(), kind, requests.clone(), dummy);
        let replayed = replay_on_backup(program.clone(), &log);
        t.push_row(vec![
            kind.to_string(),
            log.requests.len().to_string(),
            log.grants.len().to_string(),
            if replayed == log.state_hash {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t
}

/// **determinism** — the checker verdict per scheduler under jitter.
pub fn determinism_experiment() -> Table {
    let mut t = Table::new(
        "Determinism check: 3 jittered replicas, contended Figure-1 load",
        &["scheduler", "verdict", "match level"],
    );
    let p = fig1::Fig1Params {
        n_clients: 6,
        requests_per_client: 3,
        n_mutexes: 5,
        ..fig1::Fig1Params::default()
    };
    let pair = &fig1::scenario(&p);
    let kinds: Vec<SchedulerKind> = dmt_core::SchedulerKind::ALL.into_iter().collect();
    let rows = run_jobs(kinds.len(), sweep_threads(), |job| {
        let kind = kinds[job];
        let (_, outcome) = check_determinism(pair.for_kind(kind), kind, 77, 0.3);
        let level = format!("{:?}", dmt_replica::checker::match_level(kind));
        let verdict = match outcome {
            dmt_replica::CheckOutcome::Converged => "converged".to_string(),
            dmt_replica::CheckOutcome::Diverged { pair, .. } => {
                format!("DIVERGED {pair:?}")
            }
            dmt_replica::CheckOutcome::Stalled => "stalled".to_string(),
        };
        vec![kind.to_string(), verdict, level]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_table_shows_growing_speedup() {
        let t = fig2_experiment(&[0.0, 5.0]);
        assert_eq!(t.rows.len(), 2);
        let s0: f64 = t.rows[0][3].trim_end_matches('x').parse().unwrap();
        let s5: f64 = t.rows[1][3].trim_end_matches('x').parse().unwrap();
        assert!(s5 > s0, "speedup must grow with the final computation");
        assert!(s5 > 1.2);
    }

    #[test]
    fn fig4_output_contains_injections() {
        let s = fig4_experiment();
        assert!(s.contains("scheduler.lockInfo(0, a0);"));
        assert!(s.contains("scheduler.ignore(1);"));
        assert!(s.contains("scheduler.ignore(0);"));
    }

    #[test]
    fn analysis_table_covers_suite() {
        let s = analysis_experiment();
        assert!(s.contains("Fig1Bench"));
        assert!(s.contains("Bank"));
        assert!(s.contains("BoundedBuffer"));
    }

    #[test]
    fn passive_table_all_yes() {
        let t = abl_passive_experiment();
        for row in &t.rows {
            assert_eq!(row[3], "yes", "{} replay failed", row[0]);
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        // The guard for the parallel sweep driver: same jobs, different
        // worker counts (including more workers than jobs), rendered
        // tables must be byte-identical.
        let serial = fig1_experiment_with_threads(&[1, 3], 2, true, 1).to_string();
        for threads in [2, 4, 16] {
            let parallel = fig1_experiment_with_threads(&[1, 3], 2, true, threads).to_string();
            assert_eq!(
                serial, parallel,
                "{threads}-thread sweep diverged from serial"
            );
        }
    }

    #[test]
    fn run_jobs_orders_results_by_job_index() {
        let out = run_jobs(37, 4, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_jobs(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn prioritized_dispatch_does_not_change_results() {
        // Whatever the priority function, results are slotted by index.
        for threads in [1, 2, 8] {
            let out = run_jobs_prioritized(20, threads, |i| i % 7, |i| i + 100);
            assert_eq!(out, (100..120).collect::<Vec<_>>());
        }
    }

    #[test]
    fn prioritized_dispatch_starts_long_jobs_first() {
        // Serial path: dispatch order is observable via a log.
        use std::sync::Mutex;
        let log = Mutex::new(Vec::new());
        let sizes = [3u64, 9, 1, 7];
        run_jobs_prioritized(4, 1, |i| sizes[i], |i| log.lock().unwrap().push(i));
        assert_eq!(
            *log.lock().unwrap(),
            vec![1, 3, 0, 2],
            "descending size order"
        );
    }

    #[test]
    fn small_fig1_runs() {
        let t = fig1_experiment(&[1, 2], 2, false);
        assert_eq!(t.rows.len(), 2);
        // 1 + 4 cells (mean/p50/p95/p99) per scheduler.
        assert_eq!(t.rows[0].len(), 1 + 4 * FIG1_KINDS.len());
        // SEQ must be the slowest at 2 clients (mean columns sit at
        // 1 + 4*kind_index).
        let seq: f64 = t.rows[1][1].parse().unwrap();
        let mat: f64 = t.rows[1][17].parse().unwrap();
        assert!(seq >= mat, "SEQ {seq} should not beat MAT {mat}");
        // Percentiles are ordered within each scheduler group.
        for k in 0..FIG1_KINDS.len() {
            let p50: f64 = t.rows[1][1 + 4 * k + 1].parse().unwrap();
            let p95: f64 = t.rows[1][1 + 4 * k + 2].parse().unwrap();
            let p99: f64 = t.rows[1][1 + 4 * k + 3].parse().unwrap();
            assert!(p50 <= p95 && p95 <= p99);
        }
    }
}
