//! The experiments of EXPERIMENTS.md, one function per table/figure.

use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_groupcomm::NetConfig;
use dmt_replica::{check_determinism, Engine, EngineConfig};
use dmt_sim::SimDuration;
use dmt_workload::{bank, buffer, fig1, fig2, fig3};
use std::time::Instant;

/// The five algorithms of the paper's Figure 1.
pub const FIG1_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
];

/// The paper's algorithms plus our predicted extensions.
pub const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
    SchedulerKind::MatLL,
    SchedulerKind::Pmat,
];

fn ms(x: f64) -> String {
    format!("{x:.2}")
}

/// **fig1** — mean response time vs. number of clients, per scheduler
/// (paper Figure 1). `extended` adds the MAT-LL and PMAT series.
pub fn fig1_experiment(client_counts: &[usize], requests_per_client: usize, extended: bool) -> Table {
    let kinds: Vec<SchedulerKind> = if extended {
        ALL_KINDS.to_vec()
    } else {
        FIG1_KINDS.to_vec()
    };
    let mut cols: Vec<String> = vec!["clients".into()];
    cols.extend(kinds.iter().map(|k| format!("{k} (ms)")));
    let mut t = Table::new(
        "Figure 1: mean response time vs clients (3 replicas, LAN)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &n in client_counts {
        let params = fig1::Fig1Params::default()
            .with_clients(n)
            .with_seed(1000 + n as u64);
        let params = fig1::Fig1Params { requests_per_client, ..params };
        let pair = fig1::scenario(&params);
        let mut row = vec![n.to_string()];
        for &kind in &kinds {
            let cfg = EngineConfig::new(kind).with_seed(7).with_cpu_jitter(0.05);
            let res = Engine::new(pair.for_kind(kind), cfg).run();
            assert!(!res.deadlocked, "{kind} stalled at {n} clients");
            row.push(ms(res.response_times.mean()));
        }
        t.push_row(row);
    }
    t
}

/// **fig2** — MAT vs MAT-LL as the post-last-lock computation grows
/// (paper Figure 2: hand-off before thread termination).
pub fn fig2_experiment(final_ms_values: &[f64]) -> Table {
    let mut t = Table::new(
        "Figure 2: last-lock analysis — response time vs final computation",
        &["final_ms", "MAT (ms)", "MAT-LL (ms)", "speedup"],
    );
    for &f in final_ms_values {
        let p = fig2::Fig2Params { final_ms: f, ..fig2::Fig2Params::default() };
        let pair = fig2::scenario(&p);
        let run = |kind: SchedulerKind| {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
            assert!(!res.deadlocked);
            res.response_times.mean()
        };
        let mat = run(SchedulerKind::Mat);
        let ll = run(SchedulerKind::MatLL);
        t.push_row(vec![ms(f), ms(mat), ms(ll), format!("{:.2}x", mat / ll)]);
    }
    t
}

/// **fig3** — MAT vs MAT-LL vs PMAT on disjoint lock sets (paper
/// Figure 3: prediction enables non-conflicting concurrency).
pub fn fig3_experiment(client_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 3: lock prediction — response time on disjoint mutexes",
        &["clients", "MAT (ms)", "MAT-LL (ms)", "PMAT (ms)", "ideal (ms)"],
    );
    for &n in client_counts {
        let p = fig3::Fig3Params { n_clients: n, ..fig3::Fig3Params::default() };
        let pair = fig3::scenario(&p);
        let run = |kind: SchedulerKind| {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
            assert!(!res.deadlocked);
            res.response_times.mean()
        };
        // Ideal: full overlap — a request costs its own work plus wire.
        let ideal = p.pre_ms + p.cs_ms + 4.0 * NetConfig::lan().one_way.as_millis_f64();
        t.push_row(vec![
            n.to_string(),
            ms(run(SchedulerKind::Mat)),
            ms(run(SchedulerKind::MatLL)),
            ms(run(SchedulerKind::Pmat)),
            ms(ideal),
        ]);
    }
    t
}

/// **fig4** — the code transformation example (paper Figure 4), rendered.
pub fn fig4_experiment() -> String {
    use dmt_lang::ast::{CondExpr, MutexExpr};
    use dmt_lang::ObjectBuilder;
    let mut ob = ObjectBuilder::new("Fig4");
    let myo = ob.field();
    let mut m = ob.method("foo", 1);
    m.if_else(
        CondExpr::ParamEqField(0, myo),
        |b| {
            b.sync(MutexExpr::Arg(0), |_| {});
        },
        |b| {
            b.sync(MutexExpr::Field(myo), |_| {});
        },
    );
    m.done();
    let obj = ob.build();
    let transformed = dmt_analysis::transform(&obj);
    format!(
        "=== original ===\n{}\n=== after analysis & injection ===\n{}",
        dmt_analysis::pretty::print_object(&obj),
        dmt_analysis::pretty::print_object(&transformed),
    )
}

/// **tab-analysis** — static-analysis statistics over the workload suite.
pub fn analysis_experiment() -> String {
    let objects = [
        fig1::build_object(&fig1::Fig1Params::default()),
        fig2::build_object(&fig2::Fig2Params::default()),
        fig3::build_object(&fig3::Fig3Params::default()),
        bank::build_object(&bank::BankParams::default()),
        buffer::build_object(&buffer::BufferParams::default()),
    ];
    let mut out = String::new();
    for obj in &objects {
        out.push_str(&dmt_analysis::analyze(obj).to_string());
        out.push('\n');
    }
    out
}

/// **abl-mutexes** — locking granularity sweep: the paper's §4 claim that
/// pessimism hurts most with fine-grained locking.
pub fn abl_mutexes_experiment(mutex_counts: &[u32]) -> Table {
    let mut t = Table::new(
        "Ablation: locking granularity (8 clients) — MAT vs PMAT",
        &["mutexes", "MAT (ms)", "PMAT (ms)", "gain"],
    );
    for &m in mutex_counts {
        let p = fig1::Fig1Params::default().with_mutexes(m).with_clients(8);
        let pair = fig1::scenario(&p);
        let run = |kind: SchedulerKind| {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(5)).run();
            assert!(!res.deadlocked);
            res.response_times.mean()
        };
        let mat = run(SchedulerKind::Mat);
        let pmat = run(SchedulerKind::Pmat);
        t.push_row(vec![m.to_string(), ms(mat), ms(pmat), format!("{:.2}x", mat / pmat)]);
    }
    t
}

/// **abl-overhead** — what the instrumentation costs. Virtual time can't
/// see bookkeeping cost (injected calls take zero simulated time), so the
/// measure is host wall-clock per simulated request: plain vs analysed
/// object under the same pessimistic scheduler, plus PMAT on a workload
/// where prediction cannot help (one global mutex).
pub fn abl_overhead_experiment() -> Table {
    let mut t = Table::new(
        "Ablation: instrumentation & bookkeeping overhead (1 mutex, 8 clients)",
        &["configuration", "resp (ms)", "host µs/request"],
    );
    let p = fig1::Fig1Params::default().with_mutexes(1).with_clients(8);
    let pair = fig1::scenario(&p);
    let mut run = |label: &str, kind: SchedulerKind, analysed: bool| {
        let scenario = if analysed { pair.analysed.clone() } else { pair.plain.clone() };
        let total = (p.n_clients * p.requests_per_client) as f64;
        let start = Instant::now();
        let res = Engine::new(scenario, EngineConfig::new(kind).with_seed(5)).run();
        let wall = start.elapsed().as_micros() as f64 / total;
        assert!(!res.deadlocked);
        t.push_row(vec![label.to_string(), ms(res.response_times.mean()), format!("{wall:.1}")]);
    };
    run("MAT plain", SchedulerKind::Mat, false);
    run("MAT analysed", SchedulerKind::Mat, true);
    run("MAT-LL analysed", SchedulerKind::MatLL, true);
    run("PMAT analysed (no disjointness to exploit)", SchedulerKind::Pmat, true);
    t
}

/// **abl-wan** — network sensitivity and LSA failover cost (paper §3.5).
pub fn abl_wan_experiment(one_way_ms: &[u64]) -> Table {
    let mut t = Table::new(
        "Ablation: WAN latency — LSA vs MAT, and LSA leader takeover",
        &["one-way (ms)", "LSA (ms)", "MAT (ms)", "LSA ctrl msgs", "LSA takeover (ms)"],
    );
    for &w in one_way_ms {
        let p = fig1::Fig1Params::default().with_clients(6);
        let pair = fig1::scenario(&p);
        let net = if w == 0 { NetConfig::lan() } else { NetConfig::wan(w) };
        let run = |kind: SchedulerKind| {
            let cfg = EngineConfig::new(kind).with_seed(5).with_net(net);
            let res = Engine::new(pair.for_kind(kind), cfg).run();
            assert!(!res.deadlocked, "{kind} under {w}ms WAN");
            res
        };
        let lsa = run(SchedulerKind::Lsa);
        let mat = run(SchedulerKind::Mat);
        // Failover run: kill the leader mid-experiment.
        let cfg = EngineConfig::new(SchedulerKind::Lsa)
            .with_seed(5)
            .with_net(net)
            .with_kill(0, SimDuration::from_millis(20));
        let fo = Engine::new(pair.for_kind(SchedulerKind::Lsa), cfg).run();
        let takeover = fo
            .takeover_gap
            .map(|g| ms(g.as_millis_f64()))
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            if w == 0 { "0.25 (LAN)".into() } else { w.to_string() },
            ms(lsa.response_times.mean()),
            ms(mat.response_times.mean()),
            lsa.ctrl_messages.to_string(),
            takeover,
        ]);
    }
    t
}

/// **abl-passive** — passive replication: log replay equivalence per
/// scheduler (paper §1's motivation for determinism beyond active
/// replication).
pub fn abl_passive_experiment() -> Table {
    use dmt_lang::compile::compile;
    use dmt_replica::{record_primary, replay_on_backup};
    let mut t = Table::new(
        "Ablation: passive replication — primary log replay",
        &["scheduler", "requests", "grants", "replay matches"],
    );
    let p = fig1::Fig1Params { n_clients: 4, requests_per_client: 3, ..fig1::Fig1Params::default() };
    let obj = fig1::build_object(&p);
    let program = compile(&obj);
    let requests: Vec<_> = fig1::client_scripts(&p)
        .into_iter()
        .flat_map(|c| c.requests)
        .collect();
    let dummy = program.method_by_name("noop");
    for kind in dmt_core::SchedulerKind::ALL {
        let log = record_primary(program.clone(), kind, requests.clone(), dummy);
        let replayed = replay_on_backup(program.clone(), &log);
        t.push_row(vec![
            kind.to_string(),
            log.requests.len().to_string(),
            log.grants.len().to_string(),
            if replayed == log.state_hash { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// **determinism** — the checker verdict per scheduler under jitter.
pub fn determinism_experiment() -> Table {
    let mut t = Table::new(
        "Determinism check: 3 jittered replicas, contended Figure-1 load",
        &["scheduler", "verdict", "match level"],
    );
    let p = fig1::Fig1Params {
        n_clients: 6,
        requests_per_client: 3,
        n_mutexes: 5,
        ..fig1::Fig1Params::default()
    };
    let pair = fig1::scenario(&p);
    for kind in dmt_core::SchedulerKind::ALL {
        let (_, outcome) = check_determinism(pair.for_kind(kind), kind, 77, 0.3);
        let level = format!("{:?}", dmt_replica::checker::match_level(kind));
        let verdict = match outcome {
            dmt_replica::CheckOutcome::Converged => "converged".to_string(),
            dmt_replica::CheckOutcome::Diverged { pair, .. } => {
                format!("DIVERGED {pair:?}")
            }
            dmt_replica::CheckOutcome::Stalled => "stalled".to_string(),
        };
        t.push_row(vec![kind.to_string(), verdict, level]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_table_shows_growing_speedup() {
        let t = fig2_experiment(&[0.0, 5.0]);
        assert_eq!(t.rows.len(), 2);
        let s0: f64 = t.rows[0][3].trim_end_matches('x').parse().unwrap();
        let s5: f64 = t.rows[1][3].trim_end_matches('x').parse().unwrap();
        assert!(s5 > s0, "speedup must grow with the final computation");
        assert!(s5 > 1.2);
    }

    #[test]
    fn fig4_output_contains_injections() {
        let s = fig4_experiment();
        assert!(s.contains("scheduler.lockInfo(0, a0);"));
        assert!(s.contains("scheduler.ignore(1);"));
        assert!(s.contains("scheduler.ignore(0);"));
    }

    #[test]
    fn analysis_table_covers_suite() {
        let s = analysis_experiment();
        assert!(s.contains("Fig1Bench"));
        assert!(s.contains("Bank"));
        assert!(s.contains("BoundedBuffer"));
    }

    #[test]
    fn passive_table_all_yes() {
        let t = abl_passive_experiment();
        for row in &t.rows {
            assert_eq!(row[3], "yes", "{} replay failed", row[0]);
        }
    }

    #[test]
    fn small_fig1_runs() {
        let t = fig1_experiment(&[1, 2], 2, false);
        assert_eq!(t.rows.len(), 2);
        // SEQ must be the slowest at 2 clients.
        let seq: f64 = t.rows[1][1].parse().unwrap();
        let mat: f64 = t.rows[1][5].parse().unwrap();
        assert!(seq >= mat, "SEQ {seq} should not beat MAT {mat}");
    }
}
