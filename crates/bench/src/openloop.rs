//! **openloop** — the offered-load × read-mix latency-percentile sweep.
//!
//! For every grid point `(offered_rps, read_fraction)` and every
//! scheduler, one full cluster simulation runs the open-loop read/write
//! store of [`dmt_workload::openloop`] and reports client-observed
//! latency percentiles (p50/p95/p99) from the engine's fixed-bucket
//! log-scale histogram. Everything that reaches the table or
//! `BENCH_openloop.json` is derived from *virtual* time and integer
//! bucket counts — no wall clock — so the artifact is byte-identical
//! across reruns and across sweep worker counts; a regression test
//! (`crates/bench/tests/openloop_determinism.rs`) holds it to that.

use crate::experiments::{
    run_engine, run_jobs_prioritized, sweep_shards, sweep_threads, ALL_KINDS, FIG1_KINDS,
};
use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_replica::{EngineConfig, RunResult};
use dmt_workload::openloop::{self, OpenLoopParams};

/// The sweep grid. Defaults give 4 loads × 3 read mixes; `--quick`
/// uses [`OpenLoopGrid::quick`].
#[derive(Clone, Debug)]
pub struct OpenLoopGrid {
    /// Aggregate offered loads, requests per virtual second.
    pub offered_rps: Vec<f64>,
    /// Read fractions of the request mix.
    pub read_fractions: Vec<f64>,
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Add the MAT-LL / PMAT series on top of the paper's five.
    pub extended: bool,
}

impl Default for OpenLoopGrid {
    fn default() -> Self {
        OpenLoopGrid {
            offered_rps: vec![100.0, 400.0, 1600.0, 6400.0],
            read_fractions: vec![0.5, 0.9, 1.0],
            n_clients: 8,
            requests_per_client: 25,
            extended: false,
        }
    }
}

impl OpenLoopGrid {
    /// A small grid for smoke runs (`figures openloop --quick`).
    pub fn quick() -> Self {
        OpenLoopGrid {
            offered_rps: vec![200.0, 3200.0],
            read_fractions: vec![0.9],
            n_clients: 4,
            requests_per_client: 6,
            extended: false,
        }
    }

    fn kinds(&self) -> Vec<SchedulerKind> {
        if self.extended {
            ALL_KINDS.to_vec()
        } else {
            FIG1_KINDS.to_vec()
        }
    }
}

/// One grid point's measured latencies (all virtual-time quantities).
#[derive(Clone, Debug)]
pub struct OpenLoopRow {
    pub offered_rps: f64,
    pub read_fraction: f64,
    pub kind: SchedulerKind,
    pub completed: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub mean_ns: f64,
    pub max_ns: u64,
    pub makespan_ns: u64,
    /// Group-comm traffic (from the run's metrics snapshot): messages
    /// submitted for ordering, sequencer broadcast fan-out legs, and
    /// in-order deliveries — the §3.5 network-load view per scheduler.
    pub submissions: u64,
    pub broadcast_legs: u64,
    pub deliveries: u64,
}

/// Runs the sweep. Jobs are dispatched highest-load-first (the
/// congested points dominate wall-clock) but results are slotted by
/// grid index, so the row order — and every byte derived from it — is
/// independent of `threads`.
pub fn openloop_experiment_with_threads(grid: &OpenLoopGrid, threads: usize) -> Vec<OpenLoopRow> {
    openloop_experiment_with_opts(grid, threads, sweep_shards())
}

/// [`openloop_experiment_with_threads`] with an explicit intra-run shard
/// worker count. Rows are identical for every `(threads, shards)` pair.
pub fn openloop_experiment_with_opts(
    grid: &OpenLoopGrid,
    threads: usize,
    shards: usize,
) -> Vec<OpenLoopRow> {
    let kinds = grid.kinds();
    let points: Vec<(f64, f64)> = grid
        .offered_rps
        .iter()
        .flat_map(|&rps| grid.read_fractions.iter().map(move |&rf| (rps, rf)))
        .collect();
    let n_jobs = points.len() * kinds.len();
    run_jobs_prioritized(
        n_jobs,
        threads,
        // Offered load in milli-requests/s as the length proxy.
        |job| (points[job / kinds.len()].0 * 1e3) as u64,
        |job| {
            let (rps, rf) = points[job / kinds.len()];
            let kind = kinds[job % kinds.len()];
            let res = openloop_point(grid, rps, rf, kind, shards);
            assert!(
                !res.deadlocked,
                "{kind} stalled at {rps} req/s, {rf} read fraction"
            );
            OpenLoopRow {
                offered_rps: rps,
                read_fraction: rf,
                kind,
                completed: res.completed_requests,
                p50_ns: res.latency.p50_ns().unwrap_or(0),
                p95_ns: res.latency.p95_ns().unwrap_or(0),
                p99_ns: res.latency.p99_ns().unwrap_or(0),
                mean_ns: res.latency.mean_ns(),
                max_ns: res.latency.max_ns().unwrap_or(0),
                makespan_ns: res.makespan.as_nanos(),
                submissions: res.net_counter("submissions"),
                broadcast_legs: res.net_counter("broadcast_legs"),
                deliveries: res.net_counter("deliveries"),
            }
        },
    )
}

/// [`openloop_experiment_with_threads`] at the default worker count.
pub fn openloop_experiment(grid: &OpenLoopGrid) -> Vec<OpenLoopRow> {
    openloop_experiment_with_threads(grid, sweep_threads())
}

/// One grid point: a full cluster run, self-contained for any worker.
fn openloop_point(
    grid: &OpenLoopGrid,
    rps: f64,
    rf: f64,
    kind: SchedulerKind,
    shards: usize,
) -> RunResult {
    let p = OpenLoopParams {
        n_clients: grid.n_clients,
        requests_per_client: grid.requests_per_client,
        ..OpenLoopParams::default()
    }
    .with_offered_rps(rps)
    .with_read_fraction(rf)
    // Workload seed varies per point so grid points are independent
    // draws; it must NOT depend on the scheduler (same offered stream).
    .with_seed(9000 + (rps as u64) * 31 + (rf * 100.0) as u64);
    let pair = openloop::scenario(&p);
    let cfg = EngineConfig::new(kind)
        .with_seed(7)
        .with_cpu_jitter(0.05)
        .with_shards(shards);
    run_engine(pair.for_kind(kind), cfg)
}

fn ms3(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the sweep as the printable table.
pub fn openloop_table(rows: &[OpenLoopRow]) -> Table {
    let mut t = Table::new(
        "Open loop: latency percentiles vs offered load × read mix (3 replicas, LAN)",
        &[
            "offered req/s",
            "read %",
            "sched",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "mean (ms)",
            "done",
            "subs",
            "legs",
            "deliv",
        ],
    );
    for r in rows {
        t.push_row(vec![
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.read_fraction * 100.0),
            r.kind.to_string(),
            ms3(r.p50_ns),
            ms3(r.p95_ns),
            ms3(r.p99_ns),
            format!("{:.3}", r.mean_ns / 1e6),
            r.completed.to_string(),
            r.submissions.to_string(),
            r.broadcast_legs.to_string(),
            r.deliveries.to_string(),
        ]);
    }
    t
}

/// Serialises the sweep as the `BENCH_openloop.json` artifact. Every
/// value is virtual-time-derived, so the byte stream is reproducible.
pub fn openloop_json(grid: &OpenLoopGrid, rows: &[OpenLoopRow]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"openloop\",\n");
    j.push_str(&format!(
        "  \"grid\": {{\"offered_rps\": {:?}, \"read_fractions\": {:?}, \"n_clients\": {}, \"requests_per_client\": {}, \"schedulers\": [{}]}},\n",
        grid.offered_rps,
        grid.read_fractions,
        grid.n_clients,
        grid.requests_per_client,
        grid.kinds()
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    j.push_str("  \"note\": \"virtual-time latencies; percentiles from the fixed-bucket log-scale histogram (upper bucket edge, <=3.2% quantisation); byte-identical across reruns and sweep worker counts\",\n");
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"offered_rps\": {:.0}, \"read_fraction\": {:.2}, \"scheduler\": \"{}\", \"completed\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}, \"makespan_ns\": {}, \"submissions\": {}, \"broadcast_legs\": {}, \"deliveries\": {}}}{}\n",
            r.offered_rps,
            r.read_fraction,
            r.kind.name(),
            r.completed,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.mean_ns,
            r.max_ns,
            r.makespan_ns,
            r.submissions,
            r.broadcast_legs,
            r.deliveries,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> OpenLoopGrid {
        OpenLoopGrid {
            offered_rps: vec![500.0, 8000.0],
            read_fractions: vec![0.9],
            n_clients: 3,
            requests_per_client: 4,
            extended: false,
        }
    }

    #[test]
    fn saturation_raises_tail_latency() {
        let rows = openloop_experiment_with_threads(&tiny_grid(), 2);
        assert_eq!(rows.len(), 2 * 5);
        for r in &rows {
            assert_eq!(r.completed, 12);
            assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns);
        }
        // SEQ serialises every request, so a 16× load jump must show up
        // as queueing delay in its tail.
        let (seq_light, seq_heavy) = (&rows[0], &rows[5]);
        assert_eq!(seq_light.kind, SchedulerKind::Seq);
        assert!(
            seq_heavy.p99_ns > seq_light.p99_ns,
            "SEQ saturated p99 {} <= light p99 {}",
            seq_heavy.p99_ns,
            seq_light.p99_ns
        );
        // And in aggregate the saturated grid point is slower than the
        // light one across the scheduler suite.
        let mean_of = |rs: &[OpenLoopRow]| rs.iter().map(|r| r.mean_ns).sum::<f64>();
        assert!(mean_of(&rows[5..]) > mean_of(&rows[..5]));
    }

    #[test]
    fn table_and_json_cover_every_row() {
        let grid = tiny_grid();
        let rows = openloop_experiment_with_threads(&grid, 1);
        let t = openloop_table(&rows);
        assert_eq!(t.rows.len(), rows.len());
        let j = openloop_json(&grid, &rows);
        assert_eq!(j.matches("\"scheduler\"").count(), rows.len());
        assert!(j.contains("\"experiment\": \"openloop\""));
    }
}
