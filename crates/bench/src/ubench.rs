//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no network access, so the benches cannot
//! pull in criterion; this module provides the small subset we need:
//! warm-up, adaptive iteration count, and a median-of-batches ns/op
//! report on stdout. Benches stay `harness = false` binaries.

use dmt_lang::compile::{compile, compile_unfused, CompiledObject};
use dmt_lang::{Action, MutexId, ObjectState, StepOutcome, VmPool};
use dmt_workload::fig1::{build_object, client_scripts, Fig1Params};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Target measurement time per case. Short on purpose: benches also run
/// under `cargo test` builds in CI, where we only need them to execute.
const TARGET: Duration = Duration::from_millis(200);
const BATCHES: usize = 7;

/// Times `f` and prints `group/name: <ns> ns/op (<iters> iters)`.
/// Returns the per-iteration nanoseconds (median over batches).
pub fn time_case<R>(group: &str, name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm up and calibrate the per-iteration cost.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let per_batch = (TARGET.as_nanos() / BATCHES as u128).max(1);
    let iters = ((per_batch / once.as_nanos().max(1)) as usize).clamp(1, 1_000_000);

    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{group}/{name}: {median:.0} ns/op ({iters} iters x {BATCHES} batches)");
    median
}

// ---------------------------------------------------------------------
// Interpreter dispatch-style microbench (`ubench interp`)
//
// Isolates the interpreter from the engine: the whole Figure-1 request
// mix of a few clients is run to completion on a bare `ThreadVm` (every
// action granted instantly, no scheduler, no event queue), once per
// dispatch style:
//
//   match           — the retired per-step `match instr` loop
//                     (`ThreadVm::step_match`, unfused program);
//   threaded        — flat threaded-code dispatch, fusion off;
//   threaded+fused  — the default: threaded dispatch + superinstructions.
//
// The three styles must be observationally identical; the equivalence
// check runs first and its summary line is byte-stable (counts and state
// hash only — no timings), so artifact diffs catch semantic drift while
// the ns/op lines remain free to vary with the host.
// ---------------------------------------------------------------------

/// One dispatch style of the interpreter microbench.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    Match,
    Threaded,
    ThreadedFused,
}

/// The Figure-1 request mix the microbench replays: every request of
/// every client, in script order.
fn interp_corpus() -> (
    Arc<CompiledObject>,
    Arc<CompiledObject>,
    Vec<(dmt_lang::MethodIdx, dmt_lang::RequestArgs)>,
) {
    let p = Fig1Params::default().with_clients(4).with_seed(11);
    let obj = build_object(&p);
    let fused = compile(&obj);
    let unfused = compile_unfused(&obj);
    let requests = client_scripts(&p)
        .into_iter()
        .flat_map(|s| s.requests)
        .collect();
    (fused, unfused, requests)
}

/// Runs the whole corpus on one persistent state; returns the action
/// trace plus the step/fused meters.
fn run_corpus(
    program: &Arc<CompiledObject>,
    requests: &[(dmt_lang::MethodIdx, dmt_lang::RequestArgs)],
    style: Dispatch,
) -> (Vec<Action>, ObjectState, u64, u64) {
    let mut state = ObjectState::for_object(program, MutexId::new(0));
    let mut trace = Vec::new();
    let mut steps = 0;
    let mut fused = 0;
    // Pool the VMs exactly like the engine's per-replica pool does, so
    // the timing measures dispatch, not frame allocation.
    let mut pool = VmPool::new();
    for (method, args) in requests {
        let mut vm = pool.acquire(program.clone(), *method, args);
        loop {
            let out = match style {
                Dispatch::Match => vm.step_match(&mut state),
                _ => vm.step(&mut state),
            };
            match out {
                StepOutcome::Action(a) => trace.push(a),
                StepOutcome::Finished => break,
                StepOutcome::Faulted(f) => panic!("corpus faulted: {f:?}"),
            }
        }
        steps += vm.steps();
        fused += vm.fused_steps();
        pool.release(vm);
    }
    (trace, state, steps, fused)
}

/// The byte-stable face of the microbench: asserts the three dispatch
/// styles produce identical action traces and state hashes, and returns
/// the invariant summary line.
pub fn interp_profile() -> String {
    let (fused_prog, unfused_prog, requests) = interp_corpus();
    let (t_match, s_match, steps, _) = run_corpus(&unfused_prog, &requests, Dispatch::Match);
    let (t_thr, s_thr, steps_thr, _) = run_corpus(&unfused_prog, &requests, Dispatch::Threaded);
    let (t_fus, s_fus, steps_fused, fused_steps) =
        run_corpus(&fused_prog, &requests, Dispatch::ThreadedFused);
    assert_eq!(t_match, t_thr, "threaded dispatch diverged from match");
    assert_eq!(t_match, t_fus, "fusion diverged from match");
    assert_eq!(s_match.state_hash(), s_thr.state_hash());
    assert_eq!(s_match.state_hash(), s_fus.state_hash());
    assert_eq!(
        steps, steps_thr,
        "dispatch style must not change step count"
    );
    format!(
        "interp/profile: requests={} actions={} steps={} fused_steps={} steps_fused={} state_hash={:#018x}",
        requests.len(),
        t_match.len(),
        steps,
        fused_steps,
        steps_fused,
        s_match.state_hash(),
    )
}

/// **interp --smoke** — the deterministic half of [`interp_bench`]:
/// runs the corpus once per dispatch style and asserts the styles are
/// observationally identical (same actions, step counts, state hash),
/// printing only the byte-stable equivalence line. No timed batches, so
/// it is fast enough for tier-1, where its job is catching semantic
/// drift between the dispatch styles, not measuring them.
pub fn interp_smoke() {
    println!("{}", interp_profile());
}

/// **interp** — dispatch-style comparison: match-loop vs threaded vs
/// threaded+fused on the Figure-1 request mix. Prints the byte-stable
/// equivalence line first, then ns/op per style.
pub fn interp_bench() {
    println!("{}", interp_profile());
    let (fused_prog, unfused_prog, requests) = interp_corpus();
    time_case("interp", "match", || {
        run_corpus(&unfused_prog, &requests, Dispatch::Match).3
    });
    time_case("interp", "threaded", || {
        run_corpus(&unfused_prog, &requests, Dispatch::Threaded).3
    });
    time_case("interp", "threaded+fused", || {
        run_corpus(&fused_prog, &requests, Dispatch::ThreadedFused).3
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_profile_is_stable_and_styles_agree() {
        // The assertions inside `interp_profile` are the real test; the
        // repeat run checks the summary is deterministic run-to-run.
        let a = interp_profile();
        let b = interp_profile();
        assert_eq!(a, b);
        assert!(a.starts_with("interp/profile: requests="), "{a}");
    }
}
