//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no network access, so the benches cannot
//! pull in criterion; this module provides the small subset we need:
//! warm-up, adaptive iteration count, and a median-of-batches ns/op
//! report on stdout. Benches stay `harness = false` binaries.

use std::time::{Duration, Instant};

/// Target measurement time per case. Short on purpose: benches also run
/// under `cargo test` builds in CI, where we only need them to execute.
const TARGET: Duration = Duration::from_millis(200);
const BATCHES: usize = 7;

/// Times `f` and prints `group/name: <ns> ns/op (<iters> iters)`.
/// Returns the per-iteration nanoseconds (median over batches).
pub fn time_case<R>(group: &str, name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm up and calibrate the per-iteration cost.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(50));
    let per_batch = (TARGET.as_nanos() / BATCHES as u128).max(1);
    let iters = ((per_batch / once.as_nanos().max(1)) as usize).clamp(1, 1_000_000);

    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{group}/{name}: {median:.0} ns/op ({iters} iters x {BATCHES} batches)");
    median
}
