//! **faults** — the deterministic fault / churn / burst resilience grid.
//!
//! For every (scenario, scheduler) point the open-loop store runs under
//! a scripted [`FaultPlan`] — crashes, quiescence-gated recoveries,
//! leader-failover storms, duplicate-delivery and reordering
//! adversaries, WAN/LAN latency mixes — across several seeds. Each run
//! is verified with [`dmt_replica::check_fault_convergence`] (survivors
//! agree at the scheduler's match level, recovered replicas agree on
//! state hash), and the row aggregates fault-lifecycle counts and
//! recovery-latency percentiles from [`RunResult::fault_log`].
//!
//! Everything reaching the table or `BENCH_faults.json` derives from
//! virtual time and integer counters, so the artifact is byte-identical
//! across reruns and sweep worker counts — the same contract as
//! `BENCH_openloop.json`, held by `tests_resilience`.

use crate::experiments::{run_jobs_prioritized, sweep_threads, ALL_KINDS, FIG1_KINDS};
use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_replica::{
    check_fault_convergence, Engine, EngineConfig, FaultPlan, FaultRecordKind, RunResult,
};
use dmt_sim::{SimDuration, SimTime};
use dmt_workload::openloop::{self, OpenLoopParams};

/// One named failure schedule of the suite. The plan (and any transport
/// or topology tweak) is a pure function of the name — see
/// [`scenario_config`] — so a scenario is replayable from its label.
#[derive(Clone, Copy, Debug)]
pub struct FaultScenario {
    pub name: &'static str,
    /// Involves mid-run recovery, so only schedulers whose
    /// [`SchedulerKind::supports_recovery`] holds can run it.
    pub needs_recovery: bool,
}

/// The suite, in presentation order.
pub const FAULT_SCENARIOS: [FaultScenario; 7] = [
    // A mid-tier replica dies and stays down: survivors must converge.
    FaultScenario {
        name: "crash",
        needs_recovery: false,
    },
    // Replica 0 dies: designated-invoker handoff plus, under LSA, the
    // announcement-leader failover path.
    FaultScenario {
        name: "leader_crash",
        needs_recovery: false,
    },
    // Crash followed by passive-replication catch-up at quiescence.
    FaultScenario {
        name: "crash_recover",
        needs_recovery: true,
    },
    // Alternating crash/recover rounds of replicas 0 and 1: leadership
    // ping-pongs while the workload keeps arriving.
    FaultScenario {
        name: "leader_storm",
        needs_recovery: true,
    },
    // Duplicate-delivery adversary; at-most-once delivery masks it.
    FaultScenario {
        name: "dup_adversary",
        needs_recovery: false,
    },
    // Reordering adversary; the hold-back buffer masks it.
    FaultScenario {
        name: "reorder_adversary",
        needs_recovery: false,
    },
    // Replica 2 sits behind a WAN link while the rest share a LAN.
    FaultScenario {
        name: "wan_mix",
        needs_recovery: false,
    },
];

const MS: u64 = 1_000_000;

fn ms_dur(n: u64) -> SimDuration {
    SimDuration::from_nanos(n * MS)
}

/// The engine configuration a scenario stands for: the fault schedule,
/// plus transport/topology tweaks for the adversary and WAN scenarios.
pub fn scenario_config(name: &str, kind: SchedulerKind, seed: u64) -> EngineConfig {
    let cfg = EngineConfig::new(kind).with_seed(seed).with_cpu_jitter(0.1);
    match name {
        "crash" => cfg.with_faults(FaultPlan::new().crash(ms_dur(3), 2)),
        "leader_crash" => cfg.with_faults(FaultPlan::new().crash(ms_dur(3), 0)),
        "crash_recover" => {
            cfg.with_faults(FaultPlan::new().crash(ms_dur(3), 2).recover(ms_dur(8), 2))
        }
        "leader_storm" => {
            cfg.with_faults(FaultPlan::new().leader_storm(ms_dur(2), ms_dur(3), ms_dur(3), 2))
        }
        "dup_adversary" => cfg.with_faults(FaultPlan::new().duplicate_window(
            ms_dur(1),
            ms_dur(12),
            1,
            SimDuration::from_micros(100),
        )),
        "reorder_adversary" => {
            cfg.with_faults(FaultPlan::new().delay_window(ms_dur(1), ms_dur(12), 1, ms_dur(2)))
        }
        "wan_mix" => cfg.with_node_latency(2, ms_dur(2)),
        other => panic!("unknown fault scenario `{other}`"),
    }
}

/// The sweep grid: every scenario × scheduler point, `seeds.len()` runs
/// each. `--quick` uses [`FaultGrid::quick`].
#[derive(Clone, Debug)]
pub struct FaultGrid {
    /// Engine/workload seeds; each point runs once per seed and the row
    /// aggregates across them.
    pub seeds: Vec<u64>,
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Add the MAT-LL / PMAT series on top of the paper's five.
    pub extended: bool,
}

impl Default for FaultGrid {
    fn default() -> Self {
        FaultGrid {
            seeds: vec![11, 12, 13, 14, 15],
            n_clients: 4,
            requests_per_client: 10,
            extended: false,
        }
    }
}

impl FaultGrid {
    /// A small grid for smoke runs (`figures faults --quick`).
    pub fn quick() -> Self {
        FaultGrid {
            seeds: vec![11, 12],
            n_clients: 3,
            requests_per_client: 5,
            extended: false,
        }
    }

    fn kinds(&self) -> Vec<SchedulerKind> {
        if self.extended {
            ALL_KINDS.to_vec()
        } else {
            FIG1_KINDS.to_vec()
        }
    }

    /// The workload under every scenario: a bursty, write-heavy,
    /// Zipf-skewed open-loop store — churn on top of churn, which is
    /// exactly when fault masking must not wobble. The seed feeds both
    /// arrivals and the request mix; it must not depend on the
    /// scheduler so every kind faces the identical offered stream.
    fn workload(&self, seed: u64) -> OpenLoopParams {
        OpenLoopParams {
            n_clients: self.n_clients,
            requests_per_client: self.requests_per_client,
            ..OpenLoopParams::default()
        }
        .with_offered_rps(1500.0)
        .with_read_fraction(0.5)
        .with_bursts(4, 8)
        .with_zipf(0.9)
        .with_seed(7000 + seed * 131)
    }
}

/// One (scenario, scheduler) row, aggregated over the grid's seeds.
#[derive(Clone, Debug)]
pub struct FaultRow {
    pub scenario: &'static str,
    pub kind: SchedulerKind,
    pub seeds: usize,
    /// Every seed's run passed [`check_fault_convergence`].
    pub converged: bool,
    /// Completed requests summed across seeds.
    pub completed: u64,
    // Fault-lifecycle counts summed across seeds.
    pub crashes: u64,
    pub recoveries: u64,
    pub deferred: u64,
    pub failovers: u64,
    // Transport-adversary counters summed across seeds.
    pub dup_dropped: u64,
    pub held_back: u64,
    /// Crash→catch-up latency percentiles across all recoveries of all
    /// seeds (0 when the scenario has no recovery).
    pub recovery_p50_ns: u64,
    pub recovery_p95_ns: u64,
    pub recovery_max_ns: u64,
    /// Worst per-seed client p99 (virtual ns).
    pub worst_p99_ns: u64,
    /// Longest per-seed makespan (virtual ns).
    pub makespan_ns: u64,
}

/// Order statistic at percentile `p` (integer arithmetic — the rounding
/// is part of the artifact contract).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as u64 - 1) * p + 50) as usize / 100]
}

/// Crash→recovered latency per recovery in the fault log, by pairing
/// each `Recovered` with the latest preceding `Crashed` of the replica.
fn recovery_latencies(res: &RunResult) -> Vec<u64> {
    let mut out = Vec::new();
    for (i, rec) in res.fault_log.iter().enumerate() {
        if let FaultRecordKind::Recovered { .. } = rec.kind {
            let crash: Option<SimTime> = res.fault_log[..i]
                .iter()
                .rev()
                .find(|c| c.replica == rec.replica && matches!(c.kind, FaultRecordKind::Crashed))
                .map(|c| c.at);
            if let Some(t0) = crash {
                out.push(rec.at.since(t0).as_nanos());
            }
        }
    }
    out
}

/// Runs the suite. One job per (scenario, scheduler) point; results are
/// slotted by point index, so row order is worker-count-independent.
pub fn faults_experiment_with_threads(grid: &FaultGrid, threads: usize) -> Vec<FaultRow> {
    let kinds = grid.kinds();
    let points: Vec<(FaultScenario, SchedulerKind)> = FAULT_SCENARIOS
        .iter()
        .flat_map(|&s| {
            kinds
                .iter()
                .filter(move |k| !s.needs_recovery || k.supports_recovery())
                .map(move |&k| (s, k))
        })
        .collect();
    run_jobs_prioritized(
        points.len(),
        threads,
        // Storms run the longest (two full outages); front-load them.
        |job| (points[job].0.needs_recovery as u64) * 2 + (points[job].0.name == "crash") as u64,
        |job| {
            let (sc, kind) = points[job];
            let mut row = FaultRow {
                scenario: sc.name,
                kind,
                seeds: grid.seeds.len(),
                converged: true,
                completed: 0,
                crashes: 0,
                recoveries: 0,
                deferred: 0,
                failovers: 0,
                dup_dropped: 0,
                held_back: 0,
                recovery_p50_ns: 0,
                recovery_p95_ns: 0,
                recovery_max_ns: 0,
                worst_p99_ns: 0,
                makespan_ns: 0,
            };
            let mut rec_lat: Vec<u64> = Vec::new();
            for &seed in &grid.seeds {
                let pair = openloop::scenario(&grid.workload(seed));
                let cfg = scenario_config(sc.name, kind, seed);
                let res = Engine::new(pair.for_kind(kind), cfg).run();
                assert!(!res.deadlocked, "{} stalled under {kind}", sc.name);
                row.converged &= check_fault_convergence(&res, kind).converged();
                row.completed += res.completed_requests;
                for r in &res.fault_log {
                    match r.kind {
                        FaultRecordKind::Crashed => row.crashes += 1,
                        FaultRecordKind::RecoveryDeferred => row.deferred += 1,
                        FaultRecordKind::Recovered { .. } => row.recoveries += 1,
                        FaultRecordKind::LeaderFailover { .. } => row.failovers += 1,
                    }
                }
                row.dup_dropped += res.net_counter("dup_dropped");
                row.held_back += res.net_counter("held_back");
                rec_lat.extend(recovery_latencies(&res));
                row.worst_p99_ns = row.worst_p99_ns.max(res.latency.p99_ns().unwrap_or(0));
                row.makespan_ns = row.makespan_ns.max(res.makespan.as_nanos());
            }
            rec_lat.sort_unstable();
            row.recovery_p50_ns = percentile(&rec_lat, 50);
            row.recovery_p95_ns = percentile(&rec_lat, 95);
            row.recovery_max_ns = rec_lat.last().copied().unwrap_or(0);
            row
        },
    )
}

/// [`faults_experiment_with_threads`] at the default worker count.
pub fn faults_experiment(grid: &FaultGrid) -> Vec<FaultRow> {
    faults_experiment_with_threads(grid, sweep_threads())
}

fn ms3(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the suite as the printable table.
pub fn faults_table(rows: &[FaultRow]) -> Table {
    let mut t = Table::new(
        "Faults: re-convergence & recovery latency per scenario × scheduler (3 replicas)",
        &[
            "scenario",
            "sched",
            "conv",
            "done",
            "crash",
            "recov",
            "defer",
            "fo",
            "dup",
            "held",
            "rec p50 (ms)",
            "rec p95 (ms)",
            "p99 (ms)",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.scenario.to_string(),
            r.kind.to_string(),
            if r.converged { "yes" } else { "NO" }.to_string(),
            r.completed.to_string(),
            r.crashes.to_string(),
            r.recoveries.to_string(),
            r.deferred.to_string(),
            r.failovers.to_string(),
            r.dup_dropped.to_string(),
            r.held_back.to_string(),
            ms3(r.recovery_p50_ns),
            ms3(r.recovery_p95_ns),
            ms3(r.worst_p99_ns),
        ]);
    }
    t
}

/// Serialises the suite as the `BENCH_faults.json` artifact. Every value
/// is virtual-time- or integer-counter-derived: byte-stable.
pub fn faults_json(grid: &FaultGrid, rows: &[FaultRow]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"faults\",\n");
    j.push_str(&format!(
        "  \"grid\": {{\"seeds\": {:?}, \"n_clients\": {}, \"requests_per_client\": {}, \"scenarios\": [{}], \"schedulers\": [{}]}},\n",
        grid.seeds,
        grid.n_clients,
        grid.requests_per_client,
        FAULT_SCENARIOS
            .iter()
            .map(|s| format!("\"{}\"", s.name))
            .collect::<Vec<_>>()
            .join(", "),
        grid.kinds()
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    j.push_str("  \"note\": \"virtual-time fault suite (DESIGN.md \\u00a711): recovery latencies are crash\\u2192catch-up spans from the fault log; byte-identical across reruns and sweep worker counts\",\n");
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"seeds\": {}, \"converged\": {}, \"completed\": {}, \"crashes\": {}, \"recoveries\": {}, \"deferred\": {}, \"failovers\": {}, \"dup_dropped\": {}, \"held_back\": {}, \"recovery_p50_ns\": {}, \"recovery_p95_ns\": {}, \"recovery_max_ns\": {}, \"worst_p99_ns\": {}, \"makespan_ns\": {}}}{}\n",
            r.scenario,
            r.kind.name(),
            r.seeds,
            r.converged,
            r.completed,
            r.crashes,
            r.recoveries,
            r.deferred,
            r.failovers,
            r.dup_dropped,
            r.held_back,
            r.recovery_p50_ns,
            r.recovery_p95_ns,
            r.recovery_max_ns,
            r.worst_p99_ns,
            r.makespan_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> FaultGrid {
        FaultGrid {
            seeds: vec![11],
            n_clients: 3,
            requests_per_client: 4,
            extended: false,
        }
    }

    #[test]
    fn every_scenario_converges_and_counts_its_faults() {
        let rows = faults_experiment_with_threads(&tiny_grid(), 2);
        // 5 non-recovery scenarios × 5 kinds + 2 recovery scenarios ×
        // 3 recovery-capable kinds (SEQ, SAT, MAT).
        assert_eq!(rows.len(), 5 * 5 + 2 * 3);
        for r in &rows {
            assert!(r.converged, "{} under {} diverged", r.scenario, r.kind);
            assert!(r.completed > 0, "{} under {}", r.scenario, r.kind);
            match r.scenario {
                "crash" | "leader_crash" => {
                    assert_eq!(r.crashes, 1);
                    assert_eq!(r.recoveries, 0);
                }
                "crash_recover" => {
                    assert_eq!(r.crashes, 1);
                    assert_eq!(r.recoveries, 1);
                    assert!(r.recovery_p50_ns > 0);
                    assert!(r.recovery_p50_ns <= r.recovery_max_ns);
                }
                "leader_storm" => {
                    assert_eq!(r.crashes, 2);
                    assert_eq!(r.recoveries, 2);
                }
                "dup_adversary" => {
                    assert!(r.dup_dropped > 0, "adversary generated no duplicates");
                }
                "reorder_adversary" => {
                    assert!(r.held_back > 0, "adversary forced no hold-back");
                }
                "wan_mix" => {
                    assert_eq!(r.crashes + r.recoveries + r.failovers, 0);
                }
                other => panic!("unexpected scenario {other}"),
            }
        }
        // LSA's leader died in leader_crash: the failover must be logged.
        let lsa_fo = rows
            .iter()
            .find(|r| r.scenario == "leader_crash" && r.kind == SchedulerKind::Lsa)
            .unwrap();
        assert_eq!(lsa_fo.failovers, 1, "LSA leader crash must log a failover");
    }

    #[test]
    fn table_and_json_cover_every_row() {
        let grid = tiny_grid();
        let rows = faults_experiment_with_threads(&grid, 1);
        let t = faults_table(&rows);
        assert_eq!(t.rows.len(), rows.len());
        let j = faults_json(&grid, &rows);
        assert_eq!(j.matches("\"scenario\":").count(), rows.len());
        assert!(j.contains("\"experiment\": \"faults\""));
    }

    #[test]
    fn percentile_is_a_deterministic_order_statistic() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 3); // idx (3*50+50)/100 = 2
        assert_eq!(percentile(&[1, 2, 3, 4], 95), 4);
    }
}
