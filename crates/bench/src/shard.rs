//! **shard** — the sharded-engine experiment behind `BENCH_shard.json`.
//!
//! Three questions, one artifact:
//!
//! 1. *Is the partition/merge machinery deterministic?* The same
//!    sharded open-loop workload runs once per shard worker count and
//!    every virtual-time projection of the merged result (completion
//!    counts, makespan, latency percentiles, per-group event counts, a
//!    hash of the merged latency stream) must be identical — the
//!    partition is fixed by the group list, never by the worker count.
//! 2. *How much intra-run parallelism does the partition expose?* The
//!    deterministic `balance_bound` — total simulated events divided by
//!    the heaviest worker's events under the contiguous-chunk
//!    assignment — is the speedup a perfectly parallel host could
//!    reach. Measured wall-clock sits next to it in the (explicitly
//!    non-reproducible) timing line; on a single-core host the measured
//!    ratio is honestly ~1× while the bound shows what the partition
//!    would buy on real cores.
//! 3. *What does the cross-shard path cost?* A relay ring
//!    ([`dmt_workload::relay`]) routes every request through a typed
//!    cross-shard call + reply, and the artifact records the resulting
//!    message and epoch-barrier counts, again pinned identical across
//!    worker counts.
//!
//! Everything in the artifact except the single `"timing"` line is
//! derived from virtual time and integer counters, so the file is
//! byte-identical across reruns and shard worker counts
//! (`crates/bench/tests/shard_determinism.rs` holds it to that, modulo
//! that one line).

use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_replica::{run_sharded, EngineConfig, ShardedRunResult};
use dmt_workload::openloop::{self, OpenLoopParams};
use dmt_workload::relay::{self, RelayParams};

/// The experiment configuration.
#[derive(Clone, Debug)]
pub struct ShardGrid {
    /// Total open-loop clients across all groups (the ROADMAP's
    /// million-client direction: the full grid runs 100 000).
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Number of shard groups the object space is partitioned into.
    pub n_groups: usize,
    /// Aggregate offered load, requests per virtual second.
    pub offered_rps: f64,
    pub read_fraction: f64,
    /// Shard worker counts to run (each must yield identical bytes).
    pub worker_counts: Vec<usize>,
    pub kind: SchedulerKind,
    /// The routed (cross-shard message) demo ring.
    pub relay: RelayParams,
}

impl Default for ShardGrid {
    fn default() -> Self {
        ShardGrid {
            n_clients: 100_000,
            requests_per_client: 1,
            n_groups: 16,
            offered_rps: 200_000.0,
            read_fraction: 0.9,
            worker_counts: vec![1, 2, 4, 8],
            kind: SchedulerKind::Mat,
            relay: RelayParams {
                clients_per_group: 8,
                requests_per_client: 5,
                ..RelayParams::default()
            },
        }
    }
}

impl ShardGrid {
    /// A small grid for smoke runs (`figures shard --quick`).
    pub fn quick() -> Self {
        ShardGrid {
            n_clients: 2_000,
            requests_per_client: 1,
            n_groups: 8,
            offered_rps: 4_000.0,
            read_fraction: 0.9,
            worker_counts: vec![1, 4],
            kind: SchedulerKind::Mat,
            relay: RelayParams::default(),
        }
    }

    fn params(&self) -> OpenLoopParams {
        OpenLoopParams {
            n_clients: self.n_clients,
            requests_per_client: self.requests_per_client,
            ..OpenLoopParams::default()
        }
        .with_offered_rps(self.offered_rps)
        .with_read_fraction(self.read_fraction)
        .with_seed(9001)
    }
}

/// Per-worker-count measurements. `balance_bound` is deterministic;
/// the wall/merge clocks are not and stay out of the byte-stable
/// artifact section.
#[derive(Clone, Debug)]
pub struct ShardWorkerRow {
    pub workers: usize,
    pub balance_bound: f64,
    pub wall_ms: f64,
    pub merge_ms: f64,
}

/// The routed (cross-shard message) demo result.
#[derive(Clone, Debug)]
pub struct RoutedReport {
    pub n_groups: usize,
    pub completed: u64,
    pub shard_msgs: u64,
    pub epochs: u64,
    pub makespan_ns: u64,
}

/// Everything `BENCH_shard.json` is rendered from.
#[derive(Clone, Debug)]
pub struct ShardReport {
    pub completed: u64,
    pub makespan_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub mean_ns: f64,
    pub events_total: u64,
    pub events_per_group: Vec<u64>,
    pub latency_stream_hash: u64,
    /// Merged results were identical for every entry of
    /// `worker_counts` (asserted during the run as well).
    pub identical_across_worker_counts: bool,
    pub rows: Vec<ShardWorkerRow>,
    pub routed: RoutedReport,
}

/// The deterministic projection of a merged run: everything virtual,
/// nothing host-timed. Two runs of the same partition must agree on
/// this exactly, whatever the worker count.
fn projection(res: &ShardedRunResult) -> (u64, u64, u64, u64, u64, u64, Vec<u64>, u64) {
    (
        res.completed_requests,
        res.makespan.as_nanos(),
        res.latency.p50_ns().unwrap_or(0),
        res.latency.p95_ns().unwrap_or(0),
        res.latency.p99_ns().unwrap_or(0),
        res.shard_msgs,
        res.events_per_group.clone(),
        latency_hash(res),
    )
}

/// FNV-1a over the merged latency stream — order-sensitive, so it pins
/// the total-order merge, not just the multiset of latencies.
fn latency_hash(res: &ShardedRunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for (g, l) in &res.latencies {
        mix(*g as u64);
        mix(l.id.client as u64);
        mix(l.id.req_no as u64);
        mix(l.enqueued.as_nanos());
        mix(l.replied.as_nanos());
    }
    h
}

/// Runs the experiment: the sharded open-loop workload once per worker
/// count (asserting merged-result identity), then the routed relay ring
/// at one and two workers (same assertion).
pub fn shard_experiment(grid: &ShardGrid) -> ShardReport {
    let p = grid.params();
    let scenarios: Vec<_> = openloop::sharded_scenarios(&p, grid.n_groups)
        .iter()
        .map(|pair| pair.for_kind(grid.kind))
        .collect();
    let mut rows = Vec::new();
    let mut base: Option<(ShardedRunResult, _)> = None;
    let mut identical = true;
    for &w in &grid.worker_counts {
        let cfg = EngineConfig::new(grid.kind)
            .with_seed(7)
            .with_cpu_jitter(0.05)
            .with_shards(w);
        let res = run_sharded(scenarios.clone(), &cfg, None);
        assert!(!res.deadlocked, "sharded open-loop stalled at {w} workers");
        let key = projection(&res);
        rows.push(ShardWorkerRow {
            workers: w,
            balance_bound: res.balance_bound(w),
            wall_ms: res.wall_ns as f64 / 1e6,
            merge_ms: res.merge_ns as f64 / 1e6,
        });
        match &base {
            None => base = Some((res, key)),
            Some((_, base_key)) => {
                assert_eq!(
                    &key, base_key,
                    "merged result diverged between 1 and {w} shard workers"
                );
                identical &= &key == base_key;
            }
        }
    }
    let (res, _) = base.expect("worker_counts must not be empty");
    if grid.n_groups >= 4 {
        let bound = res.balance_bound(4);
        assert!(
            bound > 1.3,
            "partition exposes only {bound:.2}x at 4 workers — shard imbalance"
        );
    }

    // The routed ring: every request crosses shards, so this prices the
    // typed-message path and pins its worker-count independence.
    let relay_scs: Vec<_> = relay::scenarios(&grid.relay)
        .iter()
        .map(|pair| pair.for_kind(grid.kind))
        .collect();
    let mut routed_base: Option<(ShardedRunResult, _)> = None;
    for w in [1usize, 2] {
        let cfg = EngineConfig::new(grid.kind).with_seed(7).with_shards(w);
        let res = run_sharded(relay_scs.clone(), &cfg, Some(relay::routing(&grid.relay)));
        assert!(!res.deadlocked, "relay ring stalled at {w} workers");
        let key = projection(&res);
        match &routed_base {
            None => routed_base = Some((res, key)),
            Some((_, base_key)) => {
                assert_eq!(&key, base_key, "routed ring diverged at {w} workers");
            }
        }
    }
    let (routed_res, _) = routed_base.expect("routed runs");
    assert_eq!(
        routed_res.completed_requests,
        grid.relay.total_requests() as u64
    );

    ShardReport {
        completed: res.completed_requests,
        makespan_ns: res.makespan.as_nanos(),
        p50_ns: res.latency.p50_ns().unwrap_or(0),
        p95_ns: res.latency.p95_ns().unwrap_or(0),
        p99_ns: res.latency.p99_ns().unwrap_or(0),
        mean_ns: res.latency.mean_ns(),
        events_total: res.events_per_group.iter().sum(),
        events_per_group: res.events_per_group.clone(),
        latency_stream_hash: latency_hash(&res),
        identical_across_worker_counts: identical,
        rows,
        routed: RoutedReport {
            n_groups: grid.relay.n_groups,
            completed: routed_res.completed_requests,
            shard_msgs: routed_res.shard_msgs,
            epochs: routed_res.epochs,
            makespan_ns: routed_res.makespan.as_nanos(),
        },
    }
}

/// The printable summary.
pub fn shard_table(report: &ShardReport) -> Table {
    let mut t = Table::new(
        "Sharded engine: merged-result determinism and intra-run parallelism",
        &["shard workers", "balance bound", "identical"],
    );
    for r in &report.rows {
        t.push_row(vec![
            r.workers.to_string(),
            format!("{:.2}x", r.balance_bound),
            if report.identical_across_worker_counts {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t
}

/// Serialises the report as `BENCH_shard.json`. Everything except the
/// single `"timing"` line is virtual-time-derived and byte-stable.
pub fn shard_json(grid: &ShardGrid, report: &ShardReport) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"shard\",\n");
    j.push_str(&format!(
        "  \"workload\": {{\"n_clients\": {}, \"requests_per_client\": {}, \"n_groups\": {}, \"offered_rps\": {:.0}, \"read_fraction\": {:.2}, \"scheduler\": \"{}\", \"worker_counts\": {:?}}},\n",
        grid.n_clients,
        grid.requests_per_client,
        grid.n_groups,
        grid.offered_rps,
        grid.read_fraction,
        grid.kind.name(),
        grid.worker_counts,
    ));
    j.push_str("  \"note\": \"merged sharded runs; every field except the timing line is virtual-time-derived and byte-identical across reruns and shard worker counts; balance_bound = total events / heaviest worker's events under the contiguous-chunk assignment (the deterministic intra-run speedup bound; measured wall-clock lives in the timing line and is honest about single-core hosts)\",\n");
    j.push_str("  \"deterministic\": {\n");
    j.push_str(&format!(
        "    \"completed\": {}, \"makespan_ns\": {},\n",
        report.completed, report.makespan_ns
    ));
    j.push_str(&format!(
        "    \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.1},\n",
        report.p50_ns, report.p95_ns, report.p99_ns, report.mean_ns
    ));
    j.push_str(&format!(
        "    \"events_total\": {},\n    \"events_per_group\": {:?},\n",
        report.events_total, report.events_per_group
    ));
    j.push_str(&format!(
        "    \"latency_stream_hash\": \"{:016x}\",\n",
        report.latency_stream_hash
    ));
    j.push_str("    \"balance_bound\": {");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{}\": {:.2}", r.workers, r.balance_bound));
    }
    j.push_str("},\n");
    j.push_str(&format!(
        "    \"identical_across_worker_counts\": {}\n  }},\n",
        report.identical_across_worker_counts
    ));
    j.push_str(&format!(
        "  \"routed\": {{\"n_groups\": {}, \"completed\": {}, \"shard_msgs\": {}, \"epochs\": {}, \"makespan_ns\": {}}},\n",
        report.routed.n_groups,
        report.routed.completed,
        report.routed.shard_msgs,
        report.routed.epochs,
        report.routed.makespan_ns,
    ));
    // Host-clock measurements; deliberately a single line so the
    // byte-stability test can strip it.
    let serial_wall = report.rows.first().map(|r| r.wall_ms).unwrap_or(0.0);
    j.push_str("  \"timing\": {\"rows\": [");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!(
            "{{\"workers\": {}, \"wall_ms\": {:.1}, \"merge_ms\": {:.2}, \"measured_speedup\": {:.2}}}",
            r.workers,
            r.wall_ms,
            r.merge_ms,
            serial_wall / r.wall_ms.max(1e-9),
        ));
    }
    j.push_str("]}\n");
    j.push_str("}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardGrid {
        ShardGrid {
            n_clients: 64,
            requests_per_client: 1,
            n_groups: 8,
            offered_rps: 500.0,
            read_fraction: 0.9,
            worker_counts: vec![1, 3],
            kind: SchedulerKind::Mat,
            relay: RelayParams {
                clients_per_group: 1,
                requests_per_client: 1,
                ..RelayParams::default()
            },
        }
    }

    #[test]
    fn report_is_deterministic_and_balanced() {
        let grid = tiny();
        let a = shard_experiment(&grid);
        let b = shard_experiment(&grid);
        assert!(a.identical_across_worker_counts);
        assert_eq!(a.completed, 64);
        assert_eq!(a.events_per_group.len(), 8);
        assert_eq!(a.latency_stream_hash, b.latency_stream_hash);
        assert_eq!(a.events_per_group, b.events_per_group);
        // 8 near-equal groups must expose well over the 1.3x floor.
        let r3 = a.rows.iter().find(|r| r.workers == 3).unwrap();
        assert!(r3.balance_bound > 1.3, "bound {:.2}", r3.balance_bound);
        // Relay ring: one call + one reply per request.
        assert_eq!(a.routed.shard_msgs, 2 * a.routed.completed);
    }

    #[test]
    fn json_is_byte_stable_modulo_timing() {
        let grid = tiny();
        let strip = |j: &str| {
            j.lines()
                .filter(|l| !l.contains("\"timing\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = shard_json(&grid, &shard_experiment(&grid));
        let b = shard_json(&grid, &shard_experiment(&grid));
        assert_eq!(strip(&a), strip(&b));
        assert!(a.contains("\"latency_stream_hash\""));
    }
}
