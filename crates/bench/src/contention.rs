//! **contention** — per-mutex contention analytics and the feedback loop.
//!
//! Four sections, all derived from the streaming trace
//! ([`dmt_obs::TraceSink`]) of full cluster simulations:
//!
//! 1. **Profiles** — every scheduler runs the Figure-1 workload and the
//!    seeded AB/BA [`dmt_workload::inversion`] scenario with tracing on;
//!    the Grant/Defer/Release stream folds into a per-mutex
//!    [`dmt_obs::ContentionProfile`] (defer counts by reason, hold/wait
//!    histograms, waits-for edges).
//! 2. **Race prediction** — [`dmt_analysis::predict_races`] replays the
//!    SEQ trace of the inversion scenario and must flag the A⇄B
//!    lock-order cycle from the *benign* serial execution, and report
//!    zero findings on the clean Figure-1 trace.
//! 3. **Autopilot** — for each open-loop grid cell, a traced MAT probe
//!    run is profiled and [`recommend`] picks a scheduler from the
//!    contention ratio alone; the pick's latency is compared against
//!    all five static schedulers on that cell.
//! 4. **Pmat feedback** — the Figure-1 *MAT* trace (the concurrent
//!    baseline, where blocking is observable) is folded into
//!    [`dmt_obs::ContentionProfile::hints`] and fed back via
//!    [`EngineConfig::with_hints`]; the hinted PMAT rerun is compared
//!    with the unhinted baseline. On fig1 the static predictions
//!    already eliminate blocking, so the hot-hint override can only
//!    cost — the row quantifies that, which is exactly what a
//!    feedback prototype must know before firing hints automatically.
//!
//! Everything in the table and `BENCH_contention.json` is virtual-time
//! or integer-count derived, so the artifact is byte-identical across
//! reruns and sweep worker counts;
//! `crates/bench/tests/contention_determinism.rs` holds it to that.

use crate::experiments::{run_jobs_prioritized, sweep_threads, ALL_KINDS, FIG1_KINDS};
use crate::table::Table;
use dmt_analysis::predict_races;
use dmt_core::SchedulerKind;
use dmt_obs::ContentionProfile;
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_workload::inversion::InversionParams;
use dmt_workload::openloop::OpenLoopParams;
use dmt_workload::{fig1, inversion, openloop};

/// The experiment grid. The profile section sweeps every scheduler on
/// two scenarios; the autopilot section sweeps open-loop cells.
#[derive(Clone, Debug)]
pub struct ContentionGrid {
    /// Figure-1 client count for the profile and feedback sections.
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// A mutex is *hot* when it carries at least this percentage of the
    /// profile's total contended-wait time ([`ContentionProfile::hints`]).
    pub hot_pct: u32,
    /// Open-loop cells (offered load × read mix) for the autopilot.
    pub autopilot_rps: Vec<f64>,
    pub autopilot_read_fractions: Vec<f64>,
    pub autopilot_clients: usize,
    pub autopilot_requests_per_client: usize,
}

impl Default for ContentionGrid {
    fn default() -> Self {
        ContentionGrid {
            n_clients: 8,
            requests_per_client: 4,
            hot_pct: 5,
            autopilot_rps: vec![100.0, 400.0, 1600.0, 6400.0],
            autopilot_read_fractions: vec![0.5, 0.9],
            autopilot_clients: 8,
            autopilot_requests_per_client: 25,
        }
    }
}

impl ContentionGrid {
    /// A small grid for smoke runs (`figures contention --quick`).
    pub fn quick() -> Self {
        ContentionGrid {
            n_clients: 4,
            requests_per_client: 2,
            hot_pct: 5,
            autopilot_rps: vec![200.0, 3200.0],
            autopilot_read_fractions: vec![0.9],
            autopilot_clients: 4,
            autopilot_requests_per_client: 6,
        }
    }
}

/// One (scenario, scheduler) contention profile, flattened to integers.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    pub scenario: &'static str,
    pub kind: SchedulerKind,
    /// The run stalled (only the inversion scenario is allowed to — the
    /// AB/BA deadlock is realisable under concurrent admission).
    pub deadlocked: bool,
    /// Trace records captured by the sink.
    pub records: u64,
    pub grants: u64,
    pub defers: u64,
    /// Contended acquisitions (a Defer preceded the Grant).
    pub contended: u64,
    pub wait_ns: u64,
    pub wait_p95_ns: u64,
    /// Mutexes crossing the `hot_pct` wait-share threshold.
    pub hot_mutexes: u64,
    /// Distinct held→acquired lock-order edges.
    pub edges: u64,
}

/// One race-prediction verdict.
#[derive(Clone, Debug)]
pub struct RaceRow {
    pub scenario: &'static str,
    /// Critical sections reconstructed from the trace.
    pub sections: u64,
    pub edges: u64,
    /// Lock-order cycles — the findings. Must be >0 on the seeded
    /// inversion and 0 on the clean Figure-1 run.
    pub findings: u64,
    /// Schedule-sensitive adjacent same-mutex pairs (statistics, not
    /// findings).
    pub reorderable: u64,
}

/// One open-loop autopilot cell.
#[derive(Clone, Debug)]
pub struct AutopilotRow {
    pub offered_rps: f64,
    pub read_fraction: f64,
    /// Probe statistics (traced MAT run of the same cell).
    pub probe_grants: u64,
    pub probe_contended: u64,
    pub probe_wait_ns: u64,
    /// What [`recommend`] picked from the probe profile.
    pub recommended: SchedulerKind,
    /// p95 latency of every static scheduler, in [`FIG1_KINDS`] order.
    pub static_p95_ns: Vec<u64>,
    /// The best static scheduler on this cell and its p95.
    pub best_kind: SchedulerKind,
    pub best_p95_ns: u64,
    /// p95 of the recommended scheduler (= its static run).
    pub adaptive_p95_ns: u64,
    /// The pick beat or matched the best static scheduler.
    pub matched: bool,
}

/// The Pmat feedback experiment: unhinted baseline vs hinted rerun.
#[derive(Clone, Debug)]
pub struct PmatFeedbackRow {
    /// Hot mutexes the probe profile marked.
    pub hot_mutexes: u64,
    pub base_p95_ns: u64,
    pub base_mean_ns: f64,
    pub base_makespan_ns: u64,
    pub hinted_p95_ns: u64,
    pub hinted_mean_ns: f64,
    pub hinted_makespan_ns: u64,
}

/// Everything the `contention` experiment produces.
#[derive(Clone, Debug)]
pub struct ContentionReport {
    pub profiles: Vec<ProfileRow>,
    pub races: Vec<RaceRow>,
    pub autopilot: Vec<AutopilotRow>,
    pub pmat: PmatFeedbackRow,
    /// Collapsed-stack flamegraph lines of the heaviest open-loop cell
    /// under MAT (the `CONTENTION_mat_openloop.folded` artifact).
    pub folded: String,
}

/// A traced Figure-1 cluster run (same seeds as the fig1 sweep).
fn fig1_traced(grid: &ContentionGrid, kind: SchedulerKind) -> RunResult {
    let params = fig1::Fig1Params::default()
        .with_clients(grid.n_clients)
        .with_seed(1000 + grid.n_clients as u64);
    let params = fig1::Fig1Params {
        requests_per_client: grid.requests_per_client,
        ..params
    };
    let pair = fig1::scenario(&params);
    let cfg = EngineConfig::new(kind)
        .with_seed(7)
        .with_cpu_jitter(0.05)
        .with_tracing();
    let res = Engine::new(pair.for_kind(kind), cfg).run();
    assert!(!res.deadlocked, "{kind} stalled on fig1");
    res
}

/// A traced inversion run. No deadlock assert: the whole point of the
/// scenario is that concurrent schedulers *can* realise the AB/BA
/// deadlock; SEQ always completes.
fn inversion_traced(kind: SchedulerKind) -> RunResult {
    let pair = inversion::scenario(&InversionParams::default());
    let cfg = EngineConfig::new(kind)
        .with_seed(5)
        .with_cpu_jitter(0.05)
        .with_tracing();
    Engine::new(pair.for_kind(kind), cfg).run()
}

/// A traced open-loop probe / untraced static run of one cell (same
/// seeding rule as the openloop sweep, so cells line up).
fn openloop_run(
    grid: &ContentionGrid,
    rps: f64,
    rf: f64,
    kind: SchedulerKind,
    traced: bool,
) -> RunResult {
    let p = OpenLoopParams {
        n_clients: grid.autopilot_clients,
        requests_per_client: grid.autopilot_requests_per_client,
        ..OpenLoopParams::default()
    }
    .with_offered_rps(rps)
    .with_read_fraction(rf)
    .with_seed(9000 + (rps as u64) * 31 + (rf * 100.0) as u64);
    let pair = openloop::scenario(&p);
    let mut cfg = EngineConfig::new(kind).with_seed(7).with_cpu_jitter(0.05);
    if traced {
        cfg = cfg.with_tracing();
    }
    let res = Engine::new(pair.for_kind(kind), cfg).run();
    assert!(
        !res.deadlocked,
        "{kind} stalled at {rps} req/s, {rf} read mix"
    );
    res
}

/// The autopilot's decision rule — deliberately crude, integer-only,
/// and derived from a single probe profile. The contention ratio is
/// contended acquisitions per hundred grants:
///
/// * nothing contended → the workload is effectively serial; SEQ's
///   zero-coordination admission is free,
/// * light contention → MAT's concurrent token queue wins,
/// * heavy contention → queueing dominates and LSA's serialised
///   admission (one broadcast per grant, but no token convoy) takes
///   the tail; pick it.
///
/// Thresholds were read off the measured probe profiles in
/// `BENCH_contention.json` (see EXPERIMENTS.md §contention).
pub fn recommend(profile: &ContentionProfile) -> SchedulerKind {
    let grants = profile.grants_total();
    let contended = profile.contended_total();
    if contended == 0 {
        return SchedulerKind::Seq;
    }
    // ratio in contended-per-100-grants, integer arithmetic only.
    if contended * 100 >= grants * 15 {
        SchedulerKind::Lsa
    } else {
        SchedulerKind::Mat
    }
}

fn profile_row(
    scenario: &'static str,
    kind: SchedulerKind,
    grid: &ContentionGrid,
    res: &RunResult,
) -> ProfileRow {
    let p = ContentionProfile::from_records(&res.trace_records, 0);
    ProfileRow {
        scenario,
        kind,
        deadlocked: res.deadlocked,
        records: res.trace_records.len() as u64,
        grants: p.grants_total(),
        defers: p.defers_total(),
        contended: p.contended_total(),
        wait_ns: p.wait_ns_total(),
        wait_p95_ns: p.wait_percentile_ns(95.0),
        hot_mutexes: p.hints(grid.hot_pct).hot_count() as u64,
        edges: p.edges.len() as u64,
    }
}

/// Runs the full experiment with an explicit worker count. Jobs are
/// slotted by grid index, so output bytes are identical for any
/// `threads`.
pub fn contention_experiment_with_threads(
    grid: &ContentionGrid,
    threads: usize,
) -> ContentionReport {
    // Section 1: (scenario × scheduler) profile sweep. fig1 jobs are
    // the long ones, so they get priority.
    let n_kinds = ALL_KINDS.len();
    let profiles = run_jobs_prioritized(
        2 * n_kinds,
        threads,
        |job| if job < n_kinds { 1000 } else { 10 },
        |job| {
            let kind = ALL_KINDS[job % n_kinds];
            if job < n_kinds {
                profile_row("fig1", kind, grid, &fig1_traced(grid, kind))
            } else {
                profile_row("inversion", kind, grid, &inversion_traced(kind))
            }
        },
    );

    // Section 2: race prediction on the two SEQ traces. The inversion
    // trace must carry the A⇄B cycle; the clean fig1 trace (flat
    // locking) must produce zero findings.
    let race_row = |scenario: &'static str, res: &RunResult| {
        let r = predict_races(&res.trace_records, 0);
        RaceRow {
            scenario,
            sections: r.sections.len() as u64,
            edges: r.edges.len() as u64,
            findings: r.findings() as u64,
            reorderable: r.reorderable_total(),
        }
    };
    let races = vec![
        race_row("inversion", &inversion_traced(SchedulerKind::Seq)),
        race_row("fig1", &fig1_traced(grid, SchedulerKind::Seq)),
    ];

    // Section 3: the autopilot over the open-loop grid. Each cell is
    // one job: probe, recommend, then price every static scheduler.
    let cells: Vec<(f64, f64)> = grid
        .autopilot_rps
        .iter()
        .flat_map(|&rps| {
            grid.autopilot_read_fractions
                .iter()
                .map(move |&rf| (rps, rf))
        })
        .collect();
    let autopilot = run_jobs_prioritized(
        cells.len(),
        threads,
        |job| (cells[job].0 * 1e3) as u64,
        |job| {
            let (rps, rf) = cells[job];
            let probe = openloop_run(grid, rps, rf, SchedulerKind::Mat, true);
            let prof = ContentionProfile::from_records(&probe.trace_records, 0);
            let recommended = recommend(&prof);
            let static_p95_ns: Vec<u64> = FIG1_KINDS
                .iter()
                .map(|&k| {
                    openloop_run(grid, rps, rf, k, false)
                        .latency
                        .p95_ns()
                        .unwrap_or(0)
                })
                .collect();
            let best = FIG1_KINDS
                .iter()
                .zip(&static_p95_ns)
                .min_by_key(|(_, &p95)| p95)
                .map(|(&k, &p95)| (k, p95))
                .unwrap();
            let adaptive_p95_ns = FIG1_KINDS
                .iter()
                .position(|&k| k == recommended)
                .map(|i| static_p95_ns[i])
                .unwrap_or(0);
            AutopilotRow {
                offered_rps: rps,
                read_fraction: rf,
                probe_grants: prof.grants_total(),
                probe_contended: prof.contended_total(),
                probe_wait_ns: prof.wait_ns_total(),
                recommended,
                static_p95_ns,
                best_kind: best.0,
                best_p95_ns: best.1,
                adaptive_p95_ns,
                matched: adaptive_p95_ns <= best.1,
            }
        },
    );

    // Section 4: the Pmat feedback loop. Contention is observed under
    // MAT — the concurrent baseline whose blocking PMAT's predictions
    // are meant to avoid; PMAT's own trace is contention-free on fig1,
    // so it carries no signal — folded into a hot set and fed back
    // into PMAT's eligibility rule. The traced PMAT run doubles as the
    // unhinted baseline (tracing never perturbs virtual time).
    let observed = fig1_traced(grid, SchedulerKind::Mat);
    let prof = ContentionProfile::from_records(&observed.trace_records, 0);
    let probe = fig1_traced(grid, SchedulerKind::Pmat);
    // The flamegraph artifact folds the heaviest open-loop cell under
    // MAT: its critical sections have real length (get/put compute
    // inside the monitor), so both hold and wait frames carry weight —
    // fig1's lock/update/unlock sections are instantaneous in virtual
    // time and would fold to wait frames only.
    let folded_src = openloop_run(
        grid,
        *grid.autopilot_rps.last().unwrap(),
        *grid.autopilot_read_fractions.last().unwrap(),
        SchedulerKind::Mat,
        true,
    );
    let folded = ContentionProfile::from_records(&folded_src.trace_records, 0).collapsed();
    let hints = prof.hints(grid.hot_pct);
    let params = fig1::Fig1Params::default()
        .with_clients(grid.n_clients)
        .with_seed(1000 + grid.n_clients as u64);
    let params = fig1::Fig1Params {
        requests_per_client: grid.requests_per_client,
        ..params
    };
    let pair = fig1::scenario(&params);
    let cfg = EngineConfig::new(SchedulerKind::Pmat)
        .with_seed(7)
        .with_cpu_jitter(0.05)
        .with_hints(hints.clone());
    let hinted = Engine::new(pair.for_kind(SchedulerKind::Pmat), cfg).run();
    assert!(!hinted.deadlocked, "hinted PMAT stalled on fig1");
    let pmat = PmatFeedbackRow {
        hot_mutexes: hints.hot_count() as u64,
        base_p95_ns: probe.latency.p95_ns().unwrap_or(0),
        base_mean_ns: probe.latency.mean_ns(),
        base_makespan_ns: probe.makespan.as_nanos(),
        hinted_p95_ns: hinted.latency.p95_ns().unwrap_or(0),
        hinted_mean_ns: hinted.latency.mean_ns(),
        hinted_makespan_ns: hinted.makespan.as_nanos(),
    };

    ContentionReport {
        profiles,
        races,
        autopilot,
        pmat,
        folded,
    }
}

/// [`contention_experiment_with_threads`] at the default worker count.
pub fn contention_experiment(grid: &ContentionGrid) -> ContentionReport {
    contention_experiment_with_threads(grid, sweep_threads())
}

/// The per-scheduler profile table.
pub fn contention_table(report: &ContentionReport) -> Table {
    let mut t = Table::new(
        "Contention profiles: per-mutex defer/wait analytics per scheduler (3 replicas, LAN)",
        &[
            "scenario",
            "sched",
            "records",
            "grants",
            "defers",
            "contended",
            "wait (ms)",
            "wait p95 (ms)",
            "hot",
            "edges",
            "stalled",
        ],
    );
    for r in &report.profiles {
        t.push_row(vec![
            r.scenario.to_string(),
            r.kind.to_string(),
            r.records.to_string(),
            r.grants.to_string(),
            r.defers.to_string(),
            r.contended.to_string(),
            format!("{:.3}", r.wait_ns as f64 / 1e6),
            format!("{:.3}", r.wait_p95_ns as f64 / 1e6),
            r.hot_mutexes.to_string(),
            r.edges.to_string(),
            if r.deadlocked { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// The autopilot table: probe ratio, pick, and how it priced out.
pub fn autopilot_table(report: &ContentionReport) -> Table {
    let mut t = Table::new(
        "Autopilot: probe-profile scheduler pick vs best static (open loop)",
        &[
            "offered req/s",
            "read %",
            "grants",
            "contended",
            "pick",
            "pick p95 (ms)",
            "best",
            "best p95 (ms)",
            "matched",
        ],
    );
    for r in &report.autopilot {
        t.push_row(vec![
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.read_fraction * 100.0),
            r.probe_grants.to_string(),
            r.probe_contended.to_string(),
            r.recommended.to_string(),
            format!("{:.3}", r.adaptive_p95_ns as f64 / 1e6),
            r.best_kind.to_string(),
            format!("{:.3}", r.best_p95_ns as f64 / 1e6),
            if r.matched { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Serialises the experiment as the `BENCH_contention.json` artifact.
/// Every value is virtual-time or integer-count derived, so the byte
/// stream is reproducible across reruns and worker counts.
pub fn contention_json(grid: &ContentionGrid, report: &ContentionReport) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"contention\",\n");
    j.push_str(&format!(
        "  \"grid\": {{\"n_clients\": {}, \"requests_per_client\": {}, \"hot_pct\": {}, \"autopilot_rps\": {:?}, \"autopilot_read_fractions\": {:?}, \"autopilot_clients\": {}, \"autopilot_requests_per_client\": {}}},\n",
        grid.n_clients,
        grid.requests_per_client,
        grid.hot_pct,
        grid.autopilot_rps,
        grid.autopilot_read_fractions,
        grid.autopilot_clients,
        grid.autopilot_requests_per_client,
    ));
    j.push_str("  \"note\": \"per-mutex contention profiles folded from the streaming trace sink; virtual-time integers only; byte-identical across reruns and sweep worker counts\",\n");
    j.push_str("  \"profiles\": [\n");
    for (i, r) in report.profiles.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"deadlocked\": {}, \"records\": {}, \"grants\": {}, \"defers\": {}, \"contended\": {}, \"wait_ns\": {}, \"wait_p95_ns\": {}, \"hot_mutexes\": {}, \"edges\": {}}}{}\n",
            r.scenario,
            r.kind.name(),
            r.deadlocked,
            r.records,
            r.grants,
            r.defers,
            r.contended,
            r.wait_ns,
            r.wait_p95_ns,
            r.hot_mutexes,
            r.edges,
            if i + 1 < report.profiles.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"race_prediction\": [\n");
    for (i, r) in report.races.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"sections\": {}, \"edges\": {}, \"findings\": {}, \"reorderable\": {}}}{}\n",
            r.scenario,
            r.sections,
            r.edges,
            r.findings,
            r.reorderable,
            if i + 1 < report.races.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"autopilot\": [\n");
    for (i, r) in report.autopilot.iter().enumerate() {
        let statics = FIG1_KINDS
            .iter()
            .zip(&r.static_p95_ns)
            .map(|(k, p95)| format!("\"{}\": {}", k.name(), p95))
            .collect::<Vec<_>>()
            .join(", ");
        j.push_str(&format!(
            "    {{\"offered_rps\": {:.0}, \"read_fraction\": {:.2}, \"probe_grants\": {}, \"probe_contended\": {}, \"probe_wait_ns\": {}, \"recommended\": \"{}\", \"static_p95_ns\": {{{}}}, \"best\": \"{}\", \"best_p95_ns\": {}, \"adaptive_p95_ns\": {}, \"matched\": {}}}{}\n",
            r.offered_rps,
            r.read_fraction,
            r.probe_grants,
            r.probe_contended,
            r.probe_wait_ns,
            r.recommended.name(),
            statics,
            r.best_kind.name(),
            r.best_p95_ns,
            r.adaptive_p95_ns,
            r.matched,
            if i + 1 < report.autopilot.len() { "," } else { "" },
        ));
    }
    j.push_str("  ],\n");
    let p = &report.pmat;
    j.push_str(&format!(
        "  \"pmat_feedback\": {{\"hot_mutexes\": {}, \"base_p95_ns\": {}, \"base_mean_ns\": {:.1}, \"base_makespan_ns\": {}, \"hinted_p95_ns\": {}, \"hinted_mean_ns\": {:.1}, \"hinted_makespan_ns\": {}}}\n",
        p.hot_mutexes,
        p.base_p95_ns,
        p.base_mean_ns,
        p.base_makespan_ns,
        p.hinted_p95_ns,
        p.hinted_mean_ns,
        p.hinted_makespan_ns,
    ));
    j.push_str("}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_all_sections_and_flags_the_inversion() {
        let grid = ContentionGrid::quick();
        let report = contention_experiment_with_threads(&grid, 2);
        assert_eq!(report.profiles.len(), 2 * ALL_KINDS.len());
        for r in &report.profiles {
            assert!(r.records > 0, "{} captured no records", r.kind);
            assert!(r.grants > 0, "{} granted nothing", r.kind);
            assert!(!(r.scenario == "fig1" && r.deadlocked));
        }
        // The seeded inversion must be the positive control and the
        // clean fig1 trace the negative one.
        let inv = &report.races[0];
        assert_eq!(inv.scenario, "inversion");
        assert!(inv.findings > 0, "inversion cycle not flagged");
        let clean = &report.races[1];
        assert_eq!(clean.scenario, "fig1");
        assert_eq!(clean.findings, 0, "false positive on clean fig1");
        // Autopilot rows price every static scheduler.
        for r in &report.autopilot {
            assert_eq!(r.static_p95_ns.len(), FIG1_KINDS.len());
            assert!(r.adaptive_p95_ns >= r.best_p95_ns || r.matched);
        }
        // The folded artifact has hold frames.
        assert!(report.folded.contains(";hold "));
        // JSON and tables cover every row.
        let j = contention_json(&grid, &report);
        assert_eq!(
            j.matches("\"scenario\"").count(),
            report.profiles.len() + report.races.len()
        );
        assert!(j.contains("\"pmat_feedback\""));
        assert_eq!(contention_table(&report).rows.len(), report.profiles.len());
        assert_eq!(autopilot_table(&report).rows.len(), report.autopilot.len());
    }

    #[test]
    fn recommend_is_monotone_in_the_contention_ratio() {
        // Build synthetic profiles through the real fold: uncontended →
        // SEQ, heavily contended → LSA.
        use dmt_core::{DeferReason, ThreadId};
        use dmt_lang::MutexId;
        use dmt_obs::{TraceEvent, TraceRecord};
        let rec = |t_ns: u64, ev: TraceEvent| TraceRecord {
            t_ns,
            replica: 0,
            ev,
        };
        let grant = |t_ns, tid: u32, m: u32, from_wait| {
            rec(
                t_ns,
                TraceEvent::Sched(dmt_core::Decision::Grant {
                    tid: ThreadId::new(tid),
                    mutex: MutexId::new(m),
                    from_wait,
                }),
            )
        };
        let rel = |t_ns, tid: u32, m: u32| {
            rec(
                t_ns,
                TraceEvent::MutexReleased {
                    tid: ThreadId::new(tid),
                    mutex: MutexId::new(m),
                },
            )
        };
        let serial = ContentionProfile::from_records(&[grant(0, 1, 0, false), rel(10, 1, 0)], 0);
        assert_eq!(recommend(&serial), SchedulerKind::Seq);
        let defer = |t_ns, tid: u32, m: u32| {
            rec(
                t_ns,
                TraceEvent::Sched(dmt_core::Decision::Defer {
                    tid: ThreadId::new(tid),
                    mutex: MutexId::new(m),
                    reason: DeferReason::MutexBusy,
                }),
            )
        };
        let contended = ContentionProfile::from_records(
            &[
                grant(0, 1, 0, false),
                defer(1, 2, 0),
                rel(10, 1, 0),
                grant(11, 2, 0, false),
                rel(20, 2, 0),
            ],
            0,
        );
        assert_eq!(recommend(&contended), SchedulerKind::Lsa);
    }
}
