//! # dmt-bench — experiment harness
//!
//! One function per experiment in EXPERIMENTS.md; the `figures` binary
//! and the wall-clock benches are thin wrappers. Every function returns
//! structured rows so results can be printed, asserted on, or serialised.
//!
//! Two kinds of numbers come out of this crate, and they must not be
//! confused:
//!
//! * **Virtual-time results** (throughput tables, the [`openloop`]
//!   latency percentiles) are computed entirely inside the
//!   deterministic simulation — client arrivals come from seeded
//!   Poisson schedules ([`dmt_sim::PoissonProcess`]), latencies are
//!   integer virtual nanoseconds aggregated in the fixed-bucket
//!   log-scale histogram ([`dmt_sim::LogHistogram`], ≤3.2 %
//!   quantisation error, percentiles reported at the upper bucket
//!   edge). They are bit-for-bit reproducible: the same grid yields
//!   the same bytes regardless of rerun, host, or how many sweep
//!   workers ([`run_jobs_prioritized`]) executed it, and regression
//!   tests pin exactly that.
//! * **Wall-clock results** (`BENCH_engine.json` ns/event) time the
//!   simulator itself and naturally vary run to run; they are never
//!   mixed into the deterministic artifacts.
//!
//! Parallel sweeps dispatch jobs longest-first but slot results by job
//! index, so parallelism affects wall-clock only, never output bytes.

pub mod contention;
pub mod experiments;
pub mod faults;
pub mod obs;
pub mod openloop;
pub mod shard;
pub mod table;
pub mod ubench;

pub use contention::{
    autopilot_table, contention_experiment, contention_experiment_with_threads, contention_json,
    contention_table, recommend, AutopilotRow, ContentionGrid, ContentionReport, PmatFeedbackRow,
    ProfileRow, RaceRow,
};
pub use experiments::*;
pub use faults::{
    faults_experiment, faults_experiment_with_threads, faults_json, faults_table, FaultGrid,
    FaultRow, FaultScenario, FAULT_SCENARIOS,
};
pub use obs::{obs_experiment, obs_experiment_with_threads, obs_json, obs_table, ObsGrid, ObsRow};
pub use openloop::{
    openloop_experiment, openloop_experiment_with_opts, openloop_experiment_with_threads,
    openloop_json, openloop_table, OpenLoopGrid, OpenLoopRow,
};
pub use shard::{
    shard_experiment, shard_json, shard_table, RoutedReport, ShardGrid, ShardReport, ShardWorkerRow,
};
pub use table::Table;
