//! # dmt-bench — experiment harness
//!
//! One function per experiment in EXPERIMENTS.md; the `figures` binary
//! and the wall-clock benches are thin wrappers. Every function returns
//! structured rows so results can be printed, asserted on, or serialised.

pub mod experiments;
pub mod table;
pub mod ubench;

pub use experiments::*;
pub use table::Table;
