//! Minimal fixed-width table rendering for experiment output.

/// A printable experiment table (also serialisable as CSV).
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(f, "{}", "-".repeat(header.join("  ").len()))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "x".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("long_column"));
        assert_eq!(t.to_csv(), "a,long_column\n1,2\n100,x\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
