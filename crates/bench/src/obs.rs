//! **obs** — the queue-depth / runnable-set observability sweep.
//!
//! For every `(clients, scheduler)` grid point one full cluster
//! simulation runs the Figure-1 workload with the engine's depth
//! sampler enabled ([`EngineConfig::with_depth_sampling`]): after every
//! applied scheduler event, the per-scheduler [`dmt_core::DepthSample`]
//! is recorded into the run's metrics registry. The table and the
//! `BENCH_obs.json` artifact report per-point percentiles of the total
//! queued population and of the scheduler's own queue (for MAT that is
//! the token wait queue, for PDS the round pool, for LSA the follower
//! backlog), plus the group-comm traffic counters — the paper's §3.5
//! broadcast-load comparison, now measured per scheduler.
//!
//! Every value is derived from virtual time and integer bucket counts,
//! so the artifact is byte-identical across reruns and sweep worker
//! counts; `crates/bench/tests/obs_determinism.rs` holds it to that.

use crate::experiments::{run_jobs_prioritized, sweep_threads, ALL_KINDS};
use crate::table::Table;
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_sim::LogHistogram;
use dmt_workload::fig1;

/// The sweep grid: offered load is varied via the client count on the
/// contended Figure-1 workload; all seven schedulers run at each point.
#[derive(Clone, Debug)]
pub struct ObsGrid {
    pub client_counts: Vec<usize>,
    pub requests_per_client: usize,
}

impl Default for ObsGrid {
    fn default() -> Self {
        ObsGrid {
            client_counts: vec![2, 8, 24],
            requests_per_client: 4,
        }
    }
}

impl ObsGrid {
    /// A small grid for smoke runs (`figures obs --quick`).
    pub fn quick() -> Self {
        ObsGrid {
            client_counts: vec![2, 4],
            requests_per_client: 2,
        }
    }
}

/// One grid point's depth statistics (virtual-time quantities only).
#[derive(Clone, Debug)]
pub struct ObsRow {
    pub n_clients: usize,
    pub kind: SchedulerKind,
    /// Depth samples taken (= scheduler events applied).
    pub samples: u64,
    /// Total queued population: admission + lock queues + wait sets +
    /// scheduler queue.
    pub total_p50: u64,
    pub total_p95: u64,
    pub total_max: u64,
    /// The scheduler's own queue (MAT/PMAT token wait queue, PDS round
    /// pool, LSA follower backlog, SEQ pending-thread queue).
    pub queue_p50: u64,
    pub queue_p95: u64,
    pub queue_max: u64,
    /// Threads parked in condition-wait sets, worst case.
    pub wait_set_max: u64,
    pub submissions: u64,
    pub broadcast_legs: u64,
    pub deliveries: u64,
}

fn pcts(h: Option<&LogHistogram>) -> (u64, u64, u64, u64) {
    match h {
        Some(h) => (
            h.count(),
            h.p50_ns().unwrap_or(0),
            h.p95_ns().unwrap_or(0),
            h.max_ns().unwrap_or(0),
        ),
        None => (0, 0, 0, 0),
    }
}

/// One grid point: a full cluster run with depth sampling on,
/// self-contained so it can execute on any sweep worker.
fn obs_point(n_clients: usize, requests_per_client: usize, kind: SchedulerKind) -> RunResult {
    let params = fig1::Fig1Params::default()
        .with_clients(n_clients)
        .with_seed(1000 + n_clients as u64);
    let params = fig1::Fig1Params {
        requests_per_client,
        ..params
    };
    let pair = fig1::scenario(&params);
    let cfg = EngineConfig::new(kind)
        .with_seed(7)
        .with_cpu_jitter(0.05)
        .with_depth_sampling();
    let res = Engine::new(pair.for_kind(kind), cfg).run();
    assert!(!res.deadlocked, "{kind} stalled at {n_clients} clients");
    res
}

/// Runs the sweep with an explicit worker count (1 = serial). Rows are
/// slotted by grid index, so the output is identical for any `threads`.
pub fn obs_experiment_with_threads(grid: &ObsGrid, threads: usize) -> Vec<ObsRow> {
    let kinds = ALL_KINDS;
    let n_jobs = grid.client_counts.len() * kinds.len();
    run_jobs_prioritized(
        n_jobs,
        threads,
        |job| grid.client_counts[job / kinds.len()],
        |job| {
            let n = grid.client_counts[job / kinds.len()];
            let kind = kinds[job % kinds.len()];
            let res = obs_point(n, grid.requests_per_client, kind);
            let m = &res.metrics;
            let (samples, total_p50, total_p95, total_max) = pcts(m.histogram("depth.total"));
            let (_, queue_p50, queue_p95, queue_max) = pcts(m.histogram("depth.sched_queue"));
            let (_, _, _, wait_set_max) = pcts(m.histogram("depth.wait_set"));
            ObsRow {
                n_clients: n,
                kind,
                samples,
                total_p50,
                total_p95,
                total_max,
                queue_p50,
                queue_p95,
                queue_max,
                wait_set_max,
                submissions: res.net_counter("submissions"),
                broadcast_legs: res.net_counter("broadcast_legs"),
                deliveries: res.net_counter("deliveries"),
            }
        },
    )
}

/// [`obs_experiment_with_threads`] at the default worker count.
pub fn obs_experiment(grid: &ObsGrid) -> Vec<ObsRow> {
    obs_experiment_with_threads(grid, sweep_threads())
}

/// Renders the sweep as the printable table.
pub fn obs_table(rows: &[ObsRow]) -> Table {
    let mut t = Table::new(
        "Observability: queue depths & net traffic vs load (3 replicas, LAN)",
        &[
            "clients",
            "sched",
            "samples",
            "depth p50",
            "depth p95",
            "depth max",
            "queue p50",
            "queue p95",
            "queue max",
            "waitset max",
            "subs",
            "legs",
            "deliv",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.n_clients.to_string(),
            r.kind.to_string(),
            r.samples.to_string(),
            r.total_p50.to_string(),
            r.total_p95.to_string(),
            r.total_max.to_string(),
            r.queue_p50.to_string(),
            r.queue_p95.to_string(),
            r.queue_max.to_string(),
            r.wait_set_max.to_string(),
            r.submissions.to_string(),
            r.broadcast_legs.to_string(),
            r.deliveries.to_string(),
        ]);
    }
    t
}

/// Serialises the sweep as the `BENCH_obs.json` artifact. Every value
/// is an integer derived from virtual time, so the byte stream is
/// reproducible across reruns and worker counts.
pub fn obs_json(grid: &ObsGrid, rows: &[ObsRow]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"experiment\": \"obs\",\n");
    j.push_str(&format!(
        "  \"grid\": {{\"client_counts\": {:?}, \"requests_per_client\": {}, \"schedulers\": [{}]}},\n",
        grid.client_counts,
        grid.requests_per_client,
        ALL_KINDS
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    j.push_str("  \"note\": \"queue-depth samples taken after every applied scheduler event; percentiles from the fixed-bucket log-scale histogram (upper bucket edge); byte-identical across reruns and sweep worker counts\",\n");
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"clients\": {}, \"scheduler\": \"{}\", \"samples\": {}, \"depth_p50\": {}, \"depth_p95\": {}, \"depth_max\": {}, \"queue_p50\": {}, \"queue_p95\": {}, \"queue_max\": {}, \"wait_set_max\": {}, \"submissions\": {}, \"broadcast_legs\": {}, \"deliveries\": {}}}{}\n",
            r.n_clients,
            r.kind.name(),
            r.samples,
            r.total_p50,
            r.total_p95,
            r.total_max,
            r.queue_p50,
            r.queue_p95,
            r.queue_max,
            r.wait_set_max,
            r.submissions,
            r.broadcast_legs,
            r.deliveries,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_grows_with_load_and_seq_queues_deepest() {
        let grid = ObsGrid {
            client_counts: vec![2, 8],
            requests_per_client: 3,
        };
        let rows = obs_experiment_with_threads(&grid, 2);
        assert_eq!(rows.len(), 2 * ALL_KINDS.len());
        for r in &rows {
            assert!(r.samples > 0, "{} took no depth samples", r.kind);
            assert!(r.total_p50 <= r.total_p95 && r.total_p95 <= r.total_max);
        }
        // SEQ admits one thread at a time: at 8 contended clients its
        // total queued population must dwarf its own 2-client figure.
        let seq = |n: usize| {
            rows.iter()
                .find(|r| r.n_clients == n && r.kind == SchedulerKind::Seq)
                .unwrap()
                .total_max
        };
        assert!(seq(8) > seq(2), "SEQ max depth {} !> {}", seq(8), seq(2));
        // LSA's broadcast-per-grant shows up as more legs than MAT's.
        let legs = |k: SchedulerKind| {
            rows.iter()
                .filter(|r| r.kind == k)
                .map(|r| r.broadcast_legs)
                .sum::<u64>()
        };
        assert!(legs(SchedulerKind::Lsa) > legs(SchedulerKind::Mat));
    }
}
