//! Resilience goldens (DESIGN.md §11's contract, held by tests).
//!
//! Three properties are pinned here, one per section:
//!
//! 1. **Re-convergence** — after every fault schedule in the suite, all
//!    surviving and recovered replicas reach identical state hashes
//!    (invariants R1/R2), and the hash summary is identical across
//!    reruns.
//! 2. **Artifact byte-identity** — `BENCH_faults.json` does not depend
//!    on sweep worker count, dispatch order, or rerun.
//! 3. **Teeth** — a deliberately broken transport (duplicate delivery
//!    with de-duplication disabled) is *flagged* by
//!    [`check_fault_convergence`]; the suite's masking claims are only
//!    meaningful because this negative control fails without masking.
//!
//! The `#[ignore]`d full grid mirrors what `figures faults` publishes.

use dmt_bench::faults::scenario_config;
use dmt_bench::{faults_experiment_with_threads, faults_json, FaultGrid, FAULT_SCENARIOS};
use dmt_core::SchedulerKind;
use dmt_replica::{check_fault_convergence, CheckOutcome, Engine, EngineConfig, FaultPlan};
use dmt_sim::SimDuration;
use dmt_workload::openloop::{self, OpenLoopParams};

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// The workload the convergence goldens run: bursty arrivals, Zipf-hot
/// keys, half writes — order-sensitive enough that any grant-order
/// wobble shows up in the state hash.
fn workload(seed: u64) -> OpenLoopParams {
    OpenLoopParams {
        n_clients: 3,
        requests_per_client: 5,
        ..OpenLoopParams::default()
    }
    .with_offered_rps(1500.0)
    .with_read_fraction(0.5)
    .with_bursts(4, 8)
    .with_zipf(0.9)
    .with_seed(7000 + seed * 131)
}

/// §1 — every scenario × scheduler × seed re-converges: live replicas
/// end bit-identical in state, and the whole hash summary reruns to the
/// same bytes.
#[test]
fn state_hashes_reconverge_after_every_fault_schedule() {
    let summarize = || {
        let mut out = String::new();
        for sc in FAULT_SCENARIOS {
            for kind in SchedulerKind::DETERMINISTIC {
                if sc.needs_recovery && !kind.supports_recovery() {
                    continue;
                }
                for seed in [11u64, 12] {
                    let pair = openloop::scenario(&workload(seed));
                    let cfg = scenario_config(sc.name, kind, seed);
                    let res = Engine::new(pair.for_kind(kind), cfg).run();
                    assert!(!res.deadlocked, "{} stalled under {kind}", sc.name);
                    assert!(
                        check_fault_convergence(&res, kind).converged(),
                        "{} diverged under {kind} seed {seed}",
                        sc.name
                    );
                    // The R1/R2 invariant, stated directly: one hash
                    // across every live replica, recovered included.
                    let live: Vec<u64> = (0..res.traces.len())
                        .filter(|&i| res.alive[i])
                        .map(|i| res.traces[i].state_hash)
                        .collect();
                    assert!(!live.is_empty());
                    assert!(
                        live.windows(2).all(|w| w[0] == w[1]),
                        "{} under {kind} seed {seed}: hashes {live:x?}",
                        sc.name
                    );
                    out.push_str(&format!("{}/{kind}/{seed}: {:x}\n", sc.name, live[0]));
                }
            }
        }
        out
    };
    let golden = summarize();
    assert_eq!(golden, summarize(), "hash summary not rerun-stable");
}

/// §2 — the published artifact's bytes are independent of worker count
/// and rerun (the same contract `BENCH_openloop.json` holds).
#[test]
fn faults_json_is_byte_identical_across_worker_counts_and_reruns() {
    let g = FaultGrid {
        seeds: vec![11, 12],
        n_clients: 3,
        requests_per_client: 5,
        extended: true, // all seven schedulers
    };
    let reference = faults_json(&g, &faults_experiment_with_threads(&g, 1));
    // Coverage sanity: 5 non-recovery scenarios × 7 kinds + 2 recovery
    // scenarios × 5 recovery-capable kinds.
    assert_eq!(reference.matches("\"scenario\":").count(), 5 * 7 + 2 * 5);
    for threads in [2, 8] {
        let j = faults_json(&g, &faults_experiment_with_threads(&g, threads));
        assert_eq!(reference, j, "{threads}-worker sweep diverged from serial");
    }
    let again = faults_json(&g, &faults_experiment_with_threads(&g, 1));
    assert_eq!(reference, again, "rerun diverged");
}

/// §3 — the negative control: duplicates that actually reach a replica
/// (at-most-once delivery disabled) re-execute non-idempotent writes
/// there, and the checker must call that a determinism violation. This
/// is the test that proves the dedup layer is load-bearing and the
/// checker has teeth against delivery faults, not just scheduling ones.
#[test]
fn non_idempotent_duplicate_delivery_is_flagged() {
    let p = workload(11).with_read_fraction(0.0); // writes only
    for kind in [SchedulerKind::Seq, SchedulerKind::Mat] {
        let plan =
            FaultPlan::new().duplicate_window(ms(1), ms(12), 1, SimDuration::from_micros(100));
        let pair = openloop::scenario(&p);
        let run = |broken: bool| {
            let cfg = EngineConfig::new(kind)
                .with_seed(11)
                .with_cpu_jitter(0.1)
                .with_faults(plan.clone());
            let cfg = if broken { cfg.with_broken_dedup() } else { cfg };
            Engine::new(pair.for_kind(kind), cfg).run()
        };
        // Masked: the identical adversary converges with dedup on.
        let masked = run(false);
        assert!(
            masked.net_counter("dup_dropped") > 0,
            "{kind}: no duplicates generated"
        );
        assert!(
            check_fault_convergence(&masked, kind).converged(),
            "{kind}: masked run diverged"
        );
        // Broken: duplicates re-deliver and the checker flags it.
        let broken = run(true);
        let outcome = check_fault_convergence(&broken, kind);
        assert!(
            matches!(outcome, CheckOutcome::Diverged { .. }),
            "{kind}: broken transport not flagged — got {outcome:?}"
        );
    }
}

/// The full published grid (what `figures faults` writes), extended
/// series included: every row must converge. Slow — run explicitly with
/// `cargo test -p dmt-bench --test resilience -- --ignored`.
#[test]
#[ignore]
fn full_grid_runs_clean() {
    let g = FaultGrid {
        extended: true,
        ..FaultGrid::default()
    };
    let rows = faults_experiment_with_threads(&g, 4);
    for r in &rows {
        assert!(r.converged, "{} under {} diverged", r.scenario, r.kind);
    }
}
