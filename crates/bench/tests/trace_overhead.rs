//! The tracing-disabled overhead guard: embedding the observability
//! layer must not slow the engine's hot path down. The default
//! configuration (tracing off, depth sampling off) runs the same
//! Figure-1 sweep `BENCH_engine.json` measures and its ns/event is held
//! against the pinned baseline. The disabled path is one predictable
//! branch per potential record and zero allocation (proved separately
//! by `SchedOutput::decision_capacity` / `Tracer::capacity` unit
//! tests), so the measured cost should not move.

use dmt_bench::{engine_bench_experiment, BASELINE_TOTAL_NS_PER_EVENT};
use dmt_replica::PerfCounters;

#[test]
fn tracing_disabled_path_does_not_regress_ns_per_event() {
    // Min of three measurements: scheduler noise (CI neighbours, cold
    // caches) only ever inflates wall time, so the minimum is the
    // faithful estimate.
    let ns_per_event = (0..3)
        .map(|_| {
            let rows = engine_bench_experiment(&[4, 8], 2);
            let mut total = PerfCounters::default();
            for r in &rows {
                total.merge(&r.perf);
            }
            total.ns_per_event()
        })
        .fold(f64::INFINITY, f64::min);
    // The baseline was measured on a release build; leave generous
    // headroom for machine variance there, and a far wider berth for
    // unoptimised test builds, where the multiplier is the build mode,
    // not the tracing layer.
    let slack = if cfg!(debug_assertions) { 60.0 } else { 2.5 };
    let limit = BASELINE_TOTAL_NS_PER_EVENT * slack;
    assert!(
        ns_per_event < limit,
        "tracing-disabled engine runs at {ns_per_event:.1} ns/event, \
         over the {limit:.1} guard ({}× the {BASELINE_TOTAL_NS_PER_EVENT} baseline)",
        slack
    );
}
