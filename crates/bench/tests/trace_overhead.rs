//! The tracing-disabled overhead guard: embedding the observability
//! layer must not slow the engine's hot path down. The default
//! configuration (tracing off, depth sampling off) runs the same
//! Figure-1 sweep `BENCH_engine.json` measures and its ns/event is held
//! against the pinned post-refactor cost. The disabled path is one
//! predictable branch per potential record and zero allocation (proved
//! separately by `SchedOutput::decision_capacity` / `Tracer::capacity`
//! unit tests and the counting-allocator test in
//! `tests/steady_state_alloc.rs`), so the measured cost should not
//! move.

use dmt_bench::{engine_bench_experiment, FUSED_TOTAL_NS_PER_EVENT};
use dmt_replica::PerfCounters;

#[test]
fn tracing_disabled_path_does_not_regress_ns_per_event() {
    // Min of three measurements: scheduler noise (CI neighbours, cold
    // caches) only ever inflates wall time, so the minimum is the
    // faithful estimate.
    let ns_per_event = (0..3)
        .map(|_| {
            let rows = engine_bench_experiment(&[4, 8], 2);
            let mut total = PerfCounters::default();
            for r in &rows {
                total.merge(&r.perf);
            }
            total.ns_per_event()
        })
        .fold(f64::INFINITY, f64::min);
    // The pin was measured on a release build; leave headroom for
    // machine variance there, and a far wider berth for unoptimised
    // test builds, where the multiplier is the build mode, not the
    // tracing layer. Re-tightened with the dispatch fan-out collapse
    // (pin 135.0 → 105.0 at unchanged 2×/20× slack): this small grid
    // measures ~120 ns/event on the pinning host in release and its
    // noise bursts top out around 200, so the 210 ns/event release
    // limit sits just above the worst observed burst while a slide
    // back to the threaded-interpreter cost band (270 would have
    // passed the old guard) trips it.
    let slack = if cfg!(debug_assertions) { 20.0 } else { 2.0 };
    let limit = FUSED_TOTAL_NS_PER_EVENT * slack;
    assert!(
        ns_per_event < limit,
        "tracing-disabled engine runs at {ns_per_event:.1} ns/event, \
         over the {limit:.1} guard ({}× the {FUSED_TOTAL_NS_PER_EVENT} pin)",
        slack
    );
}
