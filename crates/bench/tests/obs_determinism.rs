//! The `BENCH_obs.json` byte-identity regression: the queue-depth
//! sweep's serialised output must not depend on how many workers ran
//! the sweep, on dispatch order, or on rerun. Depth percentiles come
//! from integer bucket counts over virtual time; any wall-clock or
//! iteration-order dependence leaking into the artifact fails here.

use dmt_bench::{obs_experiment_with_threads, obs_json, ObsGrid};

fn grid() -> ObsGrid {
    ObsGrid {
        client_counts: vec![2, 6],
        requests_per_client: 3,
    }
}

#[test]
fn obs_json_is_byte_identical_across_worker_counts_and_reruns() {
    let g = grid();
    let reference = obs_json(&g, &obs_experiment_with_threads(&g, 1));
    // Sanity: every scheduler × grid point is present.
    assert_eq!(reference.matches("\"scheduler\"").count(), 2 * 7);
    for threads in [2, 8] {
        let j = obs_json(&g, &obs_experiment_with_threads(&g, threads));
        assert_eq!(reference, j, "{threads}-worker sweep diverged from serial");
    }
    let again = obs_json(&g, &obs_experiment_with_threads(&g, 1));
    assert_eq!(reference, again, "rerun diverged");
}
