//! The `BENCH_openloop.json` byte-identity regression: the open-loop
//! sweep's serialised output must not depend on how many workers ran
//! the sweep, on dispatch order, or on rerun — for *every* scheduler,
//! including the extended MAT-LL/PMAT series. Any wall-clock value or
//! iteration-order dependence leaking into the artifact fails here.

use dmt_bench::{openloop_experiment_with_threads, openloop_json, OpenLoopGrid};

fn grid() -> OpenLoopGrid {
    OpenLoopGrid {
        offered_rps: vec![300.0, 5000.0],
        read_fractions: vec![0.5, 1.0],
        n_clients: 4,
        requests_per_client: 5,
        extended: true, // all seven schedulers, not just the paper's five
    }
}

#[test]
fn openloop_json_is_byte_identical_across_worker_counts_and_reruns() {
    let g = grid();
    let reference = openloop_json(&g, &openloop_experiment_with_threads(&g, 1));
    // Sanity: the artifact actually covers every scheduler × grid point.
    assert_eq!(reference.matches("\"scheduler\"").count(), 2 * 2 * 7);
    for threads in [2, 8] {
        let j = openloop_json(&g, &openloop_experiment_with_threads(&g, threads));
        assert_eq!(reference, j, "{threads}-worker sweep diverged from serial");
    }
    // Rerun at the same worker count: same process, fresh engines.
    let again = openloop_json(&g, &openloop_experiment_with_threads(&g, 1));
    assert_eq!(reference, again, "rerun diverged");
}
