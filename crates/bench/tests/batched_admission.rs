//! Batched admission must be outcome-invisible: the ready-ring drain
//! (default) and the one-queue-event-per-step path
//! (`EngineConfig::without_batching`) must produce identical traces,
//! virtual-time results, and metrics on every scheduler kind. Batching
//! only elides the zero-delay `Ev::Step` push/pop round-trip for
//! threads admitted or resumed when no other event is due at the same
//! instant — the drained entries still count as events
//! (`engine.batched_steps` ⊆ `engine.events`), so even the event totals
//! must agree between the two modes.

use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_workload::{fig1, openloop};

const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
    SchedulerKind::MatLL,
    SchedulerKind::Pmat,
];

fn assert_equivalent(kind: SchedulerKind, batched: &RunResult, unbatched: &RunResult) {
    assert_eq!(batched.traces, unbatched.traces, "{kind}: traces diverged");
    assert_eq!(
        batched.completed_requests, unbatched.completed_requests,
        "{kind}: completed requests diverged"
    );
    assert_eq!(
        batched.makespan, unbatched.makespan,
        "{kind}: makespan diverged"
    );
    assert_eq!(
        batched.dummy_requests, unbatched.dummy_requests,
        "{kind}: dummy requests diverged"
    );
    assert_eq!(
        batched.ctrl_messages, unbatched.ctrl_messages,
        "{kind}: control traffic diverged"
    );
    assert!(
        !batched.deadlocked && !unbatched.deadlocked,
        "{kind}: deadlock"
    );
    for (name, v) in &batched.metrics.counters {
        if name == "engine.wall_ns" || name == "engine.batched_steps" {
            continue;
        }
        assert_eq!(
            unbatched.metrics.counter(name),
            Some(*v),
            "{kind}: metric `{name}` diverged"
        );
    }
    // Batching actually happened, and the unbatched engine never used
    // the ring.
    assert!(
        batched.metrics.counter("engine.batched_steps").unwrap_or(0) > 0,
        "{kind}: batched run drained no admissions through the ring"
    );
    assert_eq!(
        unbatched.metrics.counter("engine.batched_steps"),
        Some(0),
        "{kind}: unbatched run used the ready ring"
    );
}

#[test]
fn fig1_outcomes_identical_batched_vs_unbatched() {
    let p = fig1::Fig1Params::default().with_clients(6).with_seed(21);
    let pair = fig1::scenario(&p);
    for kind in ALL_KINDS {
        let cfg = EngineConfig::new(kind).with_seed(13).with_cpu_jitter(0.05);
        let batched = Engine::new(pair.for_kind(kind), cfg.clone()).run();
        let unbatched = Engine::new(pair.for_kind(kind), cfg.without_batching()).run();
        assert_equivalent(kind, &batched, &unbatched);
    }
}

#[test]
fn openloop_outcomes_identical_batched_vs_unbatched() {
    // Open-loop arrivals land whole bursts at one instant — the regime
    // where the same-time admission gate actually has to hold entries
    // back, so the two modes can only agree if the gate is airtight.
    let p = openloop::OpenLoopParams::default()
        .with_offered_rps(500.0)
        .with_seed(3);
    let pair = openloop::scenario(&p);
    for kind in ALL_KINDS {
        let cfg = EngineConfig::new(kind).with_seed(29).with_cpu_jitter(0.05);
        let batched = Engine::new(pair.for_kind(kind), cfg.clone()).run();
        let unbatched = Engine::new(pair.for_kind(kind), cfg.without_batching()).run();
        assert_equivalent(kind, &batched, &unbatched);
    }
}
