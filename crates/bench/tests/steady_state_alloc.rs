//! Zero-allocation proof for the pooled substrate: once the event
//! queue's slab and a replica's VM pool are warm, the submit→step→reply
//! structures recycle storage instead of asking the allocator. Asserted
//! with a counting global allocator — stronger than pool-stat counters,
//! because it catches any allocation on the measured path, not just the
//! ones the pools know about.
//!
//! One `#[test]` on purpose: the counter is process-global, and libtest
//! would interleave concurrent tests' allocations into each other's
//! deltas.

use dmt_lang::interp::StepOutcome;
use dmt_lang::{
    ast::IntExpr, ast::MutexExpr, compile, MethodIdx, MutexId, ObjectBuilder, ObjectState,
    RequestArgs, Value, VmPool,
};
use dmt_sim::{EventQueue, SimDuration, SplitMix64};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The engine's delay profile, spanning same-instant steps, in-window
/// hops, and overflow-range completions so the churn touches every
/// queue tier (bucket lists, window advance, pairing heap).
fn delay(r: &mut SplitMix64) -> u64 {
    match r.next_below(4) {
        0 | 1 => 0,
        2 => 1_000 + r.next_below(5_000),
        _ => 1_000_000 + r.next_below(500_000_000),
    }
}

fn churn(q: &mut EventQueue<u32>, rng: &mut SplitMix64, ops: usize) -> u32 {
    let mut acc = 0;
    for _ in 0..ops {
        let (_, e) = q.pop().expect("resident population");
        acc ^= e;
        q.push_after(SimDuration::from_nanos(delay(rng)), e);
    }
    acc
}

#[test]
fn warm_substrate_paths_do_not_allocate() {
    // --- Event queue: slab-backed calendar + pairing heap. ---
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = SplitMix64::new(99);
    for i in 0..256u32 {
        q.push_after(SimDuration::from_nanos(delay(&mut rng)), i);
    }
    // Warm-up grows the slab, bucket lists and heap scratch to their
    // steady-state footprint.
    churn(&mut q, &mut rng, 20_000);
    // Min-of-3 windows here and below for the long measured stretches:
    // the queue's own allocations are deterministic, but the counter is
    // process-global and the libtest harness can allocate from another
    // thread while the suite runs under load — stray counts only ever
    // inflate a delta, so one clean window proves the claim (the same
    // estimator argument as the wall-clock benches).
    let queue_delta = (0..3)
        .map(|_| {
            let before = allocations();
            let acc = churn(&mut q, &mut rng, 20_000);
            std::hint::black_box(acc);
            allocations() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        queue_delta, 0,
        "warm event-queue churn allocated {queue_delta} times"
    );

    // --- VM pool: acquire → run to completion → release cycles. ---
    let mut ob = ObjectBuilder::new("Steady");
    let cell = ob.cell();
    let mut m = ob.method("hot", 1);
    m.for_loop(dmt_lang::ast::CountExpr::Lit(8), |b| {
        b.sync(MutexExpr::This, |b| {
            b.update(cell, IntExpr::Arg(0));
        });
    });
    m.done();
    let program = compile::compile(&ob.build());
    let mut state = ObjectState::for_object(&program, MutexId::new(0));
    let args = RequestArgs::new(vec![Value::Int(1)]);
    let mut pool = VmPool::new();

    let cycle = |pool: &mut VmPool, state: &mut ObjectState| {
        let mut vm = pool.acquire(program.clone(), MethodIdx::new(0), &args);
        while !matches!(vm.step(state), StepOutcome::Finished) {}
        pool.release(vm);
    };
    // First cycle allocates the VM and grows its arenas; everything
    // after runs out of the free list.
    cycle(&mut pool, &mut state);
    let before = allocations();
    for _ in 0..100 {
        cycle(&mut pool, &mut state);
    }
    let vm_delta = allocations() - before;
    assert_eq!(
        vm_delta, 0,
        "warm VM acquire/run/release cycle allocated {vm_delta} times"
    );

    // --- Admission ready ring: the engine's batched-admission buffer
    // (`VecDeque<(usize, ThreadId)>`) is pushed and drained once per
    // admitted/resumed thread. Like the queue slab, it must reach its
    // high-water capacity during warm-up and then recycle it — batching
    // must not trade the zero-delay queue event for a fresh allocation.
    let mut ring: std::collections::VecDeque<(usize, dmt_core::ThreadId)> =
        std::collections::VecDeque::new();
    for burst in 0..4usize {
        for t in 0..64u32 {
            ring.push_back((burst % 3, dmt_core::ThreadId::new(t)));
        }
        while ring.pop_front().is_some() {}
    }
    let before = allocations();
    for burst in 0..100usize {
        for t in 0..64u32 {
            ring.push_back((burst % 3, dmt_core::ThreadId::new(t)));
        }
        while ring.pop_front().is_some() {}
    }
    let ring_delta = allocations() - before;
    assert_eq!(
        ring_delta, 0,
        "warm admission-ring churn allocated {ring_delta} times"
    );

    // --- Disabled tracer: the tracing-off record path is one branch
    // and must never allocate — not even on the first call (this is
    // the default engine configuration, so any allocation here taxes
    // every untraced simulation).
    let mut off = dmt_obs::Tracer::disabled();
    let ev = || {
        dmt_obs::TraceEvent::Sched(dmt_core::Decision::Grant {
            tid: dmt_core::ThreadId::new(1),
            mutex: MutexId::new(3),
            from_wait: false,
        })
    };
    let before = allocations();
    for t in 0..10_000u64 {
        off.record(t, 0, ev);
    }
    let off_delta = allocations() - before;
    assert_eq!(
        off_delta, 0,
        "disabled tracer allocated {off_delta} times on the record path"
    );
    assert_eq!(off.written(), 0);

    // --- Ring sink: the bounded last-N sink preallocates its ring at
    // construction; steady-state accepts (including overwrites past
    // the cap) must recycle those slots, never grow them.
    let mut ring_tr = dmt_obs::Tracer::with_sink(Box::new(dmt_obs::RingSink::new(128)));
    for t in 0..256u64 {
        ring_tr.record(t, 0, ev); // warm: fill and wrap once
    }
    let before = allocations();
    for t in 0..10_000u64 {
        ring_tr.record(t, 0, ev);
    }
    let sink_delta = allocations() - before;
    assert_eq!(
        sink_delta, 0,
        "warm ring-sink record path allocated {sink_delta} times"
    );
    assert_eq!(ring_tr.written(), 128, "ring retains exactly its cap");
    assert_eq!(ring_tr.dropped(), 10_256 - 128);
    assert_eq!(
        pool.allocs(),
        1,
        "pool should have allocated exactly one VM"
    );
    assert_eq!(
        pool.reuses(),
        100,
        "every later cycle must reuse the pooled VM"
    );

    // --- Shard merge scratch: the coordinator's latency merger is
    // pre-sized at run start (`ShardMerger::with_capacity`), so
    // re-merging per-group latency slices — the once-per-run merge the
    // sharded engine performs — must recycle the scratch buffer, not
    // grow it.
    use dmt_replica::{RequestId, RequestLatency, ShardMerger};
    use dmt_sim::SimTime;
    let lat = |client: u32, req_no: u32, enq: u64, rep: u64| RequestLatency {
        id: RequestId { client, req_no },
        enqueued: SimTime::from_nanos(enq),
        replied: SimTime::from_nanos(rep),
    };
    let groups: Vec<Vec<RequestLatency>> = (0..8u32)
        .map(|g| {
            (0..64u32)
                .map(|i| {
                    lat(
                        g * 64 + i,
                        0,
                        (i as u64) * 17 + g as u64,
                        (i as u64) * 17 + g as u64 + 1_000,
                    )
                })
                .collect()
        })
        .collect();
    let total: usize = groups.iter().map(Vec::len).sum();
    let mut merger = ShardMerger::with_capacity(total);
    // Warm once (pre-sizing means even this should not reallocate, but
    // the guard is about steady state).
    let n = merger
        .merge_latencies(groups.iter().map(Vec::as_slice))
        .len();
    assert_eq!(n, total);
    // Min-of-3 windows: the merge loop is this test's longest
    // pure-compute stretch, which makes it the likeliest landing spot
    // for a stray allocation from the test harness's own threads when
    // the suite runs under load. The merger's allocations are
    // deterministic, stray counts only inflate, so a single clean
    // window proves the claim.
    let merge_delta = (0..3)
        .map(|_| {
            let before = allocations();
            for _ in 0..50 {
                let merged = merger.merge_latencies(groups.iter().map(Vec::as_slice));
                std::hint::black_box(merged.len());
            }
            allocations() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        merge_delta, 0,
        "warm shard latency merge allocated {merge_delta} times"
    );

    // --- Queue reset-reuse: per-shard calendar queues are handed back
    // to the coordinator and reset between runs (`EventQueue::reset`);
    // a reset queue must re-run a full schedule out of its existing
    // slab/buckets/heap storage with zero fresh allocations.
    let mut rng2 = SplitMix64::new(7);
    let reset_delta = (0..3)
        .map(|_| {
            let before = allocations();
            for _ in 0..8 {
                q.reset();
                for i in 0..256u32 {
                    q.push_after(SimDuration::from_nanos(delay(&mut rng2)), i);
                }
                let acc = churn(&mut q, &mut rng2, 2_000);
                std::hint::black_box(acc);
                while q.pop().is_some() {}
            }
            allocations() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        reset_delta, 0,
        "reset-reuse queue churn allocated {reset_delta} times"
    );

    // --- Fused fast path: the same-instant grant fusion in the step
    // loop replaces a queue push + pop + `process`-drain re-entry with
    // an inline ring pop, so a whole engine run with fusion on must
    // allocate *no more* than the reference run (`without_fastpath`) of
    // the identical scenario — the fast path is a pure storage-reuse
    // shortcut. Compared as full-run deltas rather than a warm inner
    // loop because an `Engine` is built per run; the reference run
    // bounds what the scenario itself allocates.
    let params = dmt_workload::fig1::Fig1Params::default()
        .with_clients(3)
        .with_seed(11);
    let pair = dmt_workload::fig1::scenario(&params);
    let cfg = dmt_replica::EngineConfig::new(dmt_core::SchedulerKind::Seq).with_seed(7);
    let run = |cfg: dmt_replica::EngineConfig| {
        let scenario = pair.for_kind(dmt_core::SchedulerKind::Seq);
        let before = allocations();
        let res = dmt_replica::Engine::new(scenario, cfg).run();
        (allocations() - before, res)
    };
    // Warm once: the first run pays lazy global initialisation (stdio,
    // histogram tables) that belongs to neither path. Then min-of-3 per
    // mode: a run's own allocations are deterministic, but the counter
    // is process-global and the libtest harness can allocate
    // concurrently under a loaded suite — stray counts only ever
    // inflate a delta, so the minimum is the faithful one (same
    // estimator argument as the wall-clock benches).
    run(cfg.clone());
    let measure = |cfg: &dmt_replica::EngineConfig| {
        let (mut allocs, res) = run(cfg.clone());
        for _ in 0..2 {
            allocs = allocs.min(run(cfg.clone()).0);
        }
        (allocs, res)
    };
    let (fused_allocs, fused_res) = measure(&cfg);
    let (reference_allocs, reference_res) = measure(&cfg.clone().without_fastpath());
    assert!(
        fused_res.perf.fused_grants > 0,
        "fused run never took the fast path"
    );
    assert_eq!(reference_res.perf.fused_grants, 0);
    assert!(
        fused_allocs <= reference_allocs,
        "fused fast path allocated {fused_allocs} times, more than the \
         {reference_allocs} of the reference path on the same scenario"
    );
}
