//! Observability-layer guarantees (DESIGN.md §9):
//!
//! 1. Tracing is an *observer*: enabling it must not change a single
//!    simulated outcome — grant traces, latencies, makespan, state
//!    hashes are bit-identical with and without it.
//! 2. Decision traces are replica-consistent at each scheduler's match
//!    level: globally for SEQ/SAT, per-mutex grant/announce order for
//!    every concurrent algorithm (the same granularity the determinism
//!    checker enforces on lock traces).
//! 3. The Chrome-trace export is byte-stable (golden file).

use dmt_core::{Decision, SchedulerKind, ThreadId};
use dmt_lang::MutexId;
use dmt_obs::{chrome_trace_json, TraceEvent, TraceRecord};
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_workload::fig1;

fn scenario_pair() -> dmt_workload::ScenarioPair {
    let p = fig1::Fig1Params {
        n_clients: 5,
        requests_per_client: 3,
        n_mutexes: 4,
        ..fig1::Fig1Params::default()
    };
    fig1::scenario(&p)
}

fn run(kind: SchedulerKind, traced: bool) -> RunResult {
    let pair = scenario_pair();
    let mut cfg = EngineConfig::new(kind).with_seed(11).with_cpu_jitter(0.2);
    if traced {
        cfg = cfg.with_tracing().with_depth_sampling();
    }
    Engine::new(pair.for_kind(kind), cfg).run()
}

#[test]
fn tracing_does_not_change_any_simulated_outcome() {
    for kind in SchedulerKind::ALL {
        let plain = run(kind, false);
        let traced = run(kind, true);
        assert_eq!(
            plain.completed_requests, traced.completed_requests,
            "{kind}"
        );
        assert_eq!(plain.makespan, traced.makespan, "{kind}");
        assert_eq!(
            plain.response_times.mean(),
            traced.response_times.mean(),
            "{kind}"
        );
        for (a, b) in plain.traces.iter().zip(&traced.traces) {
            assert_eq!(a.state_hash, b.state_hash, "{kind} state diverged");
            assert_eq!(a.lock_order, b.lock_order, "{kind} grant trace diverged");
        }
        // The observer itself: off ⇒ nothing recorded; on ⇒ decisions,
        // GC legs, and depth samples all present.
        assert!(plain.trace_records.is_empty(), "{kind}");
        assert!(plain.metrics.histogram("depth.total").is_none(), "{kind}");
        let has = |f: fn(&TraceEvent) -> bool| traced.trace_records.iter().any(|r| f(&r.ev));
        assert!(
            has(|e| matches!(e, TraceEvent::Sched(_))),
            "{kind} no decisions"
        );
        assert!(
            has(|e| matches!(e, TraceEvent::GcSequenced { .. })),
            "{kind}"
        );
        assert!(
            has(|e| matches!(e, TraceEvent::RequestReplied { .. })),
            "{kind}"
        );
        assert!(has(|e| matches!(e, TraceEvent::Depth(_))), "{kind}");
        assert!(
            traced.metrics.histogram("depth.total").unwrap().count() > 0,
            "{kind}"
        );
    }
}

/// Per-replica decision streams out of a traced run (cluster-level
/// records are skipped).
fn decisions_by_replica(res: &RunResult) -> Vec<Vec<Decision>> {
    let n = res.traces.len();
    let mut per: Vec<Vec<Decision>> = vec![Vec::new(); n];
    for r in &res.trace_records {
        if let TraceEvent::Sched(d) = r.ev {
            if r.replica != TraceRecord::NO_REPLICA {
                per[r.replica as usize].push(d);
            }
        }
    }
    per
}

/// The replica-invariant projection of a concurrent scheduler's
/// decision stream: for each mutex, the order in which threads were
/// *granted*. Defer/Predict decisions are emitted at request time and
/// LSA's Announce only on the leader — both replica-local.
fn per_mutex_grants(stream: &[Decision]) -> Vec<(MutexId, Vec<ThreadId>)> {
    let mut by_mutex: Vec<(MutexId, Vec<ThreadId>)> = Vec::new();
    for d in stream {
        let (m, tid) = match *d {
            Decision::Grant { tid, mutex, .. } => (mutex, tid),
            _ => continue,
        };
        match by_mutex.iter_mut().find(|(mm, _)| *mm == m) {
            Some((_, v)) => v.push(tid),
            None => by_mutex.push((m, vec![tid])),
        }
    }
    by_mutex.sort_by_key(|(m, _)| m.index());
    by_mutex
}

#[test]
fn decision_traces_agree_across_replicas_at_the_match_level() {
    for kind in SchedulerKind::DETERMINISTIC {
        let res = run(kind, true);
        assert!(!res.deadlocked, "{kind}");
        let per = decisions_by_replica(&res);
        assert!(per.iter().all(|p| !p.is_empty()), "{kind} silent replica");
        let global = matches!(kind, SchedulerKind::Seq | SchedulerKind::Sat);
        // Admission decisions fire when requests arrive, which is
        // replica-local timing; the replica-invariant stream is the
        // grants (exactly what the checker compares on lock traces).
        let grants = |stream: &[Decision]| -> Vec<Decision> {
            stream
                .iter()
                .filter(|d| matches!(d, Decision::Grant { .. }))
                .copied()
                .collect()
        };
        for r in 1..per.len() {
            if global {
                // Single-active-thread schedulers: every grant is
                // ordered by the one execution chain — the full grant
                // sequence must match exactly.
                assert_eq!(
                    grants(&per[0]),
                    grants(&per[r]),
                    "{kind} replica {r} global grant stream diverged"
                );
            } else {
                assert_eq!(
                    per_mutex_grants(&per[0]),
                    per_mutex_grants(&per[r]),
                    "{kind} replica {r} per-mutex grant order diverged"
                );
            }
        }
    }
}

#[test]
fn chrome_trace_export_matches_golden() {
    // SEQ on a tiny workload: fully deterministic decision stream, so
    // the export is pinned byte-for-byte. Regenerate with
    // `BLESS=1 cargo test -p dmt-bench chrome_trace_export`.
    let p = fig1::Fig1Params {
        n_clients: 2,
        requests_per_client: 2,
        n_mutexes: 2,
        ..fig1::Fig1Params::default()
    };
    let pair = fig1::scenario(&p);
    let cfg = EngineConfig::new(SchedulerKind::Seq)
        .with_seed(11)
        .with_tracing()
        .with_depth_sampling();
    let res = Engine::new(pair.for_kind(SchedulerKind::Seq), cfg).run();
    assert!(!res.deadlocked);
    let got = chrome_trace_json(&res.trace_records);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_seq_fig1.json"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &got).unwrap();
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    assert_eq!(got, want, "Chrome trace drifted from the golden file");
}
