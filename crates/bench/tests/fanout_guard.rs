//! The scheduler-dispatch fan-out guard: `sched_events / events`
//! ([`dmt_replica::PerfCounters::sched_fanout`]) per scheduler, held
//! under the pins in [`dmt_bench::MAX_SCHED_FANOUT`].
//!
//! Unlike the ns/event guard next door, this ratio is a quotient of
//! deterministic counters — the same grid always yields the same value,
//! on any host, in any build mode — so it catches the *structural* half
//! of a hot-path regression: a change that grows an extra dispatch leg
//! per event (an admission round trip re-split, a control-message echo,
//! a lost fusion) moves this ratio immediately, even when wall-clock
//! noise would swallow the ns/event cost for weeks.

use dmt_bench::{engine_bench_experiment, MAX_SCHED_FANOUT};

#[test]
fn sched_fanout_stays_under_pins() {
    // One pass of the quick grid is enough: the ratio is deterministic,
    // so there is no noise to take a minimum over.
    let rows = engine_bench_experiment(&[4, 8], 2);
    assert_eq!(rows.len(), MAX_SCHED_FANOUT.len());
    for row in &rows {
        let fanout = row.perf.sched_fanout();
        let (_, pin) = MAX_SCHED_FANOUT
            .iter()
            .find(|(name, _)| *name == row.kind.name())
            .unwrap_or_else(|| panic!("{} has no fan-out pin", row.kind));
        assert!(
            fanout <= *pin,
            "{} dispatches {:.4} scheduler events per simulation event, \
             over its {pin} pin — a new dispatch leg grew on the hot path",
            row.kind,
            fanout,
        );
        // A collapsing ratio is suspicious too (events counted twice,
        // or a scheduler no longer seeing its stream); half the pin is
        // far below anything a legitimate optimisation can reach while
        // the admission/step protocol still round-trips per request.
        assert!(
            fanout > pin * 0.5,
            "{} fan-out {:.4} fell below half its {pin} pin — \
             are scheduler events still being dispatched?",
            row.kind,
            fanout,
        );
    }
}
