//! Superinstruction fusion must be observationally invisible: for the
//! same workload, an engine running the fused program (the default) and
//! one running the unfused program must produce identical traces, state
//! hashes, and metrics — on every scheduler, for both the plain and the
//! analysed (bookkeeping-injected) object variants. This is the
//! whole-engine face of the fusion-never-crosses-a-sync-boundary
//! invariant; `dmt_analysis::audit_fusion` checks the same property
//! statically, and `pool_reuse_matches_fresh_vm_traces` (dmt-lang) plays
//! the analogous role for VM recycling.

use dmt_analysis::{build_lock_table, transform};
use dmt_core::SchedulerKind;
use dmt_lang::ast::ObjectImpl;
use dmt_lang::compile_unfused;
use dmt_replica::{ClientScript, Engine, EngineConfig, RunResult, Scenario};
use dmt_workload::{fig1, openloop};

const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
    SchedulerKind::MatLL,
    SchedulerKind::Pmat,
];

/// Mirror of `dmt_workload::make_variants` with fusion switched off.
fn scenario_unfused(
    obj: &ObjectImpl,
    clients: Vec<ClientScript>,
    dummy_method: &str,
    kind: SchedulerKind,
) -> Scenario {
    let (program, table) = if kind.uses_prediction() {
        (
            compile_unfused(&transform(obj)),
            Some(build_lock_table(obj)),
        )
    } else {
        (compile_unfused(obj), None)
    };
    let dummy = program.method_by_name(dummy_method);
    let mut s = Scenario::new(program, clients);
    if let Some(t) = table {
        s = s.with_lock_table(t);
    }
    if let Some(d) = dummy {
        s = s.with_dummy_method(d);
    }
    s
}

/// Everything scheduler-visible must agree; only the interpreter's
/// internal meters (`fused_steps`) and host timings may differ.
fn assert_equivalent(kind: SchedulerKind, fused: &RunResult, plain: &RunResult) {
    assert_eq!(fused.traces, plain.traces, "{kind}: traces diverged");
    assert_eq!(
        fused.completed_requests, plain.completed_requests,
        "{kind}: completed requests diverged"
    );
    assert_eq!(fused.makespan, plain.makespan, "{kind}: makespan diverged");
    assert_eq!(
        fused.dummy_requests, plain.dummy_requests,
        "{kind}: dummy requests diverged"
    );
    assert_eq!(
        fused.ctrl_messages, plain.ctrl_messages,
        "{kind}: control traffic diverged"
    );
    assert!(!fused.deadlocked && !plain.deadlocked, "{kind}: deadlock");
    for (name, v) in &fused.metrics.counters {
        if name == "engine.wall_ns" || name == "engine.fused_steps" {
            continue;
        }
        assert_eq!(
            plain.metrics.counter(name),
            Some(*v),
            "{kind}: metric `{name}` diverged"
        );
    }
    // The fused run actually exercised superinstructions, and fusion did
    // not change how many scheduler-visible steps the VMs took.
    assert!(
        fused.metrics.counter("engine.fused_steps").unwrap_or(0) > 0,
        "{kind}: fused run executed no superinstructions"
    );
    assert_eq!(
        plain.metrics.counter("engine.fused_steps"),
        Some(0),
        "{kind}: unfused program reported fused steps"
    );
}

#[test]
fn fig1_runs_identically_with_fusion_on_and_off() {
    let p = fig1::Fig1Params::default().with_clients(6).with_seed(42);
    let pair = fig1::scenario(&p);
    let obj = fig1::build_object(&p);
    for kind in ALL_KINDS {
        let cfg = EngineConfig::new(kind).with_seed(9).with_cpu_jitter(0.05);
        let fused = Engine::new(pair.for_kind(kind), cfg.clone()).run();
        let unfused = scenario_unfused(&obj, fig1::client_scripts(&p), "noop", kind);
        let plain = Engine::new(unfused, cfg).run();
        assert_equivalent(kind, &fused, &plain);
    }
}

#[test]
fn openloop_runs_identically_with_fusion_on_and_off() {
    let p = openloop::OpenLoopParams::default()
        .with_offered_rps(400.0)
        .with_seed(5);
    let pair = openloop::scenario(&p);
    let obj = openloop::build_object(&p);
    for kind in ALL_KINDS {
        let cfg = EngineConfig::new(kind).with_seed(17).with_cpu_jitter(0.05);
        let fused = Engine::new(pair.for_kind(kind), cfg.clone()).run();
        let unfused = scenario_unfused(&obj, openloop::client_scripts(&p), "noop", kind);
        let plain = Engine::new(unfused, cfg).run();
        assert_equivalent(kind, &fused, &plain);
    }
}
