//! Partition-independence guard for the sharded engine: every sweep
//! artifact must be byte-identical whatever the intra-run shard worker
//! count, and whatever the sweep worker count — separately and
//! combined. Sweep workers parallelise across independent grid cells;
//! shard workers parallelise *inside* one cluster run; neither may leak
//! into the output bytes.

use dmt_bench::{
    fig1_experiment_with_opts, openloop_experiment_with_opts, openloop_json, shard_experiment,
    shard_json, OpenLoopGrid, ShardGrid,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SWEEP_WORKERS: [usize; 3] = [1, 2, 8];

#[test]
fn fig1_table_is_identical_for_every_shard_and_worker_count() {
    let base = fig1_experiment_with_opts(&[1, 3], 2, true, 1, 1).to_string();
    for shards in SHARD_COUNTS {
        for threads in SWEEP_WORKERS {
            let t = fig1_experiment_with_opts(&[1, 3], 2, true, threads, shards).to_string();
            assert_eq!(
                base, t,
                "fig1 diverged at shards={shards}, sweep workers={threads}"
            );
        }
    }
}

#[test]
fn openloop_artifact_is_identical_for_every_shard_and_worker_count() {
    let grid = OpenLoopGrid {
        offered_rps: vec![500.0, 8000.0],
        read_fractions: vec![0.9],
        n_clients: 3,
        requests_per_client: 4,
        extended: false,
    };
    let base = openloop_json(&grid, &openloop_experiment_with_opts(&grid, 1, 1));
    for shards in SHARD_COUNTS {
        for threads in SWEEP_WORKERS {
            let rows = openloop_experiment_with_opts(&grid, threads, shards);
            assert_eq!(
                base,
                openloop_json(&grid, &rows),
                "openloop diverged at shards={shards}, sweep workers={threads}"
            );
        }
    }
}

#[test]
fn shard_artifact_is_byte_stable_modulo_the_timing_line() {
    // A scaled-down BENCH_shard.json: rerunning the experiment — which
    // internally runs every worker count and asserts merged-result
    // identity — must reproduce the artifact exactly, except for the
    // single host-clock "timing" line.
    let grid = ShardGrid {
        n_clients: 128,
        offered_rps: 1_000.0,
        worker_counts: vec![1, 2, 4, 8],
        ..ShardGrid::quick()
    };
    let strip = |j: &str| {
        j.lines()
            .filter(|l| !l.contains("\"timing\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = shard_json(&grid, &shard_experiment(&grid));
    let b = shard_json(&grid, &shard_experiment(&grid));
    assert_eq!(strip(&a), strip(&b), "BENCH_shard.json is not byte-stable");
    // The deterministic section must really carry the content.
    assert!(a.contains("\"balance_bound\""));
    assert!(a.contains("\"routed\""));
}
