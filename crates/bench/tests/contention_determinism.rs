//! Contention-analytics regressions:
//!
//! 1. `BENCH_contention.json` is byte-identical across sweep worker
//!    counts and reruns — the artifact is pure virtual-time/integer
//!    data, so no wall clock or iteration order may leak in — and the
//!    autopilot must beat-or-match the best static scheduler on at
//!    least one open-loop cell (the headline claim of the experiment).
//! 2. The race-prediction report on the seeded AB/BA inversion is
//!    pinned byte-for-byte (golden file) and must contain the A⇄B
//!    cycle; the clean Figure-1 trace must report zero findings.
//! 3. The tracer's drop counter under a tight buffer cap is itself
//!    deterministic: same run, same cap ⇒ same `trace.dropped`.

use dmt_analysis::predict_races;
use dmt_bench::{contention_experiment_with_threads, contention_json, ContentionGrid};
use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_workload::fig1;
use dmt_workload::inversion::{self, InversionParams};

#[test]
fn contention_json_is_byte_identical_and_autopilot_matches_somewhere() {
    let g = ContentionGrid::quick();
    let reference_report = contention_experiment_with_threads(&g, 1);
    let reference = contention_json(&g, &reference_report);
    for threads in [2, 8] {
        let j = contention_json(&g, &contention_experiment_with_threads(&g, threads));
        assert_eq!(reference, j, "{threads}-worker sweep diverged from serial");
    }
    let again = contention_json(&g, &contention_experiment_with_threads(&g, 1));
    assert_eq!(reference, again, "rerun diverged");
    // The acceptance claim: the probe-driven pick beats or matches the
    // best static scheduler on at least one grid cell.
    assert!(
        reference_report.autopilot.iter().any(|r| r.matched),
        "autopilot matched nowhere: {:?}",
        reference_report
            .autopilot
            .iter()
            .map(|r| (r.offered_rps, r.recommended, r.best_kind))
            .collect::<Vec<_>>()
    );
}

fn traced_seq(pair: &dmt_workload::ScenarioPair, seed: u64) -> RunResult {
    let cfg = EngineConfig::new(SchedulerKind::Seq)
        .with_seed(seed)
        .with_cpu_jitter(0.05)
        .with_tracing();
    let res = Engine::new(pair.for_kind(SchedulerKind::Seq), cfg).run();
    assert!(!res.deadlocked);
    res
}

#[test]
fn race_prediction_report_matches_golden_and_clean_run_is_silent() {
    // The positive control: the seeded inversion, traced under SEQ
    // (benign serial execution), must yield the A⇄B cycle. Regenerate
    // with `BLESS=1 cargo test -p dmt-bench race_prediction_report`.
    let pair = inversion::scenario(&InversionParams::default());
    let res = traced_seq(&pair, 5);
    let report = predict_races(&res.trace_records, 0);
    assert!(report.findings() > 0, "inversion cycle not flagged");
    let got = report.render();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/racepred_inversion.txt"
    );
    if std::env::var("BLESS").is_ok() {
        std::fs::write(path, &got).unwrap();
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    assert_eq!(got, want, "race-prediction report drifted from golden");

    // The negative control: flat locking (fig1 never nests monitors)
    // must produce no lock-order edges and no findings.
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        ..fig1::Fig1Params::default()
    };
    let clean = predict_races(&traced_seq(&fig1::scenario(&p), 7).trace_records, 0);
    assert_eq!(clean.findings(), 0, "false positive on clean fig1");
    assert!(clean.edges.is_empty());
    assert!(!clean.sections.is_empty(), "no critical sections folded");
}

#[test]
fn trace_drop_counter_is_deterministic_under_a_tight_cap() {
    let p = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 2,
        ..fig1::Fig1Params::default()
    };
    let run = || {
        let pair = fig1::scenario(&p);
        let cfg = EngineConfig::new(SchedulerKind::Mat)
            .with_seed(7)
            .with_trace_cap(64);
        Engine::new(pair.for_kind(SchedulerKind::Mat), cfg).run()
    };
    let a = run();
    let b = run();
    let dropped = |r: &RunResult| r.metrics.counter("trace.dropped").unwrap_or(0);
    let recorded = |r: &RunResult| r.metrics.counter("trace.recorded").unwrap_or(0);
    assert_eq!(recorded(&a), 64, "cap not honoured");
    assert!(dropped(&a) > 0, "cap too loose to exercise dropping");
    assert_eq!(dropped(&a), dropped(&b), "drop counter not deterministic");
    assert_eq!(recorded(&a), recorded(&b));
    assert_eq!(a.trace_records.len(), 64);
}
