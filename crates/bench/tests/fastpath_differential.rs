//! The fused fast path must be observationally invisible: for every
//! scheduler and workload, the default engine (front-slot queue fast
//! path + same-instant grant fusion in the step loop) and the reference
//! engine ([`EngineConfig::without_fastpath`]: every event through the
//! slab calendar queue, every grant through the `process` drain) must
//! produce identical action traces, state hashes, grant streams,
//! latencies, and counters. The only sanctioned differences are host
//! wall-clock and the `fused_grants` meter itself — which this test
//! also pins: the fused run must actually fuse (the fast path cannot
//! silently disable itself) and the reference run must never fuse.
//!
//! Three workload shapes on purpose: fig1 (closed-loop, moderately
//! contended — the sweep `BENCH_engine.json` prices), open-loop
//! (admission-heavy, read-mostly), and the AB/BA inversion (tight
//! nested locking, where the step loop re-enters fusion most often).

use dmt_core::SchedulerKind;
use dmt_replica::{Engine, EngineConfig, RunResult};
use dmt_workload::{fig1, inversion, openloop};

const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::Seq,
    SchedulerKind::Sat,
    SchedulerKind::Lsa,
    SchedulerKind::Pds,
    SchedulerKind::Mat,
    SchedulerKind::MatLL,
    SchedulerKind::Pmat,
];

/// Runs `scenario` fused and reference under `kind`, asserts every
/// observable is identical, and returns the fused run's fused-grant
/// count so callers can pin that fusion actually fired.
fn assert_differential(
    kind: SchedulerKind,
    workload: &str,
    pair: &dmt_workload::ScenarioPair,
    cfg: EngineConfig,
) -> u64 {
    let fused = Engine::new(pair.for_kind(kind), cfg.clone()).run();
    let reference = Engine::new(pair.for_kind(kind), cfg.without_fastpath()).run();
    let ctx = format!("{kind}/{workload}");

    // Grant streams + state: per-replica lock order and state hash
    // (ExecutionTrace compares both, plus finished-thread counts).
    assert_eq!(fused.traces, reference.traces, "{ctx}: traces diverged");
    // Client-observable outcomes.
    assert_eq!(
        fused.latencies, reference.latencies,
        "{ctx}: request latencies diverged"
    );
    assert_eq!(
        fused.completed_requests, reference.completed_requests,
        "{ctx}: completed requests diverged"
    );
    assert_eq!(
        fused.makespan, reference.makespan,
        "{ctx}: makespan diverged"
    );
    assert_eq!(
        fused.dummy_requests, reference.dummy_requests,
        "{ctx}: dummy traffic diverged"
    );
    assert_eq!(
        fused.ctrl_messages, reference.ctrl_messages,
        "{ctx}: control traffic diverged"
    );
    // The AB/BA inversion genuinely deadlocks under the concurrent
    // schedulers (that is what the workload seeds); the differential
    // property is that both paths reach the *same* deadlock — same
    // verdict, same stuck threads — not that none occurs.
    assert_eq!(
        fused.deadlocked, reference.deadlocked,
        "{ctx}: deadlock verdict diverged"
    );
    assert_eq!(
        fused.stuck_threads, reference.stuck_threads,
        "{ctx}: stuck threads diverged"
    );
    // Every exported metric except host wall-clock.
    for (name, v) in &fused.metrics.counters {
        if name == "engine.wall_ns" {
            continue;
        }
        assert_eq!(
            reference.metrics.counter(name),
            Some(*v),
            "{ctx}: metric `{name}` diverged"
        );
    }
    // The host-cost meters the fusion is defined to preserve: a fused
    // ring step is still one event and one batched step.
    let meters = |r: &RunResult| {
        (
            r.perf.events,
            r.perf.sched_events,
            r.perf.sched_actions,
            r.perf.vm_steps,
            r.perf.batched_steps,
        )
    };
    assert_eq!(
        meters(&fused),
        meters(&reference),
        "{ctx}: perf counters diverged"
    );
    assert_eq!(
        reference.perf.fused_grants, 0,
        "{ctx}: reference path reported fused grants"
    );
    fused.perf.fused_grants
}

#[test]
fn fused_and_reference_paths_are_byte_identical() {
    let fig1_pair = fig1::scenario(&fig1::Fig1Params::default().with_clients(6).with_seed(42));
    let open_pair = openloop::scenario(
        &openloop::OpenLoopParams::default()
            .with_offered_rps(400.0)
            .with_seed(5),
    );
    let inv_pair = inversion::scenario(&inversion::InversionParams::default());

    for kind in ALL_KINDS {
        let cfg = EngineConfig::new(kind).with_seed(9).with_cpu_jitter(0.05);
        let mut fused_grants = 0;
        fused_grants += assert_differential(kind, "fig1", &fig1_pair, cfg.clone());
        fused_grants += assert_differential(kind, "openloop", &open_pair, cfg.clone());
        fused_grants += assert_differential(kind, "inversion", &inv_pair, cfg);
        // The fast path must have fired somewhere in the suite for every
        // scheduler — a fusion that never triggers is a fast path in
        // name only, and this assertion is what distinguishes this test
        // from a trivially-passing copy of the run.
        assert!(
            fused_grants > 0,
            "{kind}: no grant was ever fused across fig1/openloop/inversion"
        );
    }
}
