//! # dmt-rt — deterministic scheduling of real OS threads
//!
//! The simulation engine (`dmt-replica`) proves the algorithms; this
//! crate shows them doing their day job: arbitrating *actual* threads.
//! The decision modules from `dmt-core` are plain event-driven state
//! machines, so the same `Box<dyn Scheduler>` that drove virtual threads
//! can gate `std::thread`s — each synchronisation call becomes a
//! scheduler event under one global runtime lock, and a thread proceeds
//! only when the scheduler's `Resume` lands on its private permit
//! (a `std::sync` `Mutex`/`Condvar` pair).
//!
//! The headline property carries over: with a deterministic scheduler,
//! the monitor-grant order is a pure function of the admission order —
//! independent of OS preemption, sleep jitter, or core count. The tests
//! inject random delays before every lock request and assert the grant
//! log never changes; under FREE it visibly does.

pub mod runtime;

pub use runtime::{DetHandle, DetRuntime, RtReport};
