//! The real-thread deterministic runtime.

use dmt_core::{
    make_scheduler, ReplicaId, SchedAction, SchedConfig, SchedEvent, SchedOutput, Scheduler,
    SchedulerKind, ThreadId,
};
use dmt_lang::{MethodIdx, MutexId, SyncId};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A per-thread parking spot: `true` = permitted to proceed.
struct Permit {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Permit {
    fn new() -> Self {
        Permit {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn give(&self) {
        let mut f = self.flag.lock().unwrap();
        *f = true;
        self.cv.notify_one();
    }

    fn take(&self) {
        let mut f = self.flag.lock().unwrap();
        while !*f {
            f = self.cv.wait(f).unwrap();
        }
        *f = false;
    }
}

struct RtState {
    sched: Box<dyn Scheduler>,
    grant_log: Vec<(ThreadId, MutexId)>,
    /// Last blocking kind per thread, to label grants like the engine.
    blocked_on: dmt_core::SlotMap<MutexId>,
    /// Reused action bundle: one warm dispatch allocates nothing.
    scratch: SchedOutput,
}

struct Inner {
    state: Mutex<RtState>,
    permits: Vec<Arc<Permit>>,
    /// Replicated state stand-in: cells the bodies mutate while holding
    /// the matching deterministic monitor. Atomics keep the accesses
    /// race-free at the language level; the *ordering* discipline comes
    /// from the scheduler.
    cells: Vec<AtomicI64>,
}

impl Inner {
    fn lock_state(&self) -> MutexGuard<'_, RtState> {
        self.state.lock().unwrap()
    }

    /// Feeds one event and applies the resulting actions (permits).
    fn dispatch(&self, ev: SchedEvent) {
        let mut st = self.lock_state();
        let mut out = std::mem::take(&mut st.scratch);
        out.clear();
        st.sched.on_event(&ev, &mut out);
        for a in out.actions.drain(..) {
            match a {
                SchedAction::Admit(tid) | SchedAction::Resume(tid) => {
                    if let Some(m) = st.blocked_on.remove(tid.index()) {
                        st.grant_log.push((tid, m));
                    }
                    self.permits[tid.index()].give();
                }
                SchedAction::Broadcast(_) => {
                    // Single-process runtime: no peers to inform.
                }
                SchedAction::RequestDummy => {
                    // No group communication here; the runtime is sized so
                    // PDS pools fill from real threads (callers pass
                    // batch_size <= n_threads).
                }
            }
        }
        st.scratch = out;
    }

    fn mark_blocked(&self, tid: ThreadId, m: MutexId) {
        self.lock_state().blocked_on.insert(tid.index(), m);
    }
}

/// What one deterministic run produced.
#[derive(Debug)]
pub struct RtReport {
    /// Monitor grants in the order the scheduler issued them.
    pub grant_log: Vec<(ThreadId, MutexId)>,
    /// Final cell values.
    pub cells: Vec<i64>,
}

/// The handle a thread body uses for all synchronisation.
pub struct DetHandle<'a> {
    inner: &'a Inner,
    tid: ThreadId,
    /// Sequential per-thread syncid source (the runtime has no static
    /// analysis; blocks are numbered by use).
    next_sync: std::cell::Cell<u32>,
}

impl DetHandle<'_> {
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    fn fresh_sync(&self) -> SyncId {
        let v = self.next_sync.get();
        self.next_sync.set(v + 1);
        SyncId::new(self.tid.0 * 10_000 + v)
    }

    /// Enters the deterministic monitor `m`, runs `f`, leaves. The
    /// closure gets read/write access to the cells through the handle.
    pub fn sync<R>(&self, m: MutexId, f: impl FnOnce() -> R) -> R {
        let sync_id = self.fresh_sync();
        self.inner.mark_blocked(self.tid, m);
        self.inner.dispatch(SchedEvent::LockRequested {
            tid: self.tid,
            sync_id,
            mutex: m,
        });
        self.inner.permits[self.tid.index()].take();
        let r = f();
        self.inner.dispatch(SchedEvent::Unlocked {
            tid: self.tid,
            sync_id,
            mutex: m,
        });
        r
    }

    /// `m.wait()` — must be called inside [`DetHandle::sync`] on `m`.
    pub fn wait(&self, m: MutexId) {
        self.inner.mark_blocked(self.tid, m);
        self.inner.dispatch(SchedEvent::WaitCalled {
            tid: self.tid,
            mutex: m,
        });
        self.inner.permits[self.tid.index()].take();
    }

    /// `m.notifyAll()` — must be called inside [`DetHandle::sync`] on `m`.
    pub fn notify_all(&self, m: MutexId) {
        self.inner.dispatch(SchedEvent::NotifyCalled {
            tid: self.tid,
            mutex: m,
            all: true,
        });
    }

    /// A nested invocation of `dur` (the thread leaves the scheduled set,
    /// performs the external call, and re-enters when the scheduler
    /// resumes it).
    pub fn nested(&self, dur: Duration) {
        self.inner
            .dispatch(SchedEvent::NestedStarted { tid: self.tid });
        std::thread::sleep(dur);
        self.inner.lock_state().blocked_on.remove(self.tid.index());
        self.inner
            .dispatch(SchedEvent::NestedCompleted { tid: self.tid });
        self.inner.permits[self.tid.index()].take();
    }

    pub fn cell(&self, i: usize) -> i64 {
        self.inner.cells[i].load(Ordering::SeqCst)
    }

    pub fn set_cell(&self, i: usize, v: i64) {
        self.inner.cells[i].store(v, Ordering::SeqCst);
    }
}

/// Runs `n_threads` real OS threads under a deterministic scheduler.
pub struct DetRuntime {
    kind: SchedulerKind,
    n_cells: usize,
    pds_batch: usize,
    hints: dmt_core::ContentionHints,
}

impl DetRuntime {
    pub fn new(kind: SchedulerKind) -> Self {
        DetRuntime {
            kind,
            n_cells: 16,
            pds_batch: 2,
            hints: dmt_core::ContentionHints::new(),
        }
    }

    pub fn with_cells(mut self, n: usize) -> Self {
        self.n_cells = n;
        self
    }

    /// Installs observed-contention feedback (hot-mutex serialisation
    /// for PMAT) — the same hints a `dmt-obs` contention profile derives
    /// for the simulated engine apply to real-thread runs.
    pub fn with_hints(mut self, hints: dmt_core::ContentionHints) -> Self {
        self.hints = hints;
        self
    }

    /// Spawns `n_threads` threads running `body(thread_index, handle)`.
    /// Threads are admitted in index order (the stand-in for the total
    /// order); the call returns when all bodies finished.
    pub fn run<F>(&self, n_threads: usize, body: F) -> RtReport
    where
        F: Fn(usize, &DetHandle<'_>) + Sync,
    {
        let cfg = SchedConfig::new(self.kind, ReplicaId::new(0))
            .with_pds(dmt_core::PdsConfig {
                batch_size: self.pds_batch.min(n_threads.max(1)),
                locks_per_round: 1,
            })
            .with_hints(self.hints.clone());
        let inner = Inner {
            state: Mutex::new(RtState {
                sched: make_scheduler(&cfg),
                grant_log: Vec::new(),
                blocked_on: dmt_core::SlotMap::new(),
                scratch: SchedOutput::new(),
            }),
            permits: (0..n_threads).map(|_| Arc::new(Permit::new())).collect(),
            cells: (0..self.n_cells).map(|_| AtomicI64::new(0)).collect(),
        };

        // Admission in index order — the total order every deterministic
        // algorithm keys off.
        for t in 0..n_threads {
            inner.dispatch(SchedEvent::RequestArrived {
                tid: ThreadId::new(t as u32),
                method: MethodIdx::new(0),
                request_seq: t as u64,
                dummy: false,
            });
        }

        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let inner = &inner;
                let body = &body;
                scope.spawn(move || {
                    let tid = ThreadId::new(t as u32);
                    inner.permits[t].take(); // wait for Admit
                    let handle = DetHandle {
                        inner,
                        tid,
                        next_sync: std::cell::Cell::new(0),
                    };
                    body(t, &handle);
                    inner.dispatch(SchedEvent::ThreadFinished { tid });
                });
            }
        });

        let st = inner.state.into_inner().unwrap();
        RtReport {
            grant_log: st.grant_log,
            cells: inner
                .cells
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_sim::SplitMix64;

    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }

    /// Random OS-level delays: the noise determinism must shrug off.
    fn jitter(rng_seed: u64, t: usize, step: usize) {
        let mut r = SplitMix64::new(rng_seed ^ (t as u64) << 16 ^ step as u64);
        std::thread::sleep(Duration::from_micros(r.next_below(300)));
    }

    fn counter_run(kind: SchedulerKind, noise_seed: u64) -> RtReport {
        DetRuntime::new(kind).with_cells(1).run(4, |t, h| {
            for step in 0..3 {
                jitter(noise_seed, t, step);
                h.sync(m(0), || {
                    // cell = 2*cell + (t+1): order-sensitive on purpose.
                    let v = h.cell(0);
                    h.set_cell(0, 2 * v + t as i64 + 1);
                });
            }
        })
    }

    #[test]
    fn deterministic_schedulers_ignore_os_jitter() {
        for kind in [
            SchedulerKind::Seq,
            SchedulerKind::Sat,
            SchedulerKind::Mat,
            SchedulerKind::MatLL,
            SchedulerKind::Pds,
            SchedulerKind::Pmat,
        ] {
            let base = counter_run(kind, 1);
            assert_eq!(base.grant_log.len(), 12, "{kind}");
            for noise in 2..6u64 {
                let r = counter_run(kind, noise);
                assert_eq!(
                    r.grant_log, base.grant_log,
                    "{kind} grant order changed under noise"
                );
                assert_eq!(r.cells, base.cells, "{kind} state changed under noise");
            }
        }
    }

    #[test]
    fn free_scheduler_is_visibly_nondeterministic() {
        // Not asserted per-run (FREE may get lucky); across many noisy
        // runs at least two different grant orders must appear.
        let mut orders = std::collections::HashSet::new();
        for noise in 0..12u64 {
            let r = counter_run(SchedulerKind::Free, noise);
            orders.insert(format!("{:?}", r.grant_log));
        }
        assert!(
            orders.len() > 1,
            "FREE produced one order across 12 noisy runs — suspicious"
        );
    }

    #[test]
    fn disjoint_mutexes_run_concurrently_under_pmat_order() {
        // Threads on distinct mutexes: grant log per mutex is one thread's
        // grants; totals must match.
        let rep = DetRuntime::new(SchedulerKind::Free)
            .with_cells(4)
            .run(4, |t, h| {
                for _ in 0..5 {
                    h.sync(m(t as u32), || {
                        h.set_cell(t, h.cell(t) + 1);
                    });
                }
            });
        assert_eq!(rep.cells, vec![5, 5, 5, 5]);
        assert_eq!(rep.grant_log.len(), 20);
    }

    #[test]
    fn condition_variables_handoff_real_threads() {
        for kind in [SchedulerKind::Sat, SchedulerKind::Mat, SchedulerKind::Pmat] {
            // Thread 0 consumes, thread 1 produces.
            let rep = DetRuntime::new(kind).with_cells(1).run(2, |t, h| {
                if t == 0 {
                    h.sync(m(7), || {
                        while h.cell(0) == 0 {
                            h.wait(m(7));
                        }
                        h.set_cell(0, h.cell(0) - 1);
                    });
                } else {
                    std::thread::sleep(Duration::from_millis(2));
                    h.sync(m(7), || {
                        h.set_cell(0, h.cell(0) + 1);
                        h.notify_all(m(7));
                    });
                }
            });
            assert_eq!(rep.cells[0], 0, "{kind}");
        }
    }

    #[test]
    fn nested_invocations_release_the_schedule() {
        // Under SAT the nested call must let the other thread run.
        let rep = DetRuntime::new(SchedulerKind::Sat)
            .with_cells(2)
            .run(2, |t, h| {
                if t == 0 {
                    h.nested(Duration::from_millis(5));
                    h.sync(m(1), || h.set_cell(0, 1));
                } else {
                    h.sync(m(1), || h.set_cell(1, 1));
                }
            });
        assert_eq!(rep.cells, vec![1, 1]);
    }

    #[test]
    fn hot_hints_serialise_real_threads_in_age_order_under_pmat() {
        // All threads hammer one hot mutex: hinted PMAT must grant it
        // strictly in thread (age) order, every run, despite real-OS
        // scheduling noise.
        let mut hints = dmt_core::ContentionHints::new();
        hints.mark_hot(m(3));
        for _ in 0..4 {
            let rep = DetRuntime::new(SchedulerKind::Pmat)
                .with_hints(hints.clone())
                .with_cells(1)
                .run(3, |t, h| {
                    h.sync(m(3), || {
                        h.set_cell(0, 10 * h.cell(0) + t as i64 + 1);
                    });
                });
            assert_eq!(rep.cells[0], 123, "hot mutex must flow in age order");
        }
    }

    #[test]
    fn seq_runs_threads_strictly_in_order() {
        let rep = DetRuntime::new(SchedulerKind::Seq)
            .with_cells(1)
            .run(3, |t, h| {
                h.sync(m(0), || {
                    h.set_cell(0, 10 * h.cell(0) + t as i64 + 1);
                });
            });
        // SEQ: thread 0, then 1, then 2 → digits 1,2,3.
        assert_eq!(rep.cells[0], 123);
        let tids: Vec<u32> = rep.grant_log.iter().map(|&(t, _)| t.0).collect();
        assert_eq!(tids, vec![0, 1, 2]);
    }
}
