//! A logical-step harness: drives real `dmt-lang` programs through a
//! scheduler without virtual time.
//!
//! Used by unit, integration and property tests of the decision modules
//! (the full virtual-time, multi-replica engine lives in `dmt-replica`).
//! Execution is purely logical: runnable threads are stepped in a
//! deterministic FIFO discipline, compute actions take zero steps, and
//! external events (request arrivals beyond the initial burst, nested
//! replies) are delivered one at a time whenever the replica is locally
//! quiescent — a simple stand-in for the totally ordered message stream.

use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::SchedOutput;
use crate::scheduler::Scheduler;
use crate::slot::SlotMap;
use dmt_lang::{
    Action, CompiledObject, MethodIdx, MutexId, ObjectState, RequestArgs, StepOutcome, ThreadVm,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a thread is currently not stepping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocked {
    /// Awaiting `Admit`.
    Admission,
    /// Awaiting a monitor grant for `MutexId`.
    Lock(MutexId),
    /// In a wait set (re-acquisition of `MutexId` pending).
    Wait(MutexId),
    /// Awaiting its nested-invocation reply.
    Nested,
}

/// Outcome of a harness run.
#[derive(Debug)]
pub struct HarnessResult {
    pub state: ObjectState,
    /// Monitor acquisition order: every grant (fresh or re-acquisition)
    /// in the order the scheduler issued them.
    pub lock_trace: Vec<(ThreadId, MutexId)>,
    /// The delivered request stream in order (method, args, dummy) —
    /// thread `n` ran entry `n`. This is the "request log" a passive
    /// primary would persist.
    pub request_log: Vec<(MethodIdx, RequestArgs, bool)>,
    pub finished_threads: usize,
    pub dummy_threads: usize,
    /// True when unfinished threads remained with nothing deliverable —
    /// a deadlock (e.g. `wait` under SEQ).
    pub deadlocked: bool,
}

struct PendingRequest {
    method: MethodIdx,
    args: RequestArgs,
    dummy: bool,
}

/// Drives one object replica under one scheduler, in logical steps.
pub struct Harness {
    program: Arc<CompiledObject>,
    state: ObjectState,
    scheduler: Box<dyn Scheduler>,
    /// Method used for PDS dummy requests (no-op, zero-arg).
    dummy_method: Option<MethodIdx>,
    vms: SlotMap<ThreadVm>,
    request_info: SlotMap<PendingRequest>,
    blocked: SlotMap<Blocked>,
    runnable: VecDeque<ThreadId>,
    /// Submitted but undelivered requests (the client queue).
    inbox: VecDeque<PendingRequest>,
    /// Nested invocations awaiting replies (FIFO = total order).
    nested: VecDeque<ThreadId>,
    next_tid: u32,
    next_seq: u64,
    lock_trace: Vec<(ThreadId, MutexId)>,
    request_log: Vec<(MethodIdx, RequestArgs, bool)>,
    finished: usize,
    dummies: usize,
    /// Reused action bundle: warm dispatches allocate nothing.
    scratch: SchedOutput,
}

impl Harness {
    pub fn new(
        program: Arc<CompiledObject>,
        this_mutex: MutexId,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        let state = ObjectState::for_object(&program, this_mutex);
        Harness {
            program,
            state,
            scheduler,
            dummy_method: None,
            vms: SlotMap::new(),
            request_info: SlotMap::new(),
            blocked: SlotMap::new(),
            runnable: VecDeque::new(),
            inbox: VecDeque::new(),
            nested: VecDeque::new(),
            next_tid: 0,
            next_seq: 0,
            lock_trace: Vec::new(),
            request_log: Vec::new(),
            finished: 0,
            dummies: 0,
            scratch: SchedOutput::new(),
        }
    }

    /// Declares the zero-arg no-op method PDS dummies should run.
    pub fn with_dummy_method(mut self, m: MethodIdx) -> Self {
        assert_eq!(
            self.program.methods[m.index()].arity,
            0,
            "dummy method must be zero-arg"
        );
        self.dummy_method = Some(m);
        self
    }

    /// Queues a client request (delivered in submission order).
    pub fn submit(&mut self, method: MethodIdx, args: RequestArgs) {
        self.inbox.push_back(PendingRequest {
            method,
            args,
            dummy: false,
        });
    }

    pub fn submit_by_name(&mut self, name: &str, args: RequestArgs) {
        let m = self
            .program
            .method_by_name(name)
            .unwrap_or_else(|| panic!("no method named {name}"));
        self.submit(m, args);
    }

    /// Runs to completion (or deadlock) and reports. Panics after an
    /// implausible number of deliveries — a livelocked scheduler (e.g. an
    /// endless dummy loop) should fail loudly, not hang the suite.
    pub fn run(mut self) -> HarnessResult {
        let mut deliveries: u64 = 0;
        let delivery_cap = 10_000 + 1_000 * (self.next_tid as u64 + self.inbox.len() as u64 + 10);
        loop {
            deliveries += 1;
            assert!(
                deliveries < delivery_cap,
                "livelock: {} deliveries under {:?} (finished {}/{}, inbox {}, nested {})",
                deliveries,
                self.scheduler.kind(),
                self.finished,
                self.next_tid,
                self.inbox.len(),
                self.nested.len(),
            );
            while let Some(tid) = self.runnable.pop_front() {
                self.step_thread(tid);
            }
            // Locally quiescent: deliver the next external event.
            if let Some(req) = self.inbox.pop_front() {
                self.deliver_request(req);
                continue;
            }
            if let Some(tid) = self.nested.pop_front() {
                self.dispatch(SchedEvent::NestedCompleted { tid });
                continue;
            }
            break;
        }
        let deadlocked = self.vms.len() != self.finished || !self.request_info.is_empty();
        HarnessResult {
            state: self.state,
            lock_trace: self.lock_trace,
            request_log: self.request_log,
            finished_threads: self.finished,
            dummy_threads: self.dummies,
            deadlocked,
        }
    }

    fn deliver_request(&mut self, req: PendingRequest) {
        let tid = ThreadId::new(self.next_tid);
        self.next_tid += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let method = req.method;
        let dummy = req.dummy;
        if dummy {
            self.dummies += 1;
        }
        self.request_log.push((method, req.args.clone(), dummy));
        self.request_info.insert(tid.index(), req);
        self.blocked.insert(tid.index(), Blocked::Admission);
        self.dispatch(SchedEvent::RequestArrived {
            tid,
            method,
            request_seq: seq,
            dummy,
        });
    }

    /// Feeds one event to the scheduler and applies its actions.
    fn dispatch(&mut self, ev: SchedEvent) {
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        self.scheduler.on_event(&ev, &mut actions);
        for a in actions.actions.drain(..) {
            match a {
                SchedAction::Admit(tid) => {
                    let req = self
                        .request_info
                        .remove(tid.index())
                        .expect("admit for unknown request");
                    let was = self.blocked.remove(tid.index());
                    debug_assert_eq!(was, Some(Blocked::Admission));
                    let vm = ThreadVm::new(self.program.clone(), req.method, req.args);
                    self.vms.insert(tid.index(), vm);
                    self.runnable.push_back(tid);
                }
                SchedAction::Resume(tid) => {
                    match self.blocked.remove(tid.index()) {
                        Some(Blocked::Lock(m)) | Some(Blocked::Wait(m)) => {
                            self.lock_trace.push((tid, m));
                        }
                        Some(Blocked::Nested) => {}
                        Some(Blocked::Admission) => panic!("Resume for unadmitted {tid}"),
                        None => panic!("Resume for running thread {tid}"),
                    }
                    self.runnable.push_back(tid);
                }
                SchedAction::Broadcast(_) => {
                    // Single-replica harness: the leader's own decisions
                    // need no echo (the engine filters self-deliveries).
                }
                SchedAction::RequestDummy => {
                    let method = self
                        .dummy_method
                        .expect("scheduler requested a dummy but no dummy method configured");
                    self.inbox.push_back(PendingRequest {
                        method,
                        args: RequestArgs::empty(),
                        dummy: true,
                    });
                }
            }
        }
        self.scratch = actions;
    }

    /// Steps `tid` until it blocks or finishes.
    fn step_thread(&mut self, tid: ThreadId) {
        loop {
            if self.blocked.contains(tid.index()) {
                return; // blocked by the event just dispatched
            }
            let vm = self
                .vms
                .get_mut(tid.index())
                .expect("runnable thread has a VM");
            match vm.step(&mut self.state) {
                StepOutcome::Finished => {
                    self.finished += 1;
                    self.dispatch(SchedEvent::ThreadFinished { tid });
                    return;
                }
                // The harness drives hand-built programs; a malformed one
                // is a test bug, so fail loudly (the replica engine, which
                // runs client-supplied scenarios, parks the thread
                // instead).
                StepOutcome::Faulted(f) => panic!("{tid} hit interpreter fault: {f}"),
                StepOutcome::Action(action) => match action {
                    Action::Compute { .. } => {
                        // Zero logical cost.
                    }
                    Action::Lock { sync_id, mutex } => {
                        self.blocked.insert(tid.index(), Blocked::Lock(mutex));
                        self.dispatch(SchedEvent::LockRequested {
                            tid,
                            sync_id,
                            mutex,
                        });
                        // If granted synchronously, the Resume already
                        // removed the block marker and re-queued the
                        // thread; avoid double-queueing by returning.
                        if !self.blocked.contains(tid.index()) {
                            self.dequeue_duplicate(tid);
                            continue;
                        }
                        return;
                    }
                    Action::Unlock { sync_id, mutex } => {
                        self.dispatch(SchedEvent::Unlocked {
                            tid,
                            sync_id,
                            mutex,
                        });
                    }
                    Action::Wait { mutex } => {
                        assert!(
                            self.scheduler.sync_core().holds(tid, mutex),
                            "{tid} called wait without holding {mutex}"
                        );
                        self.blocked.insert(tid.index(), Blocked::Wait(mutex));
                        self.dispatch(SchedEvent::WaitCalled { tid, mutex });
                        if !self.blocked.contains(tid.index()) {
                            self.dequeue_duplicate(tid);
                            continue;
                        }
                        return;
                    }
                    Action::Notify { mutex, all } => {
                        assert!(
                            self.scheduler.sync_core().holds(tid, mutex),
                            "{tid} called notify without holding {mutex}"
                        );
                        self.dispatch(SchedEvent::NotifyCalled { tid, mutex, all });
                    }
                    Action::Nested { .. } => {
                        self.blocked.insert(tid.index(), Blocked::Nested);
                        self.nested.push_back(tid);
                        self.dispatch(SchedEvent::NestedStarted { tid });
                        if !self.blocked.contains(tid.index()) {
                            self.dequeue_duplicate(tid);
                            continue;
                        }
                        return;
                    }
                    Action::LockInfo { sync_id, mutex } => {
                        self.dispatch(SchedEvent::LockInfo {
                            tid,
                            sync_id,
                            mutex,
                        });
                    }
                    Action::Ignore { sync_id } => {
                        self.dispatch(SchedEvent::SyncIgnored { tid, sync_id });
                    }
                },
            }
        }
    }

    /// A synchronous Resume re-queued a thread that is already being
    /// stepped; drop the duplicate queue entry.
    fn dequeue_duplicate(&mut self, tid: ThreadId) {
        if let Some(pos) = self.runnable.iter().position(|&t| t == tid) {
            self.runnable.remove(pos);
        }
    }
}

/// Runs a set of independent harnesses — one scheduler instance each,
/// one object-space partition each — on up to `workers` scoped threads,
/// returning results in partition order. The worker count is pure
/// parallelism: each [`Harness::run`] is a closed deterministic
/// computation, and results are slotted by partition index, so the
/// output is byte-identical for any `workers` value. This is the
/// logical-step analogue of the virtual-time shard coordinator in
/// dmt-replica.
pub fn run_partitioned(shards: Vec<Harness>, workers: usize) -> Vec<HarnessResult> {
    let n = shards.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return shards.into_iter().map(Harness::run).collect();
    }
    let k = n.div_ceil(workers);
    let mut chunks: Vec<Vec<Harness>> = Vec::new();
    let mut it = shards.into_iter();
    loop {
        let chunk: Vec<Harness> = it.by_ref().take(k).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut results = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(Harness::run).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.extend(h.join().expect("harness shard worker panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;
    use crate::scheduler::{make_scheduler, SchedConfig, SchedulerKind};
    use dmt_lang::ast::{CondExpr, IntExpr, MutexExpr};
    use dmt_lang::{compile, ObjectBuilder, Value};

    /// Counter object: `inc(delta)` adds under `this`; `noop()` for dummies.
    fn counter() -> Arc<CompiledObject> {
        let mut ob = ObjectBuilder::new("Counter");
        let c = ob.cell();
        let mut m = ob.method("inc", 1);
        m.sync(MutexExpr::This, |b| {
            b.update(c, IntExpr::Arg(0));
        });
        m.done();
        let noop = ob.method("noop", 0);
        noop.done();
        compile::compile(&ob.build())
    }

    fn run_counter(kind: SchedulerKind, n: usize) -> HarnessResult {
        let program = counter();
        let cfg = SchedConfig::new(kind, ReplicaId::new(0));
        let mut h = Harness::new(program.clone(), MutexId::new(0), make_scheduler(&cfg))
            .with_dummy_method(program.method_by_name("noop").unwrap());
        for i in 0..n {
            h.submit_by_name("inc", RequestArgs::new(vec![Value::Int(i as i64 + 1)]));
        }
        h.run()
    }

    #[test]
    fn every_scheduler_completes_the_counter_workload() {
        for kind in SchedulerKind::ALL {
            let res = run_counter(kind, 10);
            assert!(!res.deadlocked, "{kind} deadlocked");
            assert!(
                res.finished_threads >= 10,
                "{kind} finished {}",
                res.finished_threads
            );
            // Sum 1..=10 regardless of scheduler.
            assert_eq!(res.state.cells()[0], 55, "{kind} corrupted state");
            // Every real thread took exactly one lock.
            let real_locks = res.lock_trace.len();
            assert_eq!(real_locks, 10, "{kind} lock count {real_locks}");
        }
    }

    #[test]
    fn partitioned_dispatch_is_worker_count_independent() {
        // One scheduler instance per partition, any worker count →
        // identical per-partition results in partition order.
        let build = || -> Vec<Harness> {
            (0..5usize)
                .map(|p| {
                    let program = counter();
                    let cfg = SchedConfig::new(SchedulerKind::Mat, ReplicaId::new(0));
                    let mut h =
                        Harness::new(program.clone(), MutexId::new(0), make_scheduler(&cfg))
                            .with_dummy_method(program.method_by_name("noop").unwrap());
                    for i in 0..(3 + p) {
                        h.submit_by_name("inc", RequestArgs::new(vec![Value::Int(i as i64 + 1)]));
                    }
                    h
                })
                .collect()
        };
        let serial = run_partitioned(build(), 1);
        for workers in [2, 3, 5, 8] {
            let par = run_partitioned(build(), workers);
            assert_eq!(par.len(), serial.len());
            for (p, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert_eq!(
                    a.lock_trace, b.lock_trace,
                    "partition {p}, workers {workers}"
                );
                assert_eq!(a.state.cells(), b.state.cells());
                assert_eq!(a.finished_threads, b.finished_threads);
            }
        }
    }

    #[test]
    fn seq_and_sat_lock_in_arrival_order() {
        for kind in [SchedulerKind::Seq, SchedulerKind::Sat] {
            let res = run_counter(kind, 5);
            let tids: Vec<u32> = res.lock_trace.iter().map(|&(t, _)| t.0).collect();
            assert_eq!(tids, vec![0, 1, 2, 3, 4], "{kind}");
        }
    }

    #[test]
    fn pds_dummy_requests_fill_the_pool() {
        // batch_size 4 with only 2 real requests → dummies must appear.
        let program = counter();
        let cfg = SchedConfig::new(SchedulerKind::Pds, ReplicaId::new(0));
        let mut h = Harness::new(program.clone(), MutexId::new(0), make_scheduler(&cfg))
            .with_dummy_method(program.method_by_name("noop").unwrap());
        h.submit_by_name("inc", RequestArgs::new(vec![Value::Int(1)]));
        h.submit_by_name("inc", RequestArgs::new(vec![Value::Int(2)]));
        let res = h.run();
        assert!(!res.deadlocked);
        assert_eq!(res.state.cells()[0], 3);
        assert!(
            res.dummy_threads >= 2,
            "expected dummies, got {}",
            res.dummy_threads
        );
    }

    /// Bounded-buffer object exercising condition variables.
    fn buffer(capacity: i64) -> Arc<CompiledObject> {
        let mut ob = ObjectBuilder::new("Buffer");
        let count = ob.cell();
        let mut put = ob.method("put", 0);
        put.sync_wait_until(MutexExpr::This, CondExpr::CellLt(count, capacity), |b| {
            b.add(count, 1);
            b.notify_all(MutexExpr::This);
        });
        put.done();
        let mut take = ob.method("take", 0);
        take.sync_wait_until(MutexExpr::This, CondExpr::CellGe(count, 1), |b| {
            b.add(count, -1);
            b.notify_all(MutexExpr::This);
        });
        take.done();
        compile::compile(&ob.build())
    }

    #[test]
    fn condition_variables_work_under_concurrent_schedulers() {
        // Take arrives before put: the taker must wait and be woken.
        for kind in [
            SchedulerKind::Sat,
            SchedulerKind::Mat,
            SchedulerKind::MatLL,
            SchedulerKind::Pmat,
            SchedulerKind::Lsa,
            SchedulerKind::Free,
        ] {
            let program = buffer(2);
            let cfg = SchedConfig::new(kind, ReplicaId::new(0));
            let mut h = Harness::new(program, MutexId::new(0), make_scheduler(&cfg));
            h.submit_by_name("take", RequestArgs::empty());
            h.submit_by_name("put", RequestArgs::empty());
            let res = h.run();
            assert!(!res.deadlocked, "{kind} deadlocked on CV handoff");
            assert_eq!(res.state.cells()[0], 0, "{kind}");
            assert_eq!(res.finished_threads, 2, "{kind}");
        }
    }

    #[test]
    fn seq_deadlocks_on_wait_as_the_paper_warns() {
        let program = buffer(2);
        let cfg = SchedConfig::new(SchedulerKind::Seq, ReplicaId::new(0));
        let mut h = Harness::new(program, MutexId::new(0), make_scheduler(&cfg));
        h.submit_by_name("take", RequestArgs::empty());
        h.submit_by_name("put", RequestArgs::empty());
        let res = h.run();
        assert!(
            res.deadlocked,
            "SEQ must deadlock: nothing can notify the waiting taker"
        );
    }

    /// Object whose method computes, nests, and locks — exercises nested
    /// invocation handling.
    fn nester() -> Arc<CompiledObject> {
        let mut ob = ObjectBuilder::new("Nester");
        let c = ob.cell();
        let mut m = ob.method("work", 0);
        m.compute_ms(1);
        m.nested(dmt_lang::ServiceId::new(0), dmt_lang::DurExpr::millis(12));
        m.sync(MutexExpr::This, |b| {
            b.add(c, 1);
        });
        m.done();
        let noop = ob.method("noop", 0);
        noop.done();
        compile::compile(&ob.build())
    }

    #[test]
    fn nested_invocations_complete_under_all_schedulers() {
        for kind in SchedulerKind::ALL {
            let program = nester();
            let cfg = SchedConfig::new(kind, ReplicaId::new(0));
            let mut h = Harness::new(program.clone(), MutexId::new(0), make_scheduler(&cfg))
                .with_dummy_method(program.method_by_name("noop").unwrap());
            for _ in 0..4 {
                h.submit_by_name("work", RequestArgs::empty());
            }
            let res = h.run();
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.state.cells()[0], 4, "{kind}");
        }
    }

    #[test]
    fn identical_runs_produce_identical_traces() {
        for kind in SchedulerKind::ALL {
            let a = run_counter(kind, 8);
            let b = run_counter(kind, 8);
            assert_eq!(a.lock_trace, b.lock_trace, "{kind} not replay-stable");
            assert_eq!(a.state.state_hash(), b.state.state_hash());
        }
    }
}
