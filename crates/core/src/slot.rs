//! Dense-index slot tables — the allocation-free replacements for the
//! `HashMap`/`BTreeSet` state that used to sit on the per-event hot path.
//!
//! Every identifier in the simulator (`ThreadId`, `MutexId`, `ReplicaId`,
//! request numbers) is a small integer handed out contiguously from 0, so
//! associative containers are pure overhead: a `Vec` indexed by the id is
//! both faster (no hashing, no tree walks) and deterministic by
//! construction (iteration is id order, which is admission/age order for
//! threads). The tables grow on first touch and never shrink; a vacated
//! slot is `None` until the id is reused. See DESIGN.md ("Dense-ID
//! invariant").

/// A map keyed by a dense integer id, backed by `Vec<Option<T>>`.
#[derive(Clone, Debug)]
pub struct SlotMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for SlotMap<T> {
    fn default() -> Self {
        SlotMap {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<T> SlotMap<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, i: usize) -> Option<&T> {
        self.slots.get(i).and_then(|s| s.as_ref())
    }

    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.slots.get_mut(i).and_then(|s| s.as_mut())
    }

    pub fn contains(&self, i: usize) -> bool {
        self.get(i).is_some()
    }

    /// Inserts `v` at slot `i`, growing the table as needed. Returns the
    /// previous occupant, if any.
    pub fn insert(&mut self, i: usize, v: T) -> Option<T> {
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(v);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    pub fn remove(&mut self, i: usize) -> Option<T> {
        let prev = self.slots.get_mut(i).and_then(|s| s.take());
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Returns the slot's value, inserting `f()` first if vacant.
    pub fn get_or_insert_with(&mut self, i: usize, f: impl FnOnce() -> T) -> &mut T {
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(f());
            self.len += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Occupied slots in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    /// Mutable variant of [`SlotMap::iter`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (i, v)))
    }

    /// Ascending ids of occupied slots.
    pub fn keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
    }

    /// Upper bound on ids ever inserted (capacity of the dense range).
    pub fn bound(&self) -> usize {
        self.slots.len()
    }
}

impl<T> std::ops::Index<usize> for SlotMap<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        self.get(i).expect("empty slot")
    }
}

/// A set of dense integer ids, backed by `Vec<bool>` plus a counter so
/// `len`/`is_empty` stay O(1).
#[derive(Clone, Debug, Default)]
pub struct DenseSet {
    bits: Vec<bool>,
    len: usize,
}

impl DenseSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Returns true if `i` was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        if i >= self.bits.len() {
            self.bits.resize(i + 1, false);
        }
        let fresh = !self.bits[i];
        if fresh {
            self.bits[i] = true;
            self.len += 1;
        }
        fresh
    }

    /// Returns true if `i` was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let present = self.contains(i);
        if present {
            self.bits[i] = false;
            self.len -= 1;
        }
        present
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotmap_insert_get_remove() {
        let mut m: SlotMap<&str> = SlotMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(0, "a"), None);
        assert_eq!(m.insert(3, "c2"), Some("c"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(3), Some(&"c2"));
        assert!(m.contains(0));
        assert!(!m.contains(1));
        assert!(!m.contains(99));
        assert_eq!(m.remove(3), Some("c2"));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.remove(42), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slotmap_iterates_in_id_order() {
        let mut m = SlotMap::new();
        m.insert(5, 50);
        m.insert(1, 10);
        m.insert(3, 30);
        let pairs: Vec<_> = m.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50)]);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![1, 3, 5]);
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m[1], 11);
    }

    #[test]
    fn slotmap_get_or_insert_with() {
        let mut m: SlotMap<Vec<u32>> = SlotMap::new();
        m.get_or_insert_with(2, Vec::new).push(7);
        m.get_or_insert_with(2, || panic!("occupied slot must not refill"))
            .push(8);
        assert_eq!(m[2], vec![7, 8]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.bound(), 3);
    }

    #[test]
    fn dense_set_basics() {
        let mut s = DenseSet::new();
        assert!(s.is_empty());
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.insert(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4]);
        assert!(s.remove(4));
        assert!(!s.remove(4));
        assert!(!s.remove(9));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(4));
        assert!(s.contains(1));
    }
}
