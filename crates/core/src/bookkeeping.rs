//! The bookkeeping module of paper §4.3.
//!
//! The analysis produces a *static* lock table — for every start method,
//! the syncids its execution can pass, in deterministic order. At runtime
//! each thread gets a private copy; `lock`/`unlock`/`lockInfo`/`ignore`
//! events move its entries through a small state machine. Decision
//! modules that exploit prediction (MAT-LL, PMAT) query the aggregate
//! (`is_predicted`, `may_lock`, `no_more_locks`); pessimistic modules
//! simply never ask — exactly the two-module architecture the paper
//! envisages ("the decision module may use the bookkeeping module, but
//! does not have to").

use crate::ids::ThreadId;
use crate::slot::SlotMap;
use dmt_lang::{MethodIdx, MutexId, SyncId};
use std::sync::Arc;

/// Static description of one syncid reachable from a start method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticSyncEntry {
    pub sync_id: SyncId,
    /// True when the block sits in a loop or a multiply-invoked callee —
    /// the lock can be taken again after an unlock, so the entry only
    /// retires on an explicit `ignore` (paper §4.4 loop handling).
    pub repeatable: bool,
}

/// The static lock table: per start method, the syncid list (or `None`
/// when the method was not analysed — e.g. it recurses, §4.4).
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    per_method: Vec<Option<Vec<StaticSyncEntry>>>,
}

impl LockTable {
    /// A table that declares every method unanalysed. Pessimistic
    /// schedulers run with this.
    pub fn unanalyzed(n_methods: usize) -> Self {
        LockTable {
            per_method: vec![None; n_methods],
        }
    }

    pub fn new(per_method: Vec<Option<Vec<StaticSyncEntry>>>) -> Self {
        LockTable { per_method }
    }

    pub fn entries(&self, method: MethodIdx) -> Option<&[StaticSyncEntry]> {
        self.per_method
            .get(method.index())
            .and_then(|e| e.as_deref())
    }

    pub fn n_methods(&self) -> usize {
        self.per_method.len()
    }
}

/// Dynamic state of one syncid entry in a thread's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryState {
    /// Nothing known yet — the future lock target is unknown.
    Pending,
    /// `lockInfo` announced the mutex this entry will lock.
    Announced(MutexId),
    /// The lock is currently held.
    Held(MutexId),
    /// Locked and released; no further acquisition possible.
    Done,
    /// The taken path bypasses this block (or a loop over it finished).
    Ignored,
}

impl EntryState {
    /// The mutex this entry pins for conflict purposes, if any.
    fn pinned_mutex(self) -> Option<MutexId> {
        match self {
            EntryState::Announced(m) | EntryState::Held(m) => Some(m),
            _ => None,
        }
    }

    /// True when no *future* acquisition can come from this entry and its
    /// target is known (i.e. it does not block prediction).
    fn resolved(self) -> bool {
        !matches!(self, EntryState::Pending)
    }
}

#[derive(Clone, Debug)]
struct ThreadBook {
    /// The thread's start method — its static entry list lives in the
    /// shared [`LockTable`]; `states` is parallel to it.
    method: MethodIdx,
    states: Vec<EntryState>,
    /// False when the start method was unanalysed or the thread performed
    /// a lock at a syncid outside its table (analysis was incomplete) —
    /// such a thread is never considered predicted.
    analyzed: bool,
}

/// Per-replica bookkeeping: static table + per-thread dynamic tables.
/// Thread tables sit in a dense slot map indexed by `ThreadId`; syncid
/// lookups are linear scans over the method's (short) static entry list,
/// which beats hashing at these sizes and allocates nothing.
#[derive(Clone, Debug)]
pub struct Bookkeeping {
    table: Arc<LockTable>,
    threads: SlotMap<ThreadBook>,
    /// Recycled `states` vectors: one thread is born per request, so the
    /// spare pool makes `on_request` allocation-free at steady state.
    spare: Vec<Vec<EntryState>>,
}

impl Bookkeeping {
    pub fn new(table: Arc<LockTable>) -> Self {
        Bookkeeping {
            threads: SlotMap::new(),
            table,
            spare: Vec::new(),
        }
    }

    /// Thread creation: make the thread's local copy of the static
    /// information (paper §4.1: "a local copy of the static information
    /// concerning the thread's start method is made").
    pub fn on_request(&mut self, tid: ThreadId, method: MethodIdx) {
        let mut states = self.spare.pop().unwrap_or_default();
        states.clear();
        let analyzed = match self.table.entries(method) {
            Some(entries) => {
                states.resize(entries.len(), EntryState::Pending);
                true
            }
            None => false,
        };
        let prev = self.threads.insert(
            tid.index(),
            ThreadBook {
                method,
                states,
                analyzed,
            },
        );
        debug_assert!(prev.is_none(), "thread {tid} registered twice");
    }

    pub fn on_lock_info(&mut self, tid: ThreadId, sync_id: SyncId, mutex: MutexId) {
        self.transition(tid, sync_id, |st| match st {
            EntryState::Pending | EntryState::Announced(_) => EntryState::Announced(mutex),
            // A repeatable block can be re-announced after an unlock.
            EntryState::Done | EntryState::Ignored => EntryState::Announced(mutex),
            held @ EntryState::Held(_) => held,
        });
    }

    pub fn on_lock(&mut self, tid: ThreadId, sync_id: SyncId, mutex: MutexId) {
        self.transition(tid, sync_id, |_| EntryState::Held(mutex));
    }

    pub fn on_unlock(&mut self, tid: ThreadId, sync_id: SyncId, mutex: MutexId) {
        let repeatable = self.is_repeatable(tid, sync_id);
        self.transition(tid, sync_id, |st| match st {
            EntryState::Held(m) => {
                debug_assert_eq!(m, mutex);
                if repeatable {
                    // May be locked again before the loop exits; the
                    // mutex stays pinned until the post-loop ignore.
                    EntryState::Announced(m)
                } else {
                    EntryState::Done
                }
            }
            other => other,
        });
    }

    pub fn on_ignore(&mut self, tid: ThreadId, sync_id: SyncId) {
        self.transition(tid, sync_id, |st| match st {
            EntryState::Held(m) => {
                // Ignoring a held entry is an instrumentation bug.
                panic!("ignore for held entry ({m})")
            }
            EntryState::Done => EntryState::Done,
            _ => EntryState::Ignored,
        });
    }

    pub fn on_finish(&mut self, tid: ThreadId) {
        if let Some(book) = self.threads.remove(tid.index()) {
            self.spare.push(book.states);
        }
    }

    fn is_repeatable(&self, tid: ThreadId, sync_id: SyncId) -> bool {
        // Syncids are globally unique (paper §4.1), so looking only in
        // the thread's own method row is exact: an unlock at a foreign
        // syncid never reaches the `Held` branch that consults this flag.
        let Some(book) = self.threads.get(tid.index()) else {
            return false;
        };
        self.table
            .entries(book.method)
            .and_then(|entries| entries.iter().find(|e| e.sync_id == sync_id))
            .map(|e| e.repeatable)
            .unwrap_or(false)
    }

    fn transition(
        &mut self,
        tid: ThreadId,
        sync_id: SyncId,
        f: impl FnOnce(EntryState) -> EntryState,
    ) {
        let Some(book) = self.threads.get_mut(tid.index()) else {
            return;
        };
        let entries = self.table.entries(book.method).unwrap_or(&[]);
        match entries.iter().position(|e| e.sync_id == sync_id) {
            Some(i) => {
                book.states[i] = f(book.states[i]);
            }
            None => {
                // The thread locked at a syncid its table does not list:
                // the static information was incomplete — degrade the
                // thread to unanalysed rather than predict wrongly.
                book.analyzed = false;
            }
        }
    }

    /// Paper §4.2: "a thread is predicted if all entries in the list are
    /// marked" — every entry's target is known (or retired) and the
    /// thread's method was analysed.
    pub fn is_predicted(&self, tid: ThreadId) -> bool {
        self.threads
            .get(tid.index())
            .is_some_and(|b| b.analyzed && b.states.iter().all(|s| s.resolved()))
    }

    /// The mutexes this thread has announced or holds — its possible
    /// future (or current) lock targets.
    pub fn pinned_mutexes(&self, tid: ThreadId) -> Vec<MutexId> {
        self.threads
            .get(tid.index())
            .map(|b| b.states.iter().filter_map(|s| s.pinned_mutex()).collect())
            .unwrap_or_default()
    }

    /// Could `tid` lock `mutex` now or in the future? Pessimistic: an
    /// unpredicted thread may lock anything.
    pub fn may_lock(&self, tid: ThreadId, mutex: MutexId) -> bool {
        match self.threads.get(tid.index()) {
            None => false, // finished / unknown thread locks nothing
            Some(b) => {
                if !b.analyzed {
                    return true;
                }
                b.states.iter().any(|s| match s {
                    EntryState::Pending => true, // unknown target: assume conflict
                    EntryState::Announced(m) | EntryState::Held(m) => *m == mutex,
                    EntryState::Done | EntryState::Ignored => false,
                })
            }
        }
    }

    /// Last-lock analysis predicate (paper §4.1): the thread has requested
    /// and released all of its locks and will never request one again.
    pub fn no_more_locks(&self, tid: ThreadId) -> bool {
        self.threads.get(tid.index()).is_some_and(|b| {
            b.analyzed
                && b.states
                    .iter()
                    .all(|s| matches!(s, EntryState::Done | EntryState::Ignored))
        })
    }

    pub fn is_tracked(&self, tid: ThreadId) -> bool {
        self.threads.contains(tid.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn s(v: u32) -> SyncId {
        SyncId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }

    fn table_one_method(entries: Vec<StaticSyncEntry>) -> Arc<LockTable> {
        Arc::new(LockTable::new(vec![Some(entries)]))
    }

    fn e(sid: u32) -> StaticSyncEntry {
        StaticSyncEntry {
            sync_id: s(sid),
            repeatable: false,
        }
    }

    #[test]
    fn fresh_thread_with_entries_is_unpredicted() {
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0), e(1)]));
        bk.on_request(t(0), MethodIdx::new(0));
        assert!(!bk.is_predicted(t(0)));
        assert!(bk.may_lock(t(0), m(5))); // pending entries: anything possible
        assert!(!bk.no_more_locks(t(0)));
    }

    #[test]
    fn lockfree_method_is_instantly_predicted() {
        let mut bk = Bookkeeping::new(table_one_method(vec![]));
        bk.on_request(t(0), MethodIdx::new(0));
        assert!(bk.is_predicted(t(0)));
        assert!(bk.no_more_locks(t(0)));
        assert!(!bk.may_lock(t(0), m(1)));
    }

    #[test]
    fn announce_then_predict() {
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0), e(1)]));
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_lock_info(t(0), s(0), m(10));
        assert!(!bk.is_predicted(t(0)));
        bk.on_lock_info(t(0), s(1), m(11));
        assert!(bk.is_predicted(t(0)));
        assert_eq!(bk.pinned_mutexes(t(0)), vec![m(10), m(11)]);
        assert!(bk.may_lock(t(0), m(10)));
        assert!(!bk.may_lock(t(0), m(12)));
    }

    #[test]
    fn ignore_resolves_bypassed_branch() {
        // Figure 4: two branches, one locks s0, the other s1; taking the
        // s0 branch ignores s1.
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0), e(1)]));
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_lock_info(t(0), s(0), m(1));
        bk.on_ignore(t(0), s(1));
        assert!(bk.is_predicted(t(0)));
        bk.on_lock(t(0), s(0), m(1));
        assert!(bk.may_lock(t(0), m(1)));
        bk.on_unlock(t(0), s(0), m(1));
        assert!(bk.no_more_locks(t(0)));
        assert!(!bk.may_lock(t(0), m(1)));
    }

    #[test]
    fn spontaneous_lock_counts_as_info_plus_lock() {
        // Paper §4.2: spontaneous parameters get no lockInfo; the lock
        // itself resolves the entry.
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0)]));
        bk.on_request(t(0), MethodIdx::new(0));
        assert!(!bk.is_predicted(t(0)));
        bk.on_lock(t(0), s(0), m(3));
        assert!(bk.is_predicted(t(0)));
        assert_eq!(bk.pinned_mutexes(t(0)), vec![m(3)]);
        bk.on_unlock(t(0), s(0), m(3));
        assert!(bk.no_more_locks(t(0)));
    }

    #[test]
    fn repeatable_entry_stays_pinned_until_ignore() {
        let table = table_one_method(vec![StaticSyncEntry {
            sync_id: s(0),
            repeatable: true,
        }]);
        let mut bk = Bookkeeping::new(table);
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_lock_info(t(0), s(0), m(4));
        bk.on_lock(t(0), s(0), m(4));
        bk.on_unlock(t(0), s(0), m(4));
        // Loop may iterate again: mutex stays pinned, no_more_locks false.
        assert!(bk.is_predicted(t(0)));
        assert!(bk.may_lock(t(0), m(4)));
        assert!(!bk.no_more_locks(t(0)));
        // Second iteration.
        bk.on_lock(t(0), s(0), m(4));
        bk.on_unlock(t(0), s(0), m(4));
        // Loop exits: the injected ignore retires the entry.
        bk.on_ignore(t(0), s(0));
        assert!(bk.no_more_locks(t(0)));
        assert!(!bk.may_lock(t(0), m(4)));
    }

    #[test]
    fn unanalyzed_method_never_predicts() {
        let mut bk = Bookkeeping::new(Arc::new(LockTable::unanalyzed(1)));
        bk.on_request(t(0), MethodIdx::new(0));
        assert!(!bk.is_predicted(t(0)));
        assert!(bk.may_lock(t(0), m(0)));
        assert!(!bk.no_more_locks(t(0)));
    }

    #[test]
    fn lock_outside_table_degrades_thread() {
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0)]));
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_lock_info(t(0), s(0), m(1));
        assert!(bk.is_predicted(t(0)));
        // Locks at a syncid the table does not know: incomplete analysis.
        bk.on_lock(t(0), s(99), m(9));
        assert!(!bk.is_predicted(t(0)));
        assert!(bk.may_lock(t(0), m(77)));
    }

    #[test]
    fn finish_removes_thread() {
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0)]));
        bk.on_request(t(0), MethodIdx::new(0));
        assert!(bk.is_tracked(t(0)));
        bk.on_finish(t(0));
        assert!(!bk.is_tracked(t(0)));
        assert!(!bk.may_lock(t(0), m(0)));
        assert!(!bk.is_predicted(t(0)));
    }

    #[test]
    fn reannounce_after_done_for_repeated_path() {
        let mut bk = Bookkeeping::new(table_one_method(vec![e(0)]));
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_lock(t(0), s(0), m(1));
        bk.on_unlock(t(0), s(0), m(1));
        assert!(bk.no_more_locks(t(0)));
        // A later lockInfo re-pins (conservative for imperfect tables).
        bk.on_lock_info(t(0), s(0), m(2));
        assert!(!bk.no_more_locks(t(0)));
        assert!(bk.may_lock(t(0), m(2)));
    }

    #[test]
    fn multiple_threads_tracked_independently() {
        let table = Arc::new(LockTable::new(vec![
            Some(vec![e(0)]),
            Some(vec![e(1), e(2)]),
        ]));
        let mut bk = Bookkeeping::new(table);
        bk.on_request(t(0), MethodIdx::new(0));
        bk.on_request(t(1), MethodIdx::new(1));
        bk.on_lock_info(t(0), s(0), m(1));
        assert!(bk.is_predicted(t(0)));
        assert!(!bk.is_predicted(t(1)));
    }
}
