//! LSA — loose synchronisation algorithm (paper §3.2, after Basile et
//! al., SRDS'02).
//!
//! A leader-follower scheme and the only algorithm needing frequent
//! inter-replica communication. The leader replica schedules without
//! restrictions (plain monitor mechanics, like [`crate::free`]) and
//! broadcasts every monitor acquisition as an `LsaGrant{mutex, tid,
//! order}` control message. Followers never decide: a follower forwards a
//! thread's lock request only when that thread is the next grantee in the
//! leader's per-mutex order. Condition variables (the FTflex addition)
//! come for free: a `wait` re-acquisition is an acquisition like any
//! other and appears in the leader's order; wait-set and notify mechanics
//! are deterministic given the per-mutex acquisition order.
//!
//! Fail-over: when the membership layer announces a new leader, the
//! promoted replica first honours every grant the dead leader had
//! announced (those were delivered in total order, so they are a
//! consistent prefix on all survivors), then starts deciding itself,
//! continuing each mutex's order counter. The takeover cost the paper
//! attributes to LSA (§3.5) is measured in the `abl-wan` experiment.

use crate::event::{CtrlMsg, SchedAction, SchedEvent};
use crate::ids::{ReplicaId, ThreadId};
use crate::obs::{Decision, DeferReason, DepthSample, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::slot::SlotMap;
use crate::sync_core::{LockOutcome, SyncCore};
use std::collections::VecDeque;

pub struct LsaScheduler {
    replica: ReplicaId,
    leader: ReplicaId,
    sync: SyncCore,
    /// Announced grants not yet applied, indexed by the dense mutex id
    /// (each queue in leader order).
    expected: Vec<VecDeque<ThreadId>>,
    /// Fresh lock requests waiting to be matched with an announcement
    /// (follower) or decided after the announced backlog drains (a
    /// just-promoted leader). Indexed by the dense thread id.
    pending: SlotMap<dmt_lang::MutexId>,
    /// Per-mutex acquisition counters, indexed by mutex id (followers
    /// track them from the announcements so a promoted leader continues
    /// the numbering).
    order: Vec<u64>,
    grants_issued: u64,
}

impl LsaScheduler {
    pub fn new(replica: ReplicaId, leader: ReplicaId) -> Self {
        LsaScheduler {
            replica,
            leader,
            sync: SyncCore::new(false),
            expected: Vec::new(),
            pending: SlotMap::new(),
            order: Vec::new(),
            grants_issued: 0,
        }
    }

    pub fn is_leader(&self) -> bool {
        self.replica == self.leader
    }

    /// Total grants this scheduler has applied (overhead metric).
    pub fn grants_issued(&self) -> u64 {
        self.grants_issued
    }

    fn has_backlog(&self, mutex: dmt_lang::MutexId) -> bool {
        self.expected
            .get(mutex.index())
            .is_some_and(|q| !q.is_empty())
    }

    fn expected_mut(&mut self, mutex: dmt_lang::MutexId) -> &mut VecDeque<ThreadId> {
        let i = mutex.index();
        if i >= self.expected.len() {
            self.expected.resize_with(i + 1, VecDeque::new);
        }
        &mut self.expected[i]
    }

    fn order_mut(&mut self, mutex: dmt_lang::MutexId) -> &mut u64 {
        let i = mutex.index();
        if i >= self.order.len() {
            self.order.resize(i + 1, 0);
        }
        &mut self.order[i]
    }

    /// Leader: record + broadcast an acquisition by `tid` of `mutex`.
    fn announce(&mut self, tid: ThreadId, mutex: dmt_lang::MutexId, out: &mut SchedOutput) {
        let slot = self.order_mut(mutex);
        let order = *slot;
        *slot += 1;
        self.grants_issued += 1;
        out.decision(|| Decision::Announce { tid, mutex, order });
        out.push(SchedAction::Broadcast(CtrlMsg::LsaGrant {
            mutex,
            tid,
            order,
        }));
    }

    /// Applies announced grants for `mutex` as far as possible, then (on
    /// the leader) decides freely once the announced backlog is empty.
    fn drain(&mut self, mutex: dmt_lang::MutexId, out: &mut SchedOutput) {
        // Phase 1: replay announcements (follower behaviour; a promoted
        // leader also honours the old leader's prefix this way).
        loop {
            if !self.sync.is_free(mutex) {
                return;
            }
            let Some(&next) = self.expected.get(mutex.index()).and_then(|q| q.front()) else {
                break;
            };
            if self.pending.get(next.index()) == Some(&mutex) {
                self.expected_mut(mutex).pop_front();
                self.pending.remove(next.index());
                let outcome = self.sync.lock(next, mutex);
                debug_assert_eq!(outcome, LockOutcome::Acquired);
                self.grants_issued += 1;
                out.decision(|| Decision::Grant {
                    tid: next,
                    mutex,
                    from_wait: false,
                });
                out.push(SchedAction::Resume(next));
            } else if self.sync.is_queued(next, mutex) {
                // A notified re-acquirer sitting in the monitor queue.
                self.expected_mut(mutex).pop_front();
                let g = self.sync.grant_to(next, mutex).expect("free + queued");
                self.grants_issued += 1;
                out.decision(|| Decision::Grant {
                    tid: next,
                    mutex,
                    from_wait: g.from_wait,
                });
                out.push(SchedAction::Resume(next));
            } else {
                // Grantee has not reached its request yet; hold.
                return;
            }
        }
        // Phase 2: leader decides.
        if !self.is_leader() {
            return;
        }
        // Fold pending fresh requests for this mutex into the monitor
        // queue in thread-age order — ascending slot order *is* age order
        // (only relevant right after failover). On the steady-state
        // leader `pending` is empty — fresh requests are handled
        // directly in `on_event` — so skip the slot scan entirely.
        if !self.pending.is_empty() {
            for i in 0..self.pending.bound() {
                if self.pending.get(i) != Some(&mutex) {
                    continue;
                }
                let tid = ThreadId::new(i as u32);
                self.pending.remove(i);
                match self.sync.lock(tid, mutex) {
                    LockOutcome::Acquired => {
                        self.announce(tid, mutex, out);
                        out.decision(|| Decision::Grant {
                            tid,
                            mutex,
                            from_wait: false,
                        });
                        out.push(SchedAction::Resume(tid));
                    }
                    LockOutcome::Queued => {}
                }
            }
        }
        if self.sync.is_free(mutex) {
            if let Some(g) = self.sync.grant_next(mutex) {
                self.announce(g.tid, mutex, out);
                out.decision(|| Decision::Grant {
                    tid: g.tid,
                    mutex,
                    from_wait: g.from_wait,
                });
                out.push(SchedAction::Resume(g.tid));
            }
        }
    }
}

impl Scheduler for LsaScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Lsa
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    /// Followers enforce the leader's order *per mutex*; grants on
    /// different mutexes are applied as local threads reach their
    /// requests, so the global interleaving is replica-local (properly
    /// synchronised state is unaffected, exactly as for PMAT).
    fn global_order_deterministic(&self) -> bool {
        false
    }

    /// `sched_queue` counts announced-but-unapplied grants (the follower
    /// backlog); fresh requests parked in `pending` count as lock-queued
    /// since they are blocked on a monitor, just gated remotely.
    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        d.lock_queued += self.pending.len() as u32;
        d.sched_queue = self.expected.iter().map(|q| q.len() as u32).sum();
        d
    }

    fn on_leader_change(&mut self, new_leader: ReplicaId) {
        self.leader = new_leader;
        // Announced-but-unapplied grants stay: they are a consistent
        // prefix on every survivor and will be applied as the grantees
        // reach their requests. A promoted leader starts deciding in
        // `drain` once each mutex's backlog empties; the engine calls
        // `kick` right after this notification to force that first drain.
    }

    fn kick(&mut self, out: &mut SchedOutput) {
        // Cold path (failover only): visit each mutex with pending
        // requests or an announced backlog, in ascending id order.
        let mut mutexes: Vec<dmt_lang::MutexId> = self
            .pending
            .iter()
            .map(|(_, &m)| m)
            .chain(
                self.expected
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(i, _)| dmt_lang::MutexId::new(i as u32)),
            )
            .collect();
        mutexes.sort_unstable();
        mutexes.dedup();
        for m in mutexes {
            self.drain(m, out);
        }
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, .. } => {
                out.decision(|| Decision::Admit { tid });
                out.push(SchedAction::Admit(tid));
            }
            SchedEvent::LockRequested { tid, mutex, .. } => {
                if self.sync.holds(tid, mutex) {
                    // Reentrant: forced, not announced.
                    let outcome = self.sync.lock(tid, mutex);
                    debug_assert_eq!(outcome, LockOutcome::Acquired);
                    out.decision(|| Decision::Grant {
                        tid,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(tid));
                } else if self.is_leader() && !self.has_backlog(mutex) {
                    match self.sync.lock(tid, mutex) {
                        LockOutcome::Acquired => {
                            self.announce(tid, mutex, out);
                            out.decision(|| Decision::Grant {
                                tid,
                                mutex,
                                from_wait: false,
                            });
                            out.push(SchedAction::Resume(tid));
                        }
                        LockOutcome::Queued => {
                            out.decision(|| Decision::Defer {
                                tid,
                                mutex,
                                reason: DeferReason::MutexBusy,
                            });
                        }
                    }
                } else {
                    self.pending.insert(tid.index(), mutex);
                    self.drain(mutex, out);
                    if self.pending.contains(tid.index()) {
                        // Still waiting for the leader's announcement (or,
                        // on a promoted leader, for the backlog to drain).
                        out.decision(|| Decision::Defer {
                            tid,
                            mutex,
                            reason: DeferReason::OrderGate,
                        });
                    }
                }
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                self.sync.unlock(tid, mutex);
                self.drain(mutex, out);
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                self.sync.wait(tid, mutex);
                self.drain(mutex, out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
                // On the leader a queued re-acquirer may be grantable as
                // soon as the notifier unlocks; nothing to do before then.
            }
            SchedEvent::NestedStarted { .. } => {}
            SchedEvent::NestedCompleted { tid } => out.push(SchedAction::Resume(tid)),
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid));
                debug_assert!(!self.pending.contains(tid.index()));
            }
            SchedEvent::Control(CtrlMsg::LsaGrant { mutex, tid, order }) => {
                // Own echoes are filtered by the engine; anything arriving
                // here is from the (possibly previous) leader.
                let next_order = self.order_mut(mutex);
                debug_assert_eq!(*next_order, order, "gap in leader announcements");
                *next_order = order + 1;
                self.expected_mut(mutex).push_back(tid);
                self.drain(mutex, out);
            }
            SchedEvent::LockInfo { .. } | SchedEvent::SyncIgnored { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }
    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }
    fn lock(tid: u32, mx: u32) -> SchedEvent {
        SchedEvent::LockRequested {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: m(mx),
        }
    }
    fn unlock(tid: u32, mx: u32) -> SchedEvent {
        SchedEvent::Unlocked {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: m(mx),
        }
    }
    fn grant_msg(tid: u32, mx: u32, order: u64) -> SchedEvent {
        SchedEvent::Control(CtrlMsg::LsaGrant {
            mutex: m(mx),
            tid: t(tid),
            order,
        })
    }

    fn leader() -> LsaScheduler {
        LsaScheduler::new(ReplicaId::new(0), ReplicaId::new(0))
    }
    fn follower() -> LsaScheduler {
        LsaScheduler::new(ReplicaId::new(1), ReplicaId::new(0))
    }

    #[test]
    fn leader_grants_immediately_and_broadcasts() {
        let mut s = leader();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(
            out.actions,
            vec![
                SchedAction::Broadcast(CtrlMsg::LsaGrant {
                    mutex: m(5),
                    tid: t(0),
                    order: 0
                }),
                SchedAction::Resume(t(0)),
            ]
        );
    }

    #[test]
    fn leader_broadcasts_contended_grants_on_release() {
        let mut s = leader();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        out.clear();
        s.on_event(&lock(1, 5), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&unlock(0, 5), &mut out);
        assert_eq!(
            out.actions,
            vec![
                SchedAction::Broadcast(CtrlMsg::LsaGrant {
                    mutex: m(5),
                    tid: t(1),
                    order: 1
                }),
                SchedAction::Resume(t(1)),
            ]
        );
    }

    #[test]
    fn follower_waits_for_announcement() {
        let mut s = follower();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert!(out.actions.is_empty(), "follower never decides alone");
        s.on_event(&grant_msg(0, 5, 0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(s.sync_core().owner(m(5)), Some(t(0)));
    }

    #[test]
    fn follower_applies_announcement_arriving_first() {
        let mut s = follower();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&grant_msg(0, 5, 0), &mut out);
        assert!(out.actions.is_empty(), "grantee has not asked yet");
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn follower_enforces_leader_order_not_arrival_order() {
        let mut s = follower();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // Locally t0 asks first, but the leader granted t1 first.
        s.on_event(&lock(0, 5), &mut out);
        s.on_event(&grant_msg(1, 5, 0), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&lock(1, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        out.clear();
        s.on_event(&grant_msg(0, 5, 1), &mut out);
        assert!(out.actions.is_empty(), "mutex still held by t1");
        s.on_event(&unlock(1, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn wait_reacquisition_follows_leader_order() {
        // Leader side: t0 waits on m3; t1 locks, notifies, unlocks.
        let mut lead = leader();
        let mut out = SchedOutput::new();
        lead.on_event(&arrive(0), &mut out);
        lead.on_event(&arrive(1), &mut out);
        out.clear();
        lead.on_event(&lock(0, 3), &mut out);
        out.clear();
        lead.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: m(3),
            },
            &mut out,
        );
        lead.on_event(&lock(1, 3), &mut out);
        out.clear();
        lead.on_event(
            &SchedEvent::NotifyCalled {
                tid: t(1),
                mutex: m(3),
                all: false,
            },
            &mut out,
        );
        lead.on_event(&unlock(1, 3), &mut out);
        // Re-acquisition grant broadcast for t0.
        assert!(out
            .actions
            .contains(&SchedAction::Broadcast(CtrlMsg::LsaGrant {
                mutex: m(3),
                tid: t(0),
                order: 2
            })));
        assert!(out.actions.contains(&SchedAction::Resume(t(0))));

        // Follower replays the same sequence of announcements.
        let mut fol = follower();
        let mut fout = SchedOutput::new();
        fol.on_event(&arrive(0), &mut fout);
        fol.on_event(&arrive(1), &mut fout);
        fout.clear();
        fol.on_event(&lock(0, 3), &mut fout);
        fol.on_event(&grant_msg(0, 3, 0), &mut fout);
        assert_eq!(fout.actions, vec![SchedAction::Resume(t(0))]);
        fout.clear();
        fol.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: m(3),
            },
            &mut fout,
        );
        fol.on_event(&lock(1, 3), &mut fout);
        fol.on_event(&grant_msg(1, 3, 1), &mut fout);
        assert_eq!(fout.actions, vec![SchedAction::Resume(t(1))]);
        fout.clear();
        fol.on_event(
            &SchedEvent::NotifyCalled {
                tid: t(1),
                mutex: m(3),
                all: false,
            },
            &mut fout,
        );
        fol.on_event(&grant_msg(0, 3, 2), &mut fout);
        assert!(fout.actions.is_empty(), "t1 still holds m3");
        fol.on_event(&unlock(1, 3), &mut fout);
        assert_eq!(fout.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(fol.sync_core().owner(m(3)), Some(t(0)));
    }

    #[test]
    fn promoted_leader_decides_pending_after_backlog() {
        let mut s = follower();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // Old leader announced t1 first, then died. t0 and t1 both ask.
        s.on_event(&grant_msg(1, 5, 0), &mut out);
        s.on_event(&lock(0, 5), &mut out);
        assert!(out.actions.is_empty());
        s.on_leader_change(ReplicaId::new(1));
        assert!(s.is_leader());
        // t1 asks: the old leader's announcement still wins first...
        s.on_event(&lock(1, 5), &mut out);
        // ...t1 resumes per backlog, then the new leader decides t0 when
        // t1 releases, continuing the order counter at 1.
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        out.clear();
        s.on_event(&unlock(1, 5), &mut out);
        assert_eq!(
            out.actions,
            vec![
                SchedAction::Broadcast(CtrlMsg::LsaGrant {
                    mutex: m(5),
                    tid: t(0),
                    order: 1
                }),
                SchedAction::Resume(t(0)),
            ]
        );
    }

    #[test]
    fn reentrant_lock_not_broadcast() {
        let mut s = leader();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }
}
