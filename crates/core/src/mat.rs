//! MAT — multiple active threads (paper §3.4), plus the last-lock
//! optimisation of §4.1 (Figure 2).
//!
//! All admitted threads run concurrently, but only one — the *primary* —
//! may acquire locks. A secondary requesting a lock blocks at the
//! algorithm gate until it becomes primary. Primacy passes, when the
//! current primary suspends (wait/nested invocation) or finishes, to the
//! oldest thread that can use it.
//!
//! ## The token queue (our deterministic rendering)
//!
//! Getting the paper's promotion rule ("the oldest secondary thread
//! becomes primary … and no blocked primary can continue running")
//! replica-invariant is the hard part: *"is that thread awake / gated /
//! finished right now?"* are physical-time questions whose answers differ
//! between replicas. Two earlier renderings — skip sleepers, and park the
//! token on sleepers — both produced real divergences under the
//! determinism checker (wake-ups and suspensions racing vacancies).
//!
//! The rendering that survives is an explicit FIFO **token queue** whose
//! every mutation is either a totally ordered event or the affected
//! thread's own program point:
//!
//! * admission appends (total order);
//! * a nested-invocation wake-up appends (nested replies travel through
//!   the group communication system, so they are totally ordered);
//! * a thread's suspension removes *that thread* (its own event);
//! * a thread's termination removes it (its own event);
//! * gate-blocked threads stay put.
//!
//! The head of the queue holds the primacy token. A transient head that
//! suspends without locking is invisible in the grant order, so the only
//! timing-dependent aspect — *when* a removal lands between two appends —
//! cannot be observed through locks. When the head blocks inside the
//! monitor layer, the monitor's owner (a per-mutex-deterministic fact) is
//! pulled to the front: priority donation, which also lets a gate-blocked
//! holder finish its critical section instead of wedging the token.
//!
//! One residual caveat, inherited from the paper (its CV handling was the
//! FTflex addition, and §4.3 admits the wait/nested interaction is open):
//! a `notify`-woken waiter re-enters the queue at its re-acquisition,
//! which is deterministic per mutex but not ordered against concurrent
//! nested wake-ups; programs that race condition variables against nested
//! invocations should prefer PMAT or LSA.
//!
//! In [`MatMode::LastLock`] the scheduler additionally consults the
//! bookkeeping module: a thread whose syncid table proves it will never
//! lock again leaves the token queue at that very unlock — before its
//! final computation (Figure 2(b)) — so lock-free tails never hog the
//! token (the §3.4 complaint about plain MAT).

use crate::bookkeeping::{Bookkeeping, LockTable};
use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::{Decision, DeferReason, DepthSample, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::slot::SlotMap;
use crate::sync_core::{LockOutcome, SyncCore};
use std::collections::VecDeque;
use std::sync::Arc;

/// Which MAT variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatMode {
    /// Paper §3.4: the token leaves a thread only on suspension or
    /// termination.
    Plain,
    /// Paper §4.1: the token also leaves after the provably last unlock.
    LastLock,
}

pub struct MatScheduler {
    mode: MatMode,
    sync: SyncCore,
    book: Bookkeeping,
    /// The token queue; the front holds primacy.
    queue: VecDeque<ThreadId>,
    /// Pending gate-blocked lock requests, indexed by the dense thread id.
    gated: SlotMap<dmt_lang::MutexId>,
    /// Last primary reported to the decision stream (recording only).
    noted_primary: Option<ThreadId>,
}

impl MatScheduler {
    pub fn new(mode: MatMode, table: Arc<LockTable>) -> Self {
        MatScheduler {
            mode,
            sync: SyncCore::new(true),
            book: Bookkeeping::new(table),
            queue: VecDeque::new(),
            gated: SlotMap::new(),
            noted_primary: None,
        }
    }

    /// The current token holder (primary), if any.
    pub fn primary(&self) -> Option<ThreadId> {
        self.queue.front().copied()
    }

    /// Plain mode never consults the bookkeeping (`no_more_locks` is
    /// only read behind the `LastLock` gate in `drop_if_lock_done`), so
    /// maintaining it there is pure overhead.
    #[inline]
    fn keeps_books(&self) -> bool {
        self.mode == MatMode::LastLock
    }

    fn remove_from_queue(&mut self, tid: ThreadId) {
        if let Some(pos) = self.queue.iter().position(|&t| t == tid) {
            self.queue.remove(pos);
        }
    }

    /// Last-lock mode: a thread the bookkeeping proves lock-done no
    /// longer needs the token; it leaves the queue (keeps running).
    fn drop_if_lock_done(&mut self, tid: ThreadId, out: &mut SchedOutput) {
        if self.mode == MatMode::LastLock
            && self.book.no_more_locks(tid)
            && self.sync.holds_none(tid)
            && self.queue.contains(&tid)
        {
            out.decision(|| Decision::TokenRelease {
                tid,
                last_lock: true,
            });
            self.remove_from_queue(tid);
            self.exercise_head(out);
        }
    }

    /// Records a token handover when the queue head changed (recording
    /// only — never touches scheduling state).
    fn note_primary(&mut self, out: &mut SchedOutput) {
        if !out.is_recording() {
            return;
        }
        let p = self.primary();
        if p != self.noted_primary {
            self.noted_primary = p;
            if let Some(tid) = p {
                out.decision(|| Decision::TokenGrant { tid });
            }
        }
    }

    /// If the (possibly new) head is gate-blocked, forward its request.
    fn exercise_head(&mut self, out: &mut SchedOutput) {
        loop {
            let Some(&head) = self.queue.front() else {
                return;
            };
            let Some(&mutex) = self.gated.get(head.index()) else {
                return;
            };
            self.gated.remove(head.index());
            match self.sync.lock(head, mutex) {
                LockOutcome::Acquired => {
                    out.decision(|| Decision::Grant {
                        tid: head,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(head));
                    return;
                }
                LockOutcome::Queued => {
                    out.decision(|| Decision::Defer {
                        tid: head,
                        mutex,
                        reason: DeferReason::MutexBusy,
                    });
                    // Priority donation: the owner is pulled to the front
                    // (per-mutex-deterministic target). A suspended owner
                    // is no longer queued; the token then waits here and
                    // the monitor core hands over on the owner's unlock.
                    let owner = self.sync.owner(mutex).expect("queued implies owned");
                    if self.queue.contains(&owner) {
                        self.remove_from_queue(owner);
                        self.queue.push_front(owner);
                        continue; // the owner may itself be gated
                    }
                    return;
                }
            }
        }
    }
}

impl Scheduler for MatScheduler {
    fn kind(&self) -> SchedulerKind {
        match self.mode {
            MatMode::Plain => SchedulerKind::Mat,
            MatMode::LastLock => SchedulerKind::MatLL,
        }
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    /// Multiple monitors can be mid-handoff at once (suspended holders),
    /// so only the per-mutex grant orders are replica-invariant.
    fn global_order_deterministic(&self) -> bool {
        false
    }

    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        // Gate-blocked lock requests are contention the monitor layer
        // never sees — the "MAT wait queue" of §3.4.
        d.lock_queued += self.gated.len() as u32;
        // Runnable threads queued behind the token holder.
        d.sched_queue = self.queue.len().saturating_sub(1) as u32;
        d
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, method, .. } => {
                if self.keeps_books() {
                    self.book.on_request(tid, method);
                }
                self.queue.push_back(tid);
                out.decision(|| Decision::Admit { tid });
                out.push(SchedAction::Admit(tid));
                // In last-lock mode a provably lock-free request never
                // needs the token at all.
                self.drop_if_lock_done(tid, out);
                self.exercise_head(out);
            }
            SchedEvent::LockRequested {
                tid,
                sync_id,
                mutex,
            } => {
                if self.keeps_books() {
                    self.book.on_lock(tid, sync_id, mutex);
                }
                self.gated.insert(tid.index(), mutex);
                if self.primary() == Some(tid) {
                    self.exercise_head(out);
                } else {
                    // Gated until the queue rotates to it.
                    out.decision(|| Decision::Defer {
                        tid,
                        mutex,
                        reason: DeferReason::Token,
                    });
                }
            }
            SchedEvent::Unlocked {
                tid,
                sync_id,
                mutex,
            } => {
                if self.keeps_books() {
                    self.book.on_unlock(tid, sync_id, mutex);
                }
                if let Some(g) = self.sync.unlock(tid, mutex) {
                    if g.from_wait {
                        // Notified waiter re-acquired: re-enter the queue
                        // (see the module-docs CV caveat).
                        self.queue.push_back(g.tid);
                    }
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    out.push(SchedAction::Resume(g.tid));
                }
                self.drop_if_lock_done(tid, out);
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                if let Some(g) = self.sync.wait(tid, mutex) {
                    if g.from_wait {
                        self.queue.push_back(g.tid);
                    }
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    out.push(SchedAction::Resume(g.tid));
                }
                if self.primary() == Some(tid) {
                    out.decision(|| Decision::TokenRelease {
                        tid,
                        last_lock: false,
                    });
                }
                self.remove_from_queue(tid);
                self.exercise_head(out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { tid } => {
                if self.primary() == Some(tid) {
                    out.decision(|| Decision::TokenRelease {
                        tid,
                        last_lock: false,
                    });
                }
                self.remove_from_queue(tid);
                self.exercise_head(out);
            }
            SchedEvent::NestedCompleted { tid } => {
                out.push(SchedAction::Resume(tid));
                self.queue.push_back(tid);
                self.drop_if_lock_done(tid, out);
                self.exercise_head(out);
            }
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid));
                debug_assert!(!self.gated.contains(tid.index()));
                self.remove_from_queue(tid);
                if self.keeps_books() {
                    self.book.on_finish(tid);
                }
                self.exercise_head(out);
            }
            SchedEvent::LockInfo {
                tid,
                sync_id,
                mutex,
            } => {
                if self.keeps_books() {
                    self.book.on_lock_info(tid, sync_id, mutex);
                }
            }
            SchedEvent::SyncIgnored { tid, sync_id } => {
                if self.keeps_books() {
                    self.book.on_ignore(tid, sync_id);
                }
                // An ignore can retire the final table entry.
                self.drop_if_lock_done(tid, out);
            }
            SchedEvent::Control(_) => {}
        }
        self.note_primary(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookkeeping::StaticSyncEntry;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }
    fn lock(tid: u32, sid: u32, m: u32) -> SchedEvent {
        SchedEvent::LockRequested {
            tid: t(tid),
            sync_id: SyncId::new(sid),
            mutex: MutexId::new(m),
        }
    }
    fn unlock(tid: u32, sid: u32, m: u32) -> SchedEvent {
        SchedEvent::Unlocked {
            tid: t(tid),
            sync_id: SyncId::new(sid),
            mutex: MutexId::new(m),
        }
    }

    fn plain() -> MatScheduler {
        MatScheduler::new(MatMode::Plain, Arc::new(LockTable::unanalyzed(4)))
    }

    #[test]
    fn all_threads_admitted_immediately() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        s.on_event(&arrive(2), &mut out);
        assert_eq!(
            out.actions,
            vec![
                SchedAction::Admit(t(0)),
                SchedAction::Admit(t(1)),
                SchedAction::Admit(t(2))
            ]
        );
        assert_eq!(s.primary(), Some(t(0)));
    }

    #[test]
    fn secondary_lock_gates_even_on_free_mutex() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // Secondary t1 requests a mutex nobody holds — still gated
        // ("no matter whether the locks conflict or not", §3.4).
        s.on_event(&lock(1, 0, 7), &mut out);
        assert!(out.actions.is_empty());
        // Primary t0 locks a *different* mutex: granted.
        s.on_event(&lock(0, 1, 8), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        // Primary finishes → t1 heads the queue, its pending lock lands.
        s.on_event(&unlock(0, 1, 8), &mut out);
        s.on_event(&SchedEvent::ThreadFinished { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        assert_eq!(s.primary(), Some(t(1)));
        assert_eq!(s.sync_core().owner(MutexId::new(7)), Some(t(1)));
    }

    #[test]
    fn nested_invocation_rotates_the_token() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        for i in 0..3 {
            s.on_event(&arrive(i), &mut out);
        }
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(s.primary(), Some(t(1)));
        // Wake-up: t0 re-enters at the back; t1 keeps the token.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert_eq!(s.primary(), Some(t(1)));
        out.clear();
        // t1 finishes → t2 (ahead of the re-entered t0) gets the token.
        s.on_event(&SchedEvent::ThreadFinished { tid: t(1) }, &mut out);
        assert_eq!(s.primary(), Some(t(2)));
        s.on_event(&SchedEvent::ThreadFinished { tid: t(2) }, &mut out);
        assert_eq!(s.primary(), Some(t(0)));
    }

    #[test]
    fn suspended_holder_keeps_mutex_until_return() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // Primary t0 locks m5, then suspends in a nested call holding it.
        s.on_event(&lock(0, 0, 5), &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(s.primary(), Some(t(1)));
        // New primary t1 requests m5 → queued in the monitor layer; the
        // owner is off-queue (suspended), so the token waits here.
        s.on_event(&lock(1, 1, 5), &mut out);
        assert!(out.actions.is_empty());
        // t0 returns (tail of the queue), unlocks m5 → t1 granted.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        assert_eq!(s.sync_core().owner(MutexId::new(5)), Some(t(1)));
        assert_eq!(s.primary(), Some(t(1)));
    }

    #[test]
    fn wait_removes_from_queue_and_notify_reenters() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 0, 3), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: MutexId::new(3),
            },
            &mut out,
        );
        assert_eq!(s.primary(), Some(t(1)));
        assert!(out.actions.is_empty());
        // t1 (primary) locks m3, notifies, unlocks: t0 re-acquires and
        // re-enters the token queue behind t1.
        s.on_event(&lock(1, 1, 3), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::NotifyCalled {
                tid: t(1),
                mutex: MutexId::new(3),
                all: false,
            },
            &mut out,
        );
        s.on_event(&unlock(1, 1, 3), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(s.sync_core().owner(MutexId::new(3)), Some(t(0)));
        assert_eq!(s.primary(), Some(t(1)));
    }

    #[test]
    fn donation_pulls_gated_holder_to_the_front() {
        let mut s = plain();
        let mut out = SchedOutput::new();
        for i in 0..3 {
            s.on_event(&arrive(i), &mut out);
        }
        out.clear();
        // Primary t0 locks m1, nests holding it → token to t1.
        s.on_event(&lock(0, 0, 1), &mut out);
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        out.clear();
        assert_eq!(s.primary(), Some(t(1)));
        // t0 returns (re-enters at the back, still holding m1), then
        // gates on m2 while holding m1.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        out.clear();
        s.on_event(&lock(0, 1, 2), &mut out);
        assert!(out.actions.is_empty());
        // Primary t1 requests m1 (held by the gated t0): donation pulls
        // t0 to the front and forwards its m2 request.
        s.on_event(&lock(1, 2, 1), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(s.primary(), Some(t(0)));
        assert_eq!(s.sync_core().owner(MutexId::new(2)), Some(t(0)));
        // t0 finishes its critical sections → m1 flows to t1.
        out.clear();
        s.on_event(&unlock(0, 1, 2), &mut out);
        s.on_event(&unlock(0, 0, 1), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    fn ll_table() -> Arc<LockTable> {
        // Method 0: single non-repeatable sync block s0.
        Arc::new(LockTable::new(vec![Some(vec![StaticSyncEntry {
            sync_id: SyncId::new(0),
            repeatable: false,
        }])]))
    }

    #[test]
    fn last_lock_mode_releases_token_after_final_unlock() {
        let mut s = MatScheduler::new(MatMode::LastLock, ll_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t1 (secondary) gates on its lock.
        s.on_event(&lock(1, 0, 7), &mut out);
        assert!(out.actions.is_empty());
        // Primary t0 locks/unlocks its only sync block, then keeps
        // computing its reply. Plain MAT would hold the token to the end;
        // last-lock MAT hands it over at the unlock (Figure 2(b)).
        s.on_event(&lock(0, 0, 9), &mut out);
        out.clear();
        s.on_event(&unlock(0, 0, 9), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(1))],
            "handover before t0 terminates"
        );
        assert_eq!(s.primary(), Some(t(1)));
    }

    #[test]
    fn plain_mode_waits_for_termination() {
        let mut s = MatScheduler::new(MatMode::Plain, ll_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(1, 0, 7), &mut out);
        s.on_event(&lock(0, 0, 9), &mut out);
        out.clear();
        s.on_event(&unlock(0, 0, 9), &mut out);
        assert!(
            out.actions.is_empty(),
            "plain MAT keeps the token after the last unlock"
        );
        s.on_event(&SchedEvent::ThreadFinished { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn last_lock_mode_skips_lockfree_threads_entirely() {
        // Method 1 has no sync blocks: a lock-free thread.
        let table = Arc::new(LockTable::new(vec![
            Some(vec![StaticSyncEntry {
                sync_id: SyncId::new(0),
                repeatable: false,
            }]),
            Some(vec![]),
        ]));
        let mut s = MatScheduler::new(MatMode::LastLock, table);
        let mut out = SchedOutput::new();
        // t0 is lock-free (method 1), t1 wants a lock (method 0).
        s.on_event(
            &SchedEvent::RequestArrived {
                tid: t(0),
                method: MethodIdx::new(1),
                request_seq: 0,
                dummy: false,
            },
            &mut out,
        );
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t0 never entered the queue: t1 holds the token and locks at once.
        assert_eq!(s.primary(), Some(t(1)));
        s.on_event(&lock(1, 0, 7), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }
}
