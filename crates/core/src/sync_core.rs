//! Shared monitor mechanics: binary reentrant mutexes with 1:1 condition
//! variables (the Java monitor model of paper §2).
//!
//! Every decision module embeds a `SyncCore`. The core does the
//! *mechanics* — ownership, reentrancy counts, FIFO waiter queues, wait
//! sets with saved recursion counts — while the decision module does the
//! *policy* (which requests reach the core, and in manual-grant mode, who
//! is granted a free monitor). All container iteration orders here are
//! insertion orders, so the mechanics are deterministic by construction.
//!
//! Mutex ids are dense small integers (DESIGN.md "Dense-ID invariant"),
//! so the monitor table is a flat `Vec` indexed by `MutexId` — no hashing
//! or tree walks on the per-event hot path — and a per-thread held-count
//! table answers `holds_none` in O(1).

use crate::ids::ThreadId;
use crate::obs::DepthSample;
use dmt_lang::MutexId;
use std::collections::VecDeque;

/// Result of forwarding a lock request into the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The monitor was free (or already owned by the requester) — the
    /// thread holds it now and may continue.
    Acquired,
    /// The monitor is owned by another thread; the requester was queued.
    Queued,
}

/// A grant produced by the core: `tid` now owns the monitor it was blocked
/// on. `from_wait` distinguishes a re-acquisition after `wait` from a
/// plain lock grant (the engine resumes the thread either way; traces keep
/// the distinction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    pub tid: ThreadId,
    pub mutex: MutexId,
    pub from_wait: bool,
}

#[derive(Clone, Debug)]
struct Waiter {
    tid: ThreadId,
    /// `Some(saved)` if this entry is a notified thread re-acquiring the
    /// monitor with its saved recursion count; `None` for a fresh lock.
    reacquire: Option<u32>,
}

#[derive(Clone, Debug, Default)]
struct MutexState {
    /// Current owner and its recursion count.
    owner: Option<(ThreadId, u32)>,
    /// FIFO queue of threads blocked on the monitor (fresh lockers and
    /// notified re-acquirers, in arrival order).
    queue: VecDeque<Waiter>,
    /// Threads parked in `wait`, in the order they called it, with their
    /// saved recursion counts.
    wait_set: VecDeque<(ThreadId, u32)>,
}

/// The monitor table: a flat `Vec` indexed by the dense `MutexId`, grown
/// on first touch and never shrunk, so every per-event operation is O(1)
/// indexing and diagnostic iteration is mutex-id order.
#[derive(Clone, Debug)]
pub struct SyncCore {
    mutexes: Vec<MutexState>,
    /// Per-thread count of distinct monitors currently owned, indexed by
    /// the dense `ThreadId`. Keeps `holds_none` off the monitor table.
    held: Vec<u32>,
    /// In auto mode a full release immediately grants the queue head. In
    /// manual mode (LSA followers, PMAT) releases leave the monitor free
    /// and the decision module grants explicitly.
    auto_grant: bool,
    /// Threads queued on any monitor, maintained incrementally so the
    /// queue-depth sampler stays O(1) per sample.
    queued_total: u32,
    /// Threads parked in any wait set (same incremental discipline).
    waiting_total: u32,
}

impl SyncCore {
    pub fn new(auto_grant: bool) -> Self {
        SyncCore {
            mutexes: Vec::new(),
            held: Vec::new(),
            auto_grant,
            queued_total: 0,
            waiting_total: 0,
        }
    }

    fn entry(&mut self, m: MutexId) -> &mut MutexState {
        let i = m.index();
        if i >= self.mutexes.len() {
            self.mutexes.resize_with(i + 1, MutexState::default);
        }
        &mut self.mutexes[i]
    }

    fn peek(&self, m: MutexId) -> Option<&MutexState> {
        self.mutexes.get(m.index())
    }

    /// `tid` took ownership of one more distinct monitor.
    fn held_inc(&mut self, tid: ThreadId) {
        let i = tid.index();
        if i >= self.held.len() {
            self.held.resize(i + 1, 0);
        }
        self.held[i] += 1;
    }

    /// `tid` fully released one distinct monitor.
    fn held_dec(&mut self, tid: ThreadId) {
        self.held[tid.index()] -= 1;
    }

    /// Forwards a lock request. Reentrant acquisition by the current owner
    /// always succeeds. Panics if `tid` is already queued on `m` — a
    /// thread has at most one outstanding request.
    pub fn lock(&mut self, tid: ThreadId, m: MutexId) -> LockOutcome {
        let st = self.entry(m);
        match st.owner {
            None => {
                debug_assert!(st.queue.iter().all(|w| w.tid != tid));
                st.owner = Some((tid, 1));
                self.held_inc(tid);
                LockOutcome::Acquired
            }
            Some((owner, count)) if owner == tid => {
                st.owner = Some((owner, count + 1));
                LockOutcome::Acquired
            }
            Some(_) => {
                assert!(
                    st.queue.iter().all(|w| w.tid != tid),
                    "{tid} queued twice on {m}"
                );
                st.queue.push_back(Waiter {
                    tid,
                    reacquire: None,
                });
                self.queued_total += 1;
                LockOutcome::Queued
            }
        }
    }

    /// Releases one level of the monitor. On full release in auto mode the
    /// queue head (if any) is granted and returned. (At most one grant can
    /// result from a release — the monitor has a single new owner.)
    pub fn unlock(&mut self, tid: ThreadId, m: MutexId) -> Option<Grant> {
        let st = self.entry(m);
        match st.owner {
            Some((owner, count)) if owner == tid => {
                if count > 1 {
                    st.owner = Some((owner, count - 1));
                    None
                } else {
                    st.owner = None;
                    self.held_dec(tid);
                    self.after_full_release(m)
                }
            }
            other => panic!("{tid} unlocking {m} owned by {other:?}"),
        }
    }

    /// `wait`: fully releases the monitor (saving the recursion count),
    /// parks the thread in the wait set. Panics unless `tid` owns `m` —
    /// Java's `IllegalMonitorStateException` is an engine bug here.
    pub fn wait(&mut self, tid: ThreadId, m: MutexId) -> Option<Grant> {
        let st = self.entry(m);
        match st.owner {
            Some((owner, count)) if owner == tid => {
                st.wait_set.push_back((tid, count));
                st.owner = None;
                self.waiting_total += 1;
                self.held_dec(tid);
                self.after_full_release(m)
            }
            other => panic!("{tid} waiting on {m} owned by {other:?}"),
        }
    }

    /// `notify`/`notifyAll`: moves the first (or every) waiter from the
    /// wait set to the tail of the lock queue as re-acquirers. Returns how
    /// many waiters moved (they resume only once re-granted; they appear
    /// in [`SyncCore::queued`]). Panics unless the caller owns the
    /// monitor.
    pub fn notify(&mut self, tid: ThreadId, m: MutexId, all: bool) -> usize {
        let st = self.entry(m);
        match st.owner {
            Some((owner, _)) if owner == tid => {}
            other => panic!("{tid} notifying {m} owned by {other:?}"),
        }
        let n = if all {
            st.wait_set.len()
        } else {
            usize::from(!st.wait_set.is_empty())
        };
        for _ in 0..n {
            let (w, saved) = st.wait_set.pop_front().expect("wait set size checked");
            st.queue.push_back(Waiter {
                tid: w,
                reacquire: Some(saved),
            });
        }
        self.waiting_total -= n as u32;
        self.queued_total += n as u32;
        n
    }

    fn after_full_release(&mut self, m: MutexId) -> Option<Grant> {
        if !self.auto_grant {
            return None;
        }
        self.grant_next(m)
    }

    /// Manual-mode (and internal) granting: if `m` is free and has queued
    /// waiters, grants the queue head.
    pub fn grant_next(&mut self, m: MutexId) -> Option<Grant> {
        let st = self.entry(m);
        if st.owner.is_some() {
            return None;
        }
        let w = st.queue.pop_front()?;
        st.owner = Some((w.tid, w.reacquire.unwrap_or(1)));
        self.queued_total -= 1;
        self.held_inc(w.tid);
        Some(Grant {
            tid: w.tid,
            mutex: m,
            from_wait: w.reacquire.is_some(),
        })
    }

    /// Manual-mode granting of a *specific* queued thread (LSA followers
    /// replay the leader's order, which may not be FIFO arrival order).
    /// Returns `None` if `m` is held or `tid` is not queued on it.
    pub fn grant_to(&mut self, tid: ThreadId, m: MutexId) -> Option<Grant> {
        let st = self.entry(m);
        if st.owner.is_some() {
            return None;
        }
        let pos = st.queue.iter().position(|w| w.tid == tid)?;
        let w = st.queue.remove(pos).expect("position just found");
        st.owner = Some((w.tid, w.reacquire.unwrap_or(1)));
        self.queued_total -= 1;
        self.held_inc(w.tid);
        Some(Grant {
            tid: w.tid,
            mutex: m,
            from_wait: w.reacquire.is_some(),
        })
    }

    pub fn owner(&self, m: MutexId) -> Option<ThreadId> {
        self.peek(m).and_then(|s| s.owner.map(|(t, _)| t))
    }

    pub fn is_free(&self, m: MutexId) -> bool {
        self.owner(m).is_none()
    }

    pub fn holds(&self, tid: ThreadId, m: MutexId) -> bool {
        self.owner(m) == Some(tid)
    }

    /// Threads queued on `m` (fresh lockers and re-acquirers), FIFO order.
    pub fn queued(&self, m: MutexId) -> Vec<ThreadId> {
        self.peek(m)
            .map(|s| s.queue.iter().map(|w| w.tid).collect())
            .unwrap_or_default()
    }

    /// Is `tid` queued on `m`?
    pub fn is_queued(&self, tid: ThreadId, m: MutexId) -> bool {
        self.peek(m)
            .is_some_and(|s| s.queue.iter().any(|w| w.tid == tid))
    }

    /// Threads currently parked in `m`'s wait set, in `wait` order.
    pub fn wait_set(&self, m: MutexId) -> Vec<ThreadId> {
        self.peek(m)
            .map(|s| s.wait_set.iter().map(|&(t, _)| t).collect())
            .unwrap_or_default()
    }

    /// Is `tid` currently parked in `m`'s wait set?
    pub fn is_waiting(&self, tid: ThreadId, m: MutexId) -> bool {
        self.peek(m)
            .is_some_and(|s| s.wait_set.iter().any(|&(t, _)| t == tid))
    }

    /// Does `tid` hold no monitor at all? O(1) via the per-thread held
    /// count — this sits on the hot path (MAT-LL checks it per event).
    pub fn holds_none(&self, tid: ThreadId) -> bool {
        self.held.get(tid.index()).copied().unwrap_or(0) == 0
    }

    /// Every monitor currently held by `tid` (diagnostics/invariants —
    /// scans the table; use [`SyncCore::holds_none`] on hot paths).
    pub fn held_by(&self, tid: ThreadId) -> Vec<MutexId> {
        if self.holds_none(tid) {
            return Vec::new();
        }
        self.mutexes
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.owner, Some((o, _)) if o == tid))
            .map(|(i, _)| MutexId::new(i as u32))
            .collect()
    }

    /// True if no thread holds, queues on, or waits on any monitor —
    /// the quiescence invariant checked at end of every experiment.
    pub fn is_quiescent(&self) -> bool {
        self.mutexes
            .iter()
            .all(|s| s.owner.is_none() && s.queue.is_empty() && s.wait_set.is_empty())
    }

    /// Monitor-contention census: threads queued on busy monitors and
    /// threads parked in wait sets, from the incremental totals — O(1),
    /// safe on the per-event path. Admission and scheduler-queue depths
    /// are the decision module's to add (see `Scheduler::depths`).
    pub fn depths(&self) -> DepthSample {
        DepthSample {
            lock_queued: self.queued_total,
            wait_set: self.waiting_total,
            ..DepthSample::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }

    #[test]
    fn free_lock_acquires() {
        let mut c = SyncCore::new(true);
        assert_eq!(c.lock(t(1), m(0)), LockOutcome::Acquired);
        assert_eq!(c.owner(m(0)), Some(t(1)));
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        assert_eq!(c.lock(t(2), m(0)), LockOutcome::Queued);
        assert_eq!(c.lock(t(3), m(0)), LockOutcome::Queued);
        assert_eq!(c.queued(m(0)), vec![t(2), t(3)]);
        let g = c.unlock(t(1), m(0));
        assert_eq!(
            g,
            Some(Grant {
                tid: t(2),
                mutex: m(0),
                from_wait: false
            })
        );
        assert_eq!(c.owner(m(0)), Some(t(2)));
        let g = c.unlock(t(2), m(0));
        assert_eq!(g.unwrap().tid, t(3));
    }

    #[test]
    fn reentrant_lock_and_unlock() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        assert_eq!(c.lock(t(1), m(0)), LockOutcome::Acquired);
        c.lock(t(2), m(0)); // queued
        assert!(c.unlock(t(1), m(0)).is_none()); // still held (count 1)
        assert_eq!(c.owner(m(0)), Some(t(1)));
        let g = c.unlock(t(1), m(0));
        assert_eq!(g.unwrap().tid, t(2));
    }

    #[test]
    fn wait_releases_fully_and_restores_count() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.lock(t(1), m(0)); // count 2
        c.lock(t(2), m(0)); // queued
        let g = c.wait(t(1), m(0));
        // Full release despite count 2 — t2 is granted.
        assert_eq!(g.unwrap().tid, t(2));
        assert_eq!(c.wait_set(m(0)), vec![t(1)]);
        // t2 notifies and unlocks: t1 re-acquires with restored count 2.
        assert_eq!(c.notify(t(2), m(0), false), 1);
        assert_eq!(c.queued(m(0)), vec![t(1)]);
        let g = c.unlock(t(2), m(0));
        assert_eq!(
            g,
            Some(Grant {
                tid: t(1),
                mutex: m(0),
                from_wait: true
            })
        );
        // Needs two unlocks to release (count was restored).
        assert!(c.unlock(t(1), m(0)).is_none());
        assert_eq!(c.owner(m(0)), Some(t(1)));
        c.unlock(t(1), m(0));
        assert!(c.is_free(m(0)));
    }

    #[test]
    fn notify_all_moves_every_waiter_in_order() {
        let mut c = SyncCore::new(true);
        for i in 1..=3 {
            c.lock(t(i), m(0));
            if c.owner(m(0)) == Some(t(i)) {
                c.wait(t(i), m(0));
            }
        }
        // All three ended up waiting (each acquired the freed monitor).
        assert_eq!(c.wait_set(m(0)), vec![t(1), t(2), t(3)]);
        c.lock(t(9), m(0));
        assert_eq!(c.notify(t(9), m(0), true), 3);
        assert!(c.wait_set(m(0)).is_empty());
        assert_eq!(c.queued(m(0)), vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn notify_without_waiters_is_noop() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        assert_eq!(c.notify(t(1), m(0), false), 0);
        assert_eq!(c.notify(t(1), m(0), true), 0);
    }

    #[test]
    fn manual_mode_defers_grants() {
        let mut c = SyncCore::new(false);
        c.lock(t(1), m(0));
        c.lock(t(2), m(0));
        c.lock(t(3), m(0));
        assert!(c.unlock(t(1), m(0)).is_none());
        assert!(c.is_free(m(0)));
        assert_eq!(c.queued(m(0)), vec![t(2), t(3)]);
        // Grant out of FIFO order, as an LSA follower replaying the leader.
        let g = c.grant_to(t(3), m(0)).unwrap();
        assert_eq!(g.tid, t(3));
        assert!(c.grant_to(t(2), m(0)).is_none()); // now held
        c.unlock(t(3), m(0));
        let g = c.grant_next(m(0)).unwrap();
        assert_eq!(g.tid, t(2));
    }

    #[test]
    fn grant_next_on_empty_or_held_is_none() {
        let mut c = SyncCore::new(false);
        assert!(c.grant_next(m(0)).is_none());
        c.lock(t(1), m(0));
        assert!(c.grant_next(m(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "unlocking")]
    fn unlock_by_non_owner_panics() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.unlock(t(2), m(0));
    }

    #[test]
    #[should_panic(expected = "waiting on")]
    fn wait_without_ownership_panics() {
        let mut c = SyncCore::new(true);
        c.wait(t(1), m(0));
    }

    #[test]
    #[should_panic(expected = "notifying")]
    fn notify_without_ownership_panics() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.notify(t(2), m(0), false);
    }

    #[test]
    #[should_panic(expected = "queued twice")]
    fn double_queue_panics() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.lock(t(2), m(0));
        c.lock(t(2), m(0));
    }

    #[test]
    fn held_by_and_quiescence() {
        let mut c = SyncCore::new(true);
        assert!(c.is_quiescent());
        assert!(c.holds_none(t(1)));
        c.lock(t(1), m(0));
        c.lock(t(1), m(5));
        assert_eq!(c.held_by(t(1)), vec![m(0), m(5)]);
        assert!(!c.holds_none(t(1)));
        assert!(!c.is_quiescent());
        c.unlock(t(1), m(0));
        c.unlock(t(1), m(5));
        assert!(c.holds_none(t(1)));
        assert!(c.is_quiescent());
    }

    #[test]
    fn holds_none_tracks_reentrancy_and_handoffs() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.lock(t(1), m(0)); // reentrant: still one distinct monitor
        assert!(!c.holds_none(t(1)));
        c.unlock(t(1), m(0));
        assert!(!c.holds_none(t(1)), "count 1 remains");
        c.lock(t(2), m(0)); // queued
        c.unlock(t(1), m(0)); // full release hands over to t2
        assert!(c.holds_none(t(1)));
        assert!(!c.holds_none(t(2)));
        // wait releases ownership too.
        c.wait(t(2), m(0));
        assert!(c.holds_none(t(2)));
    }

    #[test]
    fn is_queued_reports_pending() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        c.lock(t(2), m(0));
        assert!(c.is_queued(t(2), m(0)));
        assert!(!c.is_queued(t(1), m(0)));
        assert!(!c.is_queued(t(2), m(1)));
    }

    #[test]
    fn depth_totals_track_queue_and_wait_set_incrementally() {
        let mut c = SyncCore::new(true);
        assert_eq!(c.depths(), DepthSample::default());
        c.lock(t(1), m(0));
        c.lock(t(2), m(0)); // queued
        c.lock(t(3), m(0)); // queued
        assert_eq!(c.depths().lock_queued, 2);
        c.unlock(t(1), m(0)); // grants t2
        assert_eq!(c.depths().lock_queued, 1);
        c.wait(t(2), m(0)); // t2 waits; auto-grant hands to t3
        assert_eq!(c.depths().lock_queued, 0);
        assert_eq!(c.depths().wait_set, 1);
        c.notify(t(3), m(0), true); // t2 back to the lock queue
        assert_eq!(c.depths().wait_set, 0);
        assert_eq!(c.depths().lock_queued, 1);
        c.unlock(t(3), m(0)); // re-grants t2
        assert_eq!(c.depths().lock_queued, 0);
        c.unlock(t(2), m(0));
        assert!(c.is_quiescent());
        assert_eq!(c.depths(), DepthSample::default());
    }

    #[test]
    fn grant_to_decrements_queue_depth() {
        let mut c = SyncCore::new(false);
        c.lock(t(1), m(0));
        c.lock(t(2), m(0));
        c.lock(t(3), m(0));
        c.unlock(t(1), m(0));
        assert_eq!(c.depths().lock_queued, 2);
        c.grant_to(t(3), m(0)).unwrap();
        assert_eq!(c.depths().lock_queued, 1);
    }

    #[test]
    fn distinct_mutexes_are_independent() {
        let mut c = SyncCore::new(true);
        c.lock(t(1), m(0));
        assert_eq!(c.lock(t(2), m(1)), LockOutcome::Acquired);
        assert_eq!(c.owner(m(0)), Some(t(1)));
        assert_eq!(c.owner(m(1)), Some(t(2)));
    }
}
