//! SEQ — sequential request execution in total order.
//!
//! The strategy most object replication systems use (paper §1): one
//! request at a time, started in delivery order. It trivially eliminates
//! scheduling nondeterminism, wastes multi-CPU hardware, leaves nested-
//! invocation idle time unused, and deadlocks on re-entrant invocation
//! chains and on `wait` (nothing else can ever run to notify) — the
//! motivations for everything else in the paper.

use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::{Decision, DepthSample, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::sync_core::{LockOutcome, SyncCore};
use std::collections::VecDeque;

pub struct SeqScheduler {
    sync: SyncCore,
    active: Option<ThreadId>,
    pending: VecDeque<ThreadId>,
}

impl SeqScheduler {
    pub fn new() -> Self {
        SeqScheduler {
            sync: SyncCore::new(true),
            active: None,
            pending: VecDeque::new(),
        }
    }

    fn admit_next(&mut self, out: &mut SchedOutput) {
        debug_assert!(self.active.is_none());
        if let Some(next) = self.pending.pop_front() {
            self.active = Some(next);
            out.decision(|| Decision::Admit { tid: next });
            out.push(SchedAction::Admit(next));
        }
    }
}

impl Default for SeqScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for SeqScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Seq
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        d.admission = self.pending.len() as u32;
        d
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, .. } => {
                self.pending.push_back(tid);
                if self.active.is_none() {
                    self.admit_next(out);
                } else {
                    out.decision(|| Decision::AdmitDefer { tid });
                }
            }
            SchedEvent::LockRequested { tid, mutex, .. } => {
                debug_assert_eq!(self.active, Some(tid), "non-active thread ran under SEQ");
                // With a single thread every monitor is free or reentrant.
                let outcome = self.sync.lock(tid, mutex);
                assert_eq!(outcome, LockOutcome::Acquired, "SEQ lock can never contend");
                out.decision(|| Decision::Grant {
                    tid,
                    mutex,
                    from_wait: false,
                });
                out.push(SchedAction::Resume(tid));
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                let grant = self.sync.unlock(tid, mutex);
                debug_assert!(grant.is_none());
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                // SEQ cannot service a wait: no other request will ever run
                // to notify. The thread stays parked; the engine's stall
                // detector reports the deadlock (paper §1 calls the
                // sequential model "deadlock prone").
                let grant = self.sync.wait(tid, mutex);
                debug_assert!(grant.is_none());
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { .. } => {
                // The idle time stays unused: no admission of other work.
            }
            SchedEvent::NestedCompleted { tid } => {
                debug_assert_eq!(self.active, Some(tid));
                out.push(SchedAction::Resume(tid));
            }
            SchedEvent::ThreadFinished { tid } => {
                debug_assert_eq!(self.active, Some(tid));
                debug_assert!(self.sync.holds_none(tid));
                self.active = None;
                self.admit_next(out);
            }
            SchedEvent::LockInfo { .. }
            | SchedEvent::SyncIgnored { .. }
            | SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }

    #[test]
    fn one_request_at_a_time_in_order() {
        let mut s = SeqScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        s.on_event(&arrive(2), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(0))]);
        out.clear();
        s.on_event(&SchedEvent::ThreadFinished { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(1))]);
        out.clear();
        s.on_event(&SchedEvent::ThreadFinished { tid: t(1) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(2))]);
    }

    #[test]
    fn locks_always_granted() {
        let mut s = SeqScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::LockRequested {
                tid: t(0),
                sync_id: SyncId::new(0),
                mutex: MutexId::new(3),
            },
            &mut out,
        );
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn nested_idle_time_unused() {
        let mut s = SeqScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert!(
            out.actions.is_empty(),
            "SEQ must not admit during nested calls"
        );
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn wait_deadlocks_silently_for_stall_detector() {
        let mut s = SeqScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::LockRequested {
                tid: t(0),
                sync_id: SyncId::new(0),
                mutex: MutexId::new(3),
            },
            &mut out,
        );
        out.clear();
        s.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: MutexId::new(3),
            },
            &mut out,
        );
        assert!(out.actions.is_empty());
        assert_eq!(s.sync_core().wait_set(MutexId::new(3)), vec![t(0)]);
    }
}
