//! PDS — preemptive deterministic scheduling (paper §3.3, after Basile
//! et al., DSN'03).
//!
//! A pool of `batch_size` threads processes requests. Each pool member
//! runs freely until it requests a lock; the request is *collected*, not
//! granted. Only when every member has either collected a request or
//! finished does the grant phase run, forwarding collected requests in
//! thread-age order (conflicts on the same mutex therefore resolve
//! identically on every replica). Members then execute their critical
//! sections and run on to their next lock request, which the next round
//! collects. `locks_per_round > 1` is the paper's "optimised version":
//! a member may receive that many grants per round.
//!
//! **Suspension handling** (the part the paper calls "even more
//! complicated"): a member that suspends — nested invocation or `wait` —
//! *leaves the pool*. Its wake-up is a totally ordered event, and its
//! next lock request re-enters through the same waiting-room queue fresh
//! requests use, so round membership stays a deterministic function of
//! the total order. (The naive alternative, letting a woken member join
//! whatever round its replica happens to be in, makes same-mutex grant
//! order depend on local timing — our determinism checker caught exactly
//! that.) A woken thread that still *holds* monitors rejoins the pool
//! immediately: it must be able to run to its unlocks, or members queued
//! on those monitors could never proceed. This immediate rejoin is the
//! one residual timing-sensitive path; it only matters for objects that
//! suspend *inside* critical sections, which the paper's model (and our
//! workloads) avoid.
//!
//! Starvation (paper §3.3): when fewer live requests than pool slots
//! exist while someone waits for a grant, the scheduler emits
//! [`SchedAction::RequestDummy`]; the engine routes a no-op request
//! through the group communication system so every replica sees the dummy
//! at the same position — the "higher communication overhead" the paper
//! prices in.

use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::{Decision, DeferReason, DepthSample, SchedOutput};
use crate::scheduler::{PdsConfig, Scheduler, SchedulerKind};
use crate::slot::SlotMap;
use crate::sync_core::{LockOutcome, SyncCore};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    /// In the waiting room (fresh request or re-entry after suspension).
    Queued,
    /// Pool member, running towards its next lock request.
    Running,
    /// Pool member, lock request collected, awaiting the grant phase.
    Collected,
    /// Pool member, granted but the monitor was held; in the monitor
    /// queue.
    CoreBlocked,
    /// Not in the pool: suspended (nested call / wait set) or paroled
    /// (woken, running, but without lock permission).
    Out,
    Finished,
}

struct Member {
    st: St,
    /// Mirror of `pool` membership so the hot path never scans the pool
    /// vector to answer "is this thread a member?".
    in_pool: bool,
    /// Pending lock request (Collected, or Queued re-entry).
    pending: Option<dmt_lang::MutexId>,
    grants_used: u32,
    dummy: bool,
}

#[derive(Clone, Copy, Debug)]
enum RoomEntry {
    /// Never ran: admission emits `Admit`.
    Fresh(ThreadId),
    /// Woken thread gated at a lock: admission collects its request.
    Reentry(ThreadId),
}

impl RoomEntry {
    fn tid(self) -> ThreadId {
        match self {
            RoomEntry::Fresh(t) | RoomEntry::Reentry(t) => t,
        }
    }
}

pub struct PdsScheduler {
    cfg: PdsConfig,
    sync: SyncCore,
    /// Member records, indexed by the dense thread id. Every request ever
    /// admitted keeps its slot (threads are never forgotten), so
    /// `real_unfinished` tracks liveness instead of a full scan.
    threads: SlotMap<Member>,
    waiting_room: VecDeque<RoomEntry>,
    /// Pool membership, kept age-sorted.
    pool: Vec<ThreadId>,
    dummies_in_flight: usize,
    /// Count of non-dummy members not yet `Finished` — the O(1) answer
    /// to `real_work_left`, which runs on every event.
    real_unfinished: usize,
    /// Pool members not yet settled (still `Running` towards their next
    /// lock request). `barrier_met` runs after every event, so this is
    /// maintained incrementally instead of scanning the pool.
    pool_unsettled: usize,
    /// Pool members in `Collected` — the O(1) answer to "does anyone
    /// wait for a grant?" in `fill_slots`.
    pool_collected: usize,
}

impl PdsScheduler {
    pub fn new(cfg: PdsConfig) -> Self {
        assert!(cfg.batch_size >= 1, "PDS needs at least one pool slot");
        assert!(cfg.locks_per_round >= 1);
        PdsScheduler {
            cfg,
            sync: SyncCore::new(true),
            threads: SlotMap::new(),
            waiting_room: VecDeque::new(),
            pool: Vec::new(),
            dummies_in_flight: 0,
            real_unfinished: 0,
            pool_unsettled: 0,
            pool_collected: 0,
        }
    }

    pub fn pool(&self) -> &[ThreadId] {
        &self.pool
    }

    fn member(&mut self, tid: ThreadId) -> &mut Member {
        self.threads.get_mut(tid.index()).expect("unknown thread")
    }

    fn mref(&self, tid: ThreadId) -> &Member {
        self.threads.get(tid.index()).expect("unknown thread")
    }

    fn real_work_left(&self) -> bool {
        self.real_unfinished > 0
    }

    fn settled_st(st: St) -> bool {
        matches!(st, St::Collected | St::CoreBlocked | St::Finished)
    }

    /// The one place a member's state changes: keeps the incremental
    /// pool counters (`pool_unsettled`, `pool_collected`) in sync.
    fn set_st(&mut self, tid: ThreadId, st: St) {
        let m = self.threads.get_mut(tid.index()).expect("unknown thread");
        let old = m.st;
        m.st = st;
        if m.in_pool {
            self.pool_unsettled += usize::from(!Self::settled_st(st));
            self.pool_unsettled -= usize::from(!Self::settled_st(old));
            self.pool_collected += usize::from(st == St::Collected);
            self.pool_collected -= usize::from(old == St::Collected);
        }
    }

    fn leave_pool(&mut self, tid: ThreadId) {
        let m = self.threads.get_mut(tid.index()).expect("unknown thread");
        if !m.in_pool {
            return;
        }
        m.in_pool = false;
        let st = m.st;
        self.pool_unsettled -= usize::from(!Self::settled_st(st));
        self.pool_collected -= usize::from(st == St::Collected);
        self.pool.retain(|&t| t != tid);
    }

    fn join_pool(&mut self, tid: ThreadId) {
        let m = self.threads.get_mut(tid.index()).expect("unknown thread");
        debug_assert!(!m.in_pool);
        m.in_pool = true;
        let st = m.st;
        self.pool_unsettled += usize::from(!Self::settled_st(st));
        self.pool_collected += usize::from(st == St::Collected);
        self.pool.push(tid);
        self.pool.sort_unstable();
    }

    /// Fills empty pool slots from the waiting room and asks for dummies
    /// when the pool plus its feeders cannot reach quorum while a grant
    /// is stuck. Finished members are *not* evicted here — membership
    /// persists until the round resolves.
    fn fill_slots(&mut self, out: &mut SchedOutput) {
        while self.pool.len() < self.cfg.batch_size {
            let Some(entry) = self.waiting_room.pop_front() else {
                break;
            };
            let tid = entry.tid();
            match entry {
                RoomEntry::Fresh(_) => {
                    debug_assert_eq!(self.mref(tid).st, St::Queued);
                    self.set_st(tid, St::Running);
                    self.member(tid).grants_used = 0;
                    out.decision(|| Decision::Admit { tid });
                    out.push(SchedAction::Admit(tid));
                }
                RoomEntry::Reentry(_) => {
                    // Stale entries happen: the thread finished while
                    // queued, suspended *again* (its wake will enqueue a
                    // fresh entry), or was already re-admitted through an
                    // earlier entry. Admitting a suspended thread as
                    // "Running" would wedge the barrier forever.
                    if self.mref(tid).st != St::Queued || self.mref(tid).in_pool {
                        continue;
                    }
                    // May still be running its post-wake computation (no
                    // pending yet) or already gated at its next lock.
                    let has_pending = self.member(tid).pending.is_some();
                    self.set_st(
                        tid,
                        if has_pending {
                            St::Collected
                        } else {
                            St::Running
                        },
                    );
                    self.member(tid).grants_used = 0;
                }
            }
            self.join_pool(tid);
        }
        if !self.real_work_left() || self.pool_collected == 0 {
            return;
        }
        while self.pool.len() + self.waiting_room.len() + self.dummies_in_flight
            < self.cfg.batch_size
        {
            self.dummies_in_flight += 1;
            out.push(SchedAction::RequestDummy);
        }
    }

    fn settled(&self, tid: ThreadId) -> bool {
        matches!(
            self.mref(tid).st,
            St::Collected | St::CoreBlocked | St::Finished
        )
    }

    /// The §3.3 quorum: every member settled, the pool at full strength
    /// while real work remains. O(1): `pool_unsettled` is maintained at
    /// every state change, so the per-event check never scans the pool.
    fn barrier_met(&self) -> bool {
        debug_assert_eq!(
            self.pool_unsettled,
            self.pool.iter().filter(|&&m| !self.settled(m)).count()
        );
        !self.pool.is_empty()
            && self.pool_unsettled == 0
            && (self.pool.len() >= self.cfg.batch_size || !self.real_work_left())
    }

    /// One grant sweep: every collected member with quota, age order.
    ///
    /// A single forward pass over the (age-sorted) pool: granting a
    /// member moves it to `Running`/`CoreBlocked`, never back to
    /// `Collected`, so no member behind the scan point can become a
    /// candidate again mid-sweep — one pass visits exactly the members a
    /// restart-from-the-front search would, in the same order.
    fn sweep_grants(&mut self, out: &mut SchedOutput) -> bool {
        let mut granted_any = false;
        for i in 0..self.pool.len() {
            let tid = self.pool[i];
            if self.mref(tid).st != St::Collected
                || self.mref(tid).grants_used >= self.cfg.locks_per_round
            {
                continue;
            }
            let mutex = self
                .member(tid)
                .pending
                .take()
                .expect("collected member has request");
            self.member(tid).grants_used += 1;
            granted_any = true;
            match self.sync.lock(tid, mutex) {
                LockOutcome::Acquired => {
                    self.set_st(tid, St::Running);
                    out.decision(|| Decision::Grant {
                        tid,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(tid));
                }
                LockOutcome::Queued => {
                    self.set_st(tid, St::CoreBlocked);
                    out.decision(|| Decision::Defer {
                        tid,
                        mutex,
                        reason: DeferReason::MutexBusy,
                    });
                }
            }
        }
        granted_any
    }

    /// The round/pool state machine, run after every event.
    fn after_change(&mut self, out: &mut SchedOutput) {
        loop {
            self.fill_slots(out);
            if !self.barrier_met() {
                return;
            }
            out.decision(|| Decision::RoundStart {
                pool: self.pool.len() as u32,
                dummies: self.dummies_in_flight as u32,
            });
            if self.sweep_grants(out) {
                return;
            }
            // The sweep granted nothing, so every Collected member has
            // exhausted its quota — "an exhausted member exists" is
            // exactly "any Collected member exists", which the
            // incremental counter already tracks.
            let exhausted_exist = self.pool_collected > 0;
            debug_assert_eq!(
                exhausted_exist,
                self.pool.iter().any(|&m| {
                    self.mref(m).st == St::Collected
                        && self.mref(m).grants_used >= self.cfg.locks_per_round
                })
            );
            if exhausted_exist {
                for &m in &self.pool {
                    self.threads
                        .get_mut(m.index())
                        .expect("pool member")
                        .grants_used = 0;
                }
                continue;
            }
            // Round complete: evict finished members and refill.
            // (Finished members are settled and not Collected, so the
            // incremental counters only need the membership flag
            // cleared.)
            let before = self.pool.len();
            let threads = &mut self.threads;
            self.pool.retain(|tid| {
                let m = threads.get_mut(tid.index()).expect("pool member");
                if m.st == St::Finished {
                    m.in_pool = false;
                    false
                } else {
                    true
                }
            });
            if self.pool.len() == before {
                return;
            }
        }
    }

    /// A grant released a thread from the monitor layer.
    fn on_grant(&mut self, g: crate::sync_core::Grant, out: &mut SchedOutput) {
        out.decision(|| Decision::Grant {
            tid: g.tid,
            mutex: g.mutex,
            from_wait: g.from_wait,
        });
        if g.from_wait {
            // A notified waiter re-acquired its monitor: it was Out; it
            // resumes holding the monitor, so it rejoins the pool at once
            // (see module docs).
            debug_assert_eq!(self.mref(g.tid).st, St::Out);
            self.set_st(g.tid, St::Running);
            self.member(g.tid).grants_used = 0;
            self.join_pool(g.tid);
        } else {
            debug_assert_eq!(self.mref(g.tid).st, St::CoreBlocked);
            self.set_st(g.tid, St::Running);
        }
        out.push(SchedAction::Resume(g.tid));
    }
}

impl Scheduler for PdsScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pds
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    /// Per-mutex grant order is replica-invariant (the original paper's
    /// guarantee); the global interleaving across mutexes is not — grants
    /// from monitor-release handoffs interleave with sweeps per-replica.
    fn global_order_deterministic(&self) -> bool {
        false
    }

    /// `admission` is the waiting room; `sched_queue` counts pool members
    /// whose collected lock request awaits the round barrier.
    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        d.admission = self.waiting_room.len() as u32;
        d.sched_queue = self.pool_collected as u32;
        d
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, dummy, .. } => {
                if dummy {
                    self.dummies_in_flight = self.dummies_in_flight.saturating_sub(1);
                } else {
                    self.real_unfinished += 1;
                }
                let prev = self.threads.insert(
                    tid.index(),
                    Member {
                        st: St::Queued,
                        in_pool: false,
                        pending: None,
                        grants_used: 0,
                        dummy,
                    },
                );
                debug_assert!(prev.is_none(), "{tid} arrived twice");
                self.waiting_room.push_back(RoomEntry::Fresh(tid));
                self.after_change(out);
                if self.mref(tid).st == St::Queued {
                    // No free pool slot: parked in the waiting room.
                    out.decision(|| Decision::AdmitDefer { tid });
                }
            }
            SchedEvent::LockRequested { tid, mutex, .. } => {
                if self.sync.holds(tid, mutex) {
                    let outcome = self.sync.lock(tid, mutex);
                    debug_assert_eq!(outcome, LockOutcome::Acquired);
                    out.decision(|| Decision::Grant {
                        tid,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(tid));
                    return;
                }
                match self.mref(tid).st {
                    St::Running => {
                        self.set_st(tid, St::Collected);
                        self.member(tid).pending = Some(mutex);
                    }
                    St::Queued => {
                        // Woken thread still in the waiting room: record
                        // the request; it collects upon admission.
                        self.member(tid).pending = Some(mutex);
                    }
                    other => panic!("{tid} locked in unexpected state {other:?}"),
                }
                out.decision(|| Decision::Defer {
                    tid,
                    mutex,
                    reason: DeferReason::Barrier,
                });
                self.after_change(out);
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                if let Some(g) = self.sync.unlock(tid, mutex) {
                    self.on_grant(g, out);
                }
                self.after_change(out);
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                self.leave_pool(tid);
                self.set_st(tid, St::Out);
                if let Some(g) = self.sync.wait(tid, mutex) {
                    self.on_grant(g, out);
                }
                self.after_change(out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { tid } => {
                self.leave_pool(tid);
                self.set_st(tid, St::Out);
                self.after_change(out);
            }
            SchedEvent::NestedCompleted { tid } => {
                debug_assert_eq!(self.mref(tid).st, St::Out);
                out.push(SchedAction::Resume(tid));
                if !self.sync.holds_none(tid) {
                    // Monitor holder: must be able to reach its unlocks.
                    self.set_st(tid, St::Running);
                    self.member(tid).grants_used = 0;
                    self.join_pool(tid);
                } else {
                    // Re-entry reserved *now* — the wake is a totally
                    // ordered event, so the waiting-room position (and
                    // with it future round membership) is identical on
                    // every replica. Enqueueing at the thread's next lock
                    // request instead would race local execution against
                    // arrivals and diverge (found by the checker).
                    self.set_st(tid, St::Queued);
                    self.waiting_room.push_back(RoomEntry::Reentry(tid));
                }
                self.after_change(out);
            }
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid));
                let was_real = !self.mref(tid).dummy;
                self.set_st(tid, St::Finished);
                if !self.mref(tid).in_pool {
                    // Paroled thread finished outside the pool.
                    self.member(tid).pending = None;
                }
                if was_real {
                    debug_assert!(self.real_unfinished > 0);
                    self.real_unfinished -= 1;
                }
                self.after_change(out);
            }
            SchedEvent::LockInfo { .. }
            | SchedEvent::SyncIgnored { .. }
            | SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }
    fn arrive_dummy(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: true,
        }
    }
    fn lock(tid: u32, m: u32) -> SchedEvent {
        SchedEvent::LockRequested {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: MutexId::new(m),
        }
    }
    fn unlock(tid: u32, m: u32) -> SchedEvent {
        SchedEvent::Unlocked {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: MutexId::new(m),
        }
    }
    fn finish(tid: u32) -> SchedEvent {
        SchedEvent::ThreadFinished { tid: t(tid) }
    }

    fn cfg(batch: usize) -> PdsConfig {
        PdsConfig {
            batch_size: batch,
            locks_per_round: 1,
        }
    }

    #[test]
    fn requests_dummies_when_quorum_is_stuck() {
        let mut s = PdsScheduler::new(cfg(3));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        assert!(out.actions.contains(&SchedAction::Admit(t(0))));
        assert!(!out.actions.contains(&SchedAction::RequestDummy));
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        let dummies = out
            .actions
            .iter()
            .filter(|a| **a == SchedAction::RequestDummy)
            .count();
        assert_eq!(dummies, 2);
        out.clear();
        s.on_event(&arrive_dummy(1), &mut out);
        s.on_event(&arrive_dummy(2), &mut out);
        assert!(!out.actions.contains(&SchedAction::RequestDummy));
        assert_eq!(s.pool(), &[t(0), t(1), t(2)]);
        out.clear();
        s.on_event(&finish(1), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&finish(2), &mut out);
        assert!(
            out.actions.contains(&SchedAction::Resume(t(0))),
            "quorum reached: grant fires"
        );
    }

    #[test]
    fn first_lock_waits_for_full_pool_to_settle() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert!(
            out.actions.is_empty(),
            "grant must wait for the quorum (§3.3)"
        );
        s.on_event(&lock(1, 6), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(0)), SchedAction::Resume(t(1))]
        );
    }

    #[test]
    fn same_mutex_conflicts_resolve_by_age() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(1, 5), &mut out);
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn suspended_member_leaves_pool_and_round_proceeds() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        s.on_event(&arrive(2), &mut out); // waits in the room
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(1) }, &mut out);
        // t1 left the pool; t2 takes the free slot immediately.
        assert!(out.actions.contains(&SchedAction::Admit(t(2))));
        assert_eq!(s.pool(), &[t(0), t(2)]);
        out.clear();
        // Round proceeds without the suspended thread.
        s.on_event(&lock(0, 5), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&lock(2, 6), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(0)), SchedAction::Resume(t(2))]
        );
    }

    #[test]
    fn woken_thread_reenters_through_the_waiting_room() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(s.pool(), &[t(1)]);
        // t0 wakes holding nothing: re-entry reserved at the wake (a
        // total-order event); the free slot admits it at once, with no
        // second Admit action.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert!(out.actions.contains(&SchedAction::Resume(t(0))));
        assert!(!out
            .actions
            .iter()
            .any(|a| matches!(a, SchedAction::Admit(_))));
        assert_eq!(s.pool(), &[t(0), t(1)]);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert!(out.actions.is_empty(), "quorum still needs t1");
        // t1 settles → both grants fire, age order.
        s.on_event(&lock(1, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn monitor_holder_rejoins_immediately_after_wake() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        s.on_event(&lock(1, 6), &mut out);
        out.clear();
        // t0 nests while holding m5.
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(s.pool(), &[t(1)]);
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert!(out.actions.contains(&SchedAction::Resume(t(0))));
        assert_eq!(s.pool(), &[t(0), t(1)], "holder rejoins at once");
    }

    #[test]
    fn pool_refills_when_round_resolves() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        for i in 0..3 {
            s.on_event(&arrive(i), &mut out);
        }
        out.clear();
        assert_eq!(s.pool(), &[t(0), t(1)]);
        s.on_event(&finish(0), &mut out);
        assert!(!out.actions.contains(&SchedAction::Admit(t(2))));
        s.on_event(&finish(1), &mut out);
        assert!(out.actions.contains(&SchedAction::Admit(t(2))));
        assert_eq!(s.pool(), &[t(2)]);
    }

    #[test]
    fn second_round_requires_new_quorum() {
        let mut s = PdsScheduler::new(cfg(2));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 1), &mut out);
        s.on_event(&lock(1, 2), &mut out);
        out.clear();
        s.on_event(&unlock(0, 1), &mut out);
        s.on_event(&unlock(1, 2), &mut out);
        out.clear();
        s.on_event(&lock(0, 3), &mut out);
        assert!(
            out.actions.is_empty(),
            "second round needs the full pool settled"
        );
        s.on_event(&lock(1, 4), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(0)), SchedAction::Resume(t(1))]
        );
    }

    #[test]
    fn locks_per_round_two_grants_back_to_back() {
        let mut s = PdsScheduler::new(PdsConfig {
            batch_size: 2,
            locks_per_round: 2,
        });
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 1), &mut out);
        s.on_event(&lock(1, 2), &mut out);
        out.clear();
        s.on_event(&unlock(0, 1), &mut out);
        out.clear();
        s.on_event(&lock(0, 3), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&unlock(1, 2), &mut out);
        out.clear();
        s.on_event(&lock(1, 4), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(0)), SchedAction::Resume(t(1))]
        );
    }

    #[test]
    fn reentrant_lock_granted_without_round_accounting() {
        let mut s = PdsScheduler::new(cfg(1));
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }
}
