//! FREE — plain mutex mechanics without any determinism gating.
//!
//! This is what a naive multithreaded replica does: admit every request
//! immediately, grant every free monitor on demand, FIFO otherwise. Its
//! decisions depend on the physical timing of its own replica, so two
//! replicas fed the same total order can interleave differently — the
//! nondeterminism the paper's schedulers exist to prevent. FREE is kept
//! as the negative control for the determinism checker and as the
//! "unconstrained" half of the LSA leader.

use crate::event::{SchedAction, SchedEvent};
use crate::obs::{Decision, DeferReason, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::sync_core::{LockOutcome, SyncCore};

pub struct FreeScheduler {
    sync: SyncCore,
}

impl FreeScheduler {
    pub fn new() -> Self {
        FreeScheduler {
            sync: SyncCore::new(true),
        }
    }
}

impl Default for FreeScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FreeScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Free
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    fn global_order_deterministic(&self) -> bool {
        false
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, .. } => {
                out.decision(|| Decision::Admit { tid });
                out.push(SchedAction::Admit(tid));
            }
            SchedEvent::LockRequested { tid, mutex, .. } => {
                if self.sync.lock(tid, mutex) == LockOutcome::Acquired {
                    out.decision(|| Decision::Grant {
                        tid,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(tid));
                } else {
                    out.decision(|| Decision::Defer {
                        tid,
                        mutex,
                        reason: DeferReason::MutexBusy,
                    });
                }
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                if let Some(g) = self.sync.unlock(tid, mutex) {
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    out.push(SchedAction::Resume(g.tid));
                }
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                if let Some(g) = self.sync.wait(tid, mutex) {
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    out.push(SchedAction::Resume(g.tid));
                }
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { .. } => {}
            SchedEvent::NestedCompleted { tid } => out.push(SchedAction::Resume(tid)),
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid), "{tid} finished holding monitors");
            }
            SchedEvent::LockInfo { .. }
            | SchedEvent::SyncIgnored { .. }
            | SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ThreadId;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: ThreadId::new(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }

    #[test]
    fn admits_immediately_and_grants_free_locks() {
        let mut s = FreeScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(ThreadId::new(0))]);
        out.clear();
        s.on_event(
            &SchedEvent::LockRequested {
                tid: ThreadId::new(0),
                sync_id: SyncId::new(0),
                mutex: MutexId::new(7),
            },
            &mut out,
        );
        assert_eq!(out.actions, vec![SchedAction::Resume(ThreadId::new(0))]);
    }

    #[test]
    fn contended_lock_resumes_on_unlock() {
        let mut s = FreeScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        let lock = |tid: u32| SchedEvent::LockRequested {
            tid: ThreadId::new(tid),
            sync_id: SyncId::new(0),
            mutex: MutexId::new(7),
        };
        s.on_event(&lock(0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(ThreadId::new(0))]);
        out.clear();
        s.on_event(&lock(1), &mut out);
        assert!(out.actions.is_empty()); // queued
        s.on_event(
            &SchedEvent::Unlocked {
                tid: ThreadId::new(0),
                sync_id: SyncId::new(0),
                mutex: MutexId::new(7),
            },
            &mut out,
        );
        assert_eq!(out.actions, vec![SchedAction::Resume(ThreadId::new(1))]);
    }

    #[test]
    fn nested_resumes_on_completion() {
        let mut s = FreeScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::NestedStarted {
                tid: ThreadId::new(0),
            },
            &mut out,
        );
        assert!(out.actions.is_empty());
        s.on_event(
            &SchedEvent::NestedCompleted {
                tid: ThreadId::new(0),
            },
            &mut out,
        );
        assert_eq!(out.actions, vec![SchedAction::Resume(ThreadId::new(0))]);
    }
}
