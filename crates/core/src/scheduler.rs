//! The `Scheduler` trait and factory.
//!
//! Decision modules are deterministic state machines; the replica engine
//! owns one per replica and feeds it the event stream defined in
//! [`crate::event`]. The contract:
//!
//! * **Blocking events** — `RequestArrived`, `LockRequested`,
//!   `WaitCalled`, `NestedStarted` — suspend the thread. The engine will
//!   not step the thread again until the scheduler emits
//!   `Admit(tid)`/`Resume(tid)` for it (possibly within the same
//!   `on_event` call, possibly at a later event).
//! * **Non-blocking events** — `Unlocked`, `NotifyCalled`, `LockInfo`,
//!   `SyncIgnored`, `ThreadFinished`, `Control` — inform the scheduler;
//!   the reporting thread (if any) keeps running. The scheduler may still
//!   release *other* threads in response.
//! * A scheduler must never emit `Resume` for a thread that is not
//!   suspended, and must leave its `SyncCore` quiescent once every thread
//!   has finished.

use crate::bookkeeping::LockTable;
use crate::event::SchedEvent;
use crate::ids::ReplicaId;
use crate::obs::{ContentionHints, DepthSample, SchedOutput};
use crate::sync_core::SyncCore;
use std::sync::Arc;

/// Which algorithm a scheduler implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// No gating beyond plain mutex mechanics — the *nondeterministic*
    /// baseline every replication paper warns about. Negative control.
    Free,
    /// Sequential request execution in total order (paper's SEQ).
    Seq,
    /// Single active thread (Jiménez-Peris et al. / Zhao et al., §3.1).
    Sat,
    /// Loose synchronisation algorithm: leader decides, followers replay
    /// (Basile et al., §3.2).
    Lsa,
    /// Preemptive deterministic scheduling: round-based batches (Basile
    /// et al., §3.3).
    Pds,
    /// Multiple active threads with a single lock-granting primary
    /// (Reiser et al., §3.4).
    Mat,
    /// MAT + last-lock analysis: primacy is released as soon as the
    /// bookkeeping proves the primary will take no further lock (§4.1,
    /// Figure 2(b)).
    MatLL,
    /// The predicted-MAT sketched in §4.3: an age-ordered active queue;
    /// a thread may lock when every older thread is predicted and
    /// conflict-free with the requested mutex (Figure 3(b)).
    Pmat,
}

impl SchedulerKind {
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::Free,
        SchedulerKind::Seq,
        SchedulerKind::Sat,
        SchedulerKind::Lsa,
        SchedulerKind::Pds,
        SchedulerKind::Mat,
        SchedulerKind::MatLL,
        SchedulerKind::Pmat,
    ];

    /// The deterministic algorithms (everything but the negative control).
    pub const DETERMINISTIC: [SchedulerKind; 7] = [
        SchedulerKind::Seq,
        SchedulerKind::Sat,
        SchedulerKind::Lsa,
        SchedulerKind::Pds,
        SchedulerKind::Mat,
        SchedulerKind::MatLL,
        SchedulerKind::Pmat,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Free => "FREE",
            SchedulerKind::Seq => "SEQ",
            SchedulerKind::Sat => "SAT",
            SchedulerKind::Lsa => "LSA",
            SchedulerKind::Pds => "PDS",
            SchedulerKind::Mat => "MAT",
            SchedulerKind::MatLL => "MAT-LL",
            SchedulerKind::Pmat => "PMAT",
        }
    }

    /// Does the algorithm exploit the static-analysis lock tables?
    pub fn uses_prediction(self) -> bool {
        matches!(self, SchedulerKind::MatLL | SchedulerKind::Pmat)
    }

    /// Can a crashed replica rejoin mid-run via quiescent state transfer?
    ///
    /// Recovery hands the rejoining replica a *fresh* scheduler instance,
    /// which is only sound when the algorithm's decision state is empty at
    /// quiescence (no runnable or blocked threads anywhere). That holds
    /// for the admission/token algorithms — SEQ, SAT, MAT, MAT-LL, PMAT —
    /// and trivially for FREE. It does *not* hold for LSA (the leader's
    /// announcement sequence numbers persist across quiescence) or PDS
    /// (round counters advance monotonically), so a rejoined replica
    /// would desynchronise from the survivors. See DESIGN.md §11 for the
    /// proof obligations this encodes.
    pub fn supports_recovery(self) -> bool {
        !matches!(self, SchedulerKind::Lsa | SchedulerKind::Pds)
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "FREE" => Ok(SchedulerKind::Free),
            "SEQ" => Ok(SchedulerKind::Seq),
            "SAT" => Ok(SchedulerKind::Sat),
            "LSA" => Ok(SchedulerKind::Lsa),
            "PDS" => Ok(SchedulerKind::Pds),
            "MAT" => Ok(SchedulerKind::Mat),
            "MAT-LL" | "MATLL" => Ok(SchedulerKind::MatLL),
            "PMAT" => Ok(SchedulerKind::Pmat),
            other => Err(format!("unknown scheduler kind: {other}")),
        }
    }
}

/// PDS tuning knobs (paper §3.3).
#[derive(Clone, Copy, Debug)]
pub struct PdsConfig {
    /// Threads per round ("a pool with a fixed number of threads").
    pub batch_size: usize,
    /// Locks each thread may take per round (1, or 2 in the paper's
    /// optimised variant).
    pub locks_per_round: u32,
}

impl Default for PdsConfig {
    fn default() -> Self {
        PdsConfig {
            batch_size: 4,
            locks_per_round: 1,
        }
    }
}

/// Everything needed to instantiate a scheduler for one replica.
#[derive(Clone)]
pub struct SchedConfig {
    pub kind: SchedulerKind,
    pub replica: ReplicaId,
    pub leader: ReplicaId,
    pub lock_table: Arc<LockTable>,
    pub pds: PdsConfig,
    /// Observed-contention feedback (PMAT). Empty = no feedback.
    pub hints: ContentionHints,
}

impl SchedConfig {
    pub fn new(kind: SchedulerKind, replica: ReplicaId) -> Self {
        SchedConfig {
            kind,
            replica,
            leader: ReplicaId::new(0),
            lock_table: Arc::new(LockTable::unanalyzed(0)),
            pds: PdsConfig::default(),
            hints: ContentionHints::new(),
        }
    }

    pub fn with_lock_table(mut self, table: Arc<LockTable>) -> Self {
        self.lock_table = table;
        self
    }

    pub fn with_pds(mut self, pds: PdsConfig) -> Self {
        self.pds = pds;
        self
    }

    pub fn with_leader(mut self, leader: ReplicaId) -> Self {
        self.leader = leader;
        self
    }

    pub fn with_hints(mut self, hints: ContentionHints) -> Self {
        self.hints = hints;
        self
    }
}

/// A deterministic multithreading scheduler (decision module).
///
/// `Send` so a runtime can drive real threads through one scheduler
/// behind a lock (`dmt-rt`).
pub trait Scheduler: Send {
    fn kind(&self) -> SchedulerKind;

    /// Feed one event; actions (and, when the bundle records, decision
    /// records) are appended to `out` in decision order.
    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput);

    /// The underlying monitor table, for engine invariant checks.
    fn sync_core(&self) -> &SyncCore;

    /// A point-in-time census of parked threads: monitor contention from
    /// the sync core plus whatever algorithm-specific queues the module
    /// maintains. The default covers schedulers with no gating of their
    /// own (FREE); every decision module overrides it to add admission
    /// and scheduler-queue backlogs. O(1) — safe to call per event.
    fn depths(&self) -> DepthSample {
        self.sync_core().depths()
    }

    /// Whether the *global* lock-grant order is replica-independent.
    /// Only single-active-thread algorithms (SEQ, SAT) can promise that;
    /// every concurrent algorithm guarantees the per-mutex acquisition
    /// orders instead. The determinism checker compares accordingly.
    fn global_order_deterministic(&self) -> bool {
        true
    }

    /// Leadership change notification (LSA failover). Default: ignored.
    fn on_leader_change(&mut self, _new_leader: ReplicaId) {}

    /// Re-evaluate pending decisions outside any event (the engine calls
    /// this after a leadership change so a just-promoted LSA leader
    /// decides requests that were waiting for announcements that will
    /// never come). Default: nothing pending.
    fn kick(&mut self, _out: &mut SchedOutput) {}
}

/// The decision modules as one concrete sum type.
///
/// The replica engine stores this instead of `Box<dyn Scheduler>` so the
/// per-event `on_event` call is a direct jump over inlineable arms
/// rather than a virtual dispatch through a vtable — one of the hot-path
/// cuts behind the dmt-bench ns/event guard. `MAT` and `MAT-LL` share
/// the [`crate::mat::MatScheduler`] variant (the mode is a constructor
/// argument); [`Scheduler::kind`] still distinguishes them.
pub enum AnyScheduler {
    Free(crate::free::FreeScheduler),
    Seq(crate::seq::SeqScheduler),
    Sat(crate::sat::SatScheduler),
    Lsa(crate::lsa::LsaScheduler),
    Pds(crate::pds::PdsScheduler),
    Mat(crate::mat::MatScheduler),
    Pmat(crate::pmat::PmatScheduler),
}

macro_rules! each_sched {
    ($self:expr, $s:ident => $e:expr) => {
        match $self {
            AnyScheduler::Free($s) => $e,
            AnyScheduler::Seq($s) => $e,
            AnyScheduler::Sat($s) => $e,
            AnyScheduler::Lsa($s) => $e,
            AnyScheduler::Pds($s) => $e,
            AnyScheduler::Mat($s) => $e,
            AnyScheduler::Pmat($s) => $e,
        }
    };
}

impl Scheduler for AnyScheduler {
    #[inline]
    fn kind(&self) -> SchedulerKind {
        each_sched!(self, s => s.kind())
    }

    #[inline]
    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        each_sched!(self, s => s.on_event(ev, out))
    }

    #[inline]
    fn sync_core(&self) -> &SyncCore {
        each_sched!(self, s => s.sync_core())
    }

    #[inline]
    fn depths(&self) -> DepthSample {
        each_sched!(self, s => s.depths())
    }

    #[inline]
    fn global_order_deterministic(&self) -> bool {
        each_sched!(self, s => s.global_order_deterministic())
    }

    fn on_leader_change(&mut self, new_leader: ReplicaId) {
        each_sched!(self, s => s.on_leader_change(new_leader))
    }

    fn kick(&mut self, out: &mut SchedOutput) {
        each_sched!(self, s => s.kick(out))
    }
}

/// Instantiates the decision module selected by `cfg` as the concrete
/// sum type (statically dispatched — the hot-path form).
pub fn make_scheduler_inline(cfg: &SchedConfig) -> AnyScheduler {
    match cfg.kind {
        SchedulerKind::Free => AnyScheduler::Free(crate::free::FreeScheduler::new()),
        SchedulerKind::Seq => AnyScheduler::Seq(crate::seq::SeqScheduler::new()),
        SchedulerKind::Sat => AnyScheduler::Sat(crate::sat::SatScheduler::new()),
        SchedulerKind::Lsa => {
            AnyScheduler::Lsa(crate::lsa::LsaScheduler::new(cfg.replica, cfg.leader))
        }
        SchedulerKind::Pds => AnyScheduler::Pds(crate::pds::PdsScheduler::new(cfg.pds)),
        SchedulerKind::Mat => AnyScheduler::Mat(crate::mat::MatScheduler::new(
            crate::mat::MatMode::Plain,
            cfg.lock_table.clone(),
        )),
        SchedulerKind::MatLL => AnyScheduler::Mat(crate::mat::MatScheduler::new(
            crate::mat::MatMode::LastLock,
            cfg.lock_table.clone(),
        )),
        SchedulerKind::Pmat => AnyScheduler::Pmat(
            crate::pmat::PmatScheduler::new(cfg.lock_table.clone()).with_hints(cfg.hints.clone()),
        ),
    }
}

/// Instantiates the decision module selected by `cfg` as a trait object
/// (for drivers that store heterogeneous schedulers, e.g. `dmt-rt`).
pub fn make_scheduler(cfg: &SchedConfig) -> Box<dyn Scheduler> {
    Box::new(make_scheduler_inline(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in SchedulerKind::ALL {
            let parsed: SchedulerKind = k.name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("bogus".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn deterministic_set_excludes_free() {
        assert!(!SchedulerKind::DETERMINISTIC.contains(&SchedulerKind::Free));
        assert_eq!(
            SchedulerKind::DETERMINISTIC.len(),
            SchedulerKind::ALL.len() - 1
        );
    }

    #[test]
    fn prediction_flags() {
        assert!(SchedulerKind::MatLL.uses_prediction());
        assert!(SchedulerKind::Pmat.uses_prediction());
        assert!(!SchedulerKind::Mat.uses_prediction());
    }

    #[test]
    fn factory_builds_every_kind() {
        for k in SchedulerKind::ALL {
            let cfg = SchedConfig::new(k, ReplicaId::new(0));
            let s = make_scheduler(&cfg);
            assert_eq!(s.kind(), k);
        }
    }
}
