//! # dmt-core — deterministic multithreading schedulers
//!
//! The paper's subject matter: application-level scheduling algorithms
//! that make multithreaded execution of replicated-object methods
//! deterministic, so active and passive replication stay consistent
//! without sequentializing everything.
//!
//! The crate follows the two-module architecture of paper §4.3:
//!
//! * the **bookkeeping module** ([`bookkeeping`]) holds the static lock
//!   tables produced by `dmt-analysis` and each thread's dynamic syncid
//!   table, and answers `is_predicted` / `may_lock` / `no_more_locks`;
//! * the **decision modules** implement the [`scheduler::Scheduler`]
//!   trait: the surveyed algorithms [`seq`] (§1), [`sat`] (§3.1),
//!   [`lsa`] (§3.2), [`pds`] (§3.3), [`mat`] (§3.4) and the paper's
//!   proposals [`mat`]`::MatMode::LastLock` (§4.1) and [`pmat`] (§4.3),
//!   plus [`free`], the nondeterministic negative control.
//!
//! Shared monitor mechanics (reentrant Java-style mutexes with 1:1
//! condition variables) live in [`sync_core`]. A lightweight logical
//! harness ([`harness`]) drives real `dmt-lang` programs through a
//! scheduler for unit and property testing; the full virtual-time replica
//! engine lives in `dmt-replica`.

pub mod bookkeeping;
pub mod event;
pub mod free;
pub mod harness;
pub mod ids;
pub mod lsa;
pub mod mat;
pub mod obs;
pub mod pds;
pub mod pmat;
pub mod sat;
pub mod scheduler;
pub mod seq;
pub mod slot;
pub mod sync_core;

pub use bookkeeping::{Bookkeeping, EntryState, LockTable, StaticSyncEntry};
pub use event::{CtrlMsg, SchedAction, SchedEvent};
pub use ids::{ReplicaId, ThreadId};
pub use obs::{ContentionHints, Decision, DeferReason, DepthSample, SchedOutput};
pub use scheduler::{
    make_scheduler, make_scheduler_inline, AnyScheduler, PdsConfig, SchedConfig, Scheduler,
    SchedulerKind,
};
pub use slot::{DenseSet, SlotMap};
pub use sync_core::{Grant, LockOutcome, SyncCore};
