//! SAT — single active thread (paper §3.1).
//!
//! Proposed by Jiménez-Peris et al. for transactional replicas, adapted by
//! Zhao et al. (Eternal) and extended with condition variables in FTflex.
//! At most one thread executes at a time, but unlike SEQ a new thread may
//! start or resume as soon as the previous one *suspends* (wait, nested
//! invocation, or blocking on a monitor held by a suspended thread) rather
//! than terminates — so the idle time of nested invocations is used, and
//! invocation chains that loop back to the object no longer deadlock.
//!
//! Determinism: between suspensions the execution is a single sequential
//! chain, so every scheduler decision point and every internal wake-up
//! (monitor grant, notify) is a deterministic consequence of the previous
//! activation order; external wake-ups (request arrivals, nested replies)
//! are consumed from the totally ordered stream. The ready queue therefore
//! orders identically on every replica.

use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::{Decision, DeferReason, DepthSample, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::sync_core::{LockOutcome, SyncCore};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    /// Created, never ran.
    Fresh,
    /// In the ready queue (fresh or resumable).
    Ready,
    /// The single active thread.
    Active,
    /// Blocked on a monitor held by a suspended thread.
    LockBlocked,
    /// Parked in a wait set (or re-acquiring after notify).
    WaitBlocked,
    /// Suspended in a nested invocation.
    NestedBlocked,
    Finished,
}

pub struct SatScheduler {
    sync: SyncCore,
    /// Per-thread status, indexed by the dense `ThreadId` (threads are
    /// numbered from 0 in arrival order, so the table stays compact).
    status: Vec<St>,
    ready: VecDeque<ThreadId>,
    active: Option<ThreadId>,
}

impl SatScheduler {
    pub fn new() -> Self {
        SatScheduler {
            sync: SyncCore::new(true),
            status: Vec::new(),
            ready: VecDeque::new(),
            active: None,
        }
    }

    fn set(&mut self, tid: ThreadId, st: St) {
        let i = tid.index();
        if i >= self.status.len() {
            // Slots between the old end and `i` stay `Fresh` until their
            // threads arrive (arrival order makes gaps transient).
            self.status.resize(i + 1, St::Fresh);
        }
        self.status[i] = st;
    }

    fn st(&self, tid: ThreadId) -> St {
        self.status[tid.index()]
    }

    fn enqueue_ready(&mut self, tid: ThreadId, fresh: bool) {
        self.set(tid, if fresh { St::Fresh } else { St::Ready });
        self.ready.push_back(tid);
    }

    fn activate_next(&mut self, out: &mut SchedOutput) {
        debug_assert!(self.active.is_none());
        if let Some(next) = self.ready.pop_front() {
            let fresh = self.st(next) == St::Fresh;
            self.set(next, St::Active);
            self.active = Some(next);
            if fresh {
                out.decision(|| Decision::Admit { tid: next });
            }
            out.push(if fresh {
                SchedAction::Admit(next)
            } else {
                SchedAction::Resume(next)
            });
        }
    }

    /// A monitor grant arrived for a blocked thread: it becomes ready.
    fn on_grant(&mut self, tid: ThreadId) {
        debug_assert!(matches!(self.st(tid), St::LockBlocked | St::WaitBlocked));
        self.set(tid, St::Ready);
        self.ready.push_back(tid);
    }
}

impl Default for SatScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for SatScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Sat
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        // Fresh entries in the ready queue are unadmitted requests; the
        // rest are resumable suspended threads (scheduler backlog).
        for &tid in &self.ready {
            if self.st(tid) == St::Fresh {
                d.admission += 1;
            } else {
                d.sched_queue += 1;
            }
        }
        d
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, .. } => {
                self.enqueue_ready(tid, true);
                if self.active.is_none() {
                    self.activate_next(out);
                } else {
                    out.decision(|| Decision::AdmitDefer { tid });
                }
            }
            SchedEvent::LockRequested { tid, mutex, .. } => {
                debug_assert_eq!(
                    self.active,
                    Some(tid),
                    "only the active thread runs under SAT"
                );
                match self.sync.lock(tid, mutex) {
                    LockOutcome::Acquired => {
                        out.decision(|| Decision::Grant {
                            tid,
                            mutex,
                            from_wait: false,
                        });
                        out.push(SchedAction::Resume(tid));
                    }
                    LockOutcome::Queued => {
                        // The holder must be suspended. Treat the blockage
                        // as a suspension and activate the next thread —
                        // the FTflex extension that keeps SAT live.
                        out.decision(|| Decision::Defer {
                            tid,
                            mutex,
                            reason: DeferReason::MutexBusy,
                        });
                        self.set(tid, St::LockBlocked);
                        self.active = None;
                        self.activate_next(out);
                    }
                }
            }
            SchedEvent::Unlocked { tid, mutex, .. } => {
                if let Some(g) = self.sync.unlock(tid, mutex) {
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    self.on_grant(g.tid);
                }
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                debug_assert_eq!(self.active, Some(tid));
                if let Some(g) = self.sync.wait(tid, mutex) {
                    out.decision(|| Decision::Grant {
                        tid: g.tid,
                        mutex,
                        from_wait: g.from_wait,
                    });
                    self.on_grant(g.tid);
                }
                self.set(tid, St::WaitBlocked);
                self.active = None;
                self.activate_next(out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                // Moved waiters re-acquire via the monitor queue; they
                // become ready when granted (on the notifier's unlock).
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { tid } => {
                debug_assert_eq!(self.active, Some(tid));
                self.set(tid, St::NestedBlocked);
                self.active = None;
                self.activate_next(out);
            }
            SchedEvent::NestedCompleted { tid } => {
                debug_assert_eq!(self.st(tid), St::NestedBlocked);
                self.enqueue_ready(tid, false);
                if self.active.is_none() {
                    self.activate_next(out);
                }
            }
            SchedEvent::ThreadFinished { tid } => {
                debug_assert_eq!(self.active, Some(tid));
                debug_assert!(self.sync.holds_none(tid));
                self.set(tid, St::Finished);
                self.active = None;
                self.activate_next(out);
            }
            SchedEvent::LockInfo { .. }
            | SchedEvent::SyncIgnored { .. }
            | SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }
    fn lock(tid: u32, m: u32) -> SchedEvent {
        SchedEvent::LockRequested {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: MutexId::new(m),
        }
    }
    fn unlock(tid: u32, m: u32) -> SchedEvent {
        SchedEvent::Unlocked {
            tid: t(tid),
            sync_id: SyncId::new(0),
            mutex: MutexId::new(m),
        }
    }

    #[test]
    fn second_request_waits_for_suspension_not_termination() {
        let mut s = SatScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(0))]);
        out.clear();
        s.on_event(&arrive(1), &mut out);
        assert!(out.actions.is_empty(), "t1 must wait while t0 is active");
        // t0 suspends in a nested invocation → t1 starts.
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(1))]);
        out.clear();
        // t0's reply arrives while t1 is active: t0 queues.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert!(out.actions.is_empty());
        // t1 finishes → t0 resumes.
        s.on_event(&SchedEvent::ThreadFinished { tid: t(1) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn lock_held_by_suspended_thread_suspends_requester() {
        let mut s = SatScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&lock(0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        // t0 suspends holding m5; t1 activates and requests m5.
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(1))]);
        out.clear();
        s.on_event(&lock(1, 5), &mut out);
        assert!(
            out.actions.is_empty(),
            "t1 blocks; nothing else to activate"
        );
        // t0 returns, becomes active again, releases m5 → t1 ready; t0
        // still active, so t1 resumes only at t0's next suspension.
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 5), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&SchedEvent::ThreadFinished { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        assert_eq!(s.sync_core().owner(MutexId::new(5)), Some(t(1)));
    }

    #[test]
    fn wait_suspends_and_notify_reactivates_through_queue() {
        let mut s = SatScheduler::new();
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t0 locks m and waits → t1 activates.
        s.on_event(&lock(0, 3), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: MutexId::new(3),
            },
            &mut out,
        );
        assert_eq!(out.actions, vec![SchedAction::Admit(t(1))]);
        out.clear();
        // t1 locks m, notifies, unlocks → t0 re-acquires, queues ready.
        s.on_event(&lock(1, 3), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::NotifyCalled {
                tid: t(1),
                mutex: MutexId::new(3),
                all: false,
            },
            &mut out,
        );
        assert!(out.actions.is_empty());
        s.on_event(&unlock(1, 3), &mut out);
        assert!(out.actions.is_empty(), "t0 ready but t1 still active");
        s.on_event(&SchedEvent::ThreadFinished { tid: t(1) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(s.sync_core().owner(MutexId::new(3)), Some(t(0)));
    }

    #[test]
    fn ready_queue_is_fifo() {
        let mut s = SatScheduler::new();
        let mut out = SchedOutput::new();
        for i in 0..4 {
            s.on_event(&arrive(i), &mut out);
        }
        out.clear();
        // t0 nests → t1 active. t1 nests → t2 active. Replies for t0, t1.
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(1) }, &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        s.on_event(&SchedEvent::NestedCompleted { tid: t(1) }, &mut out);
        assert!(out.actions.is_empty());
        // Queue now: t3 (fresh), t0, t1. t2 finishes → t3 admitted.
        s.on_event(&SchedEvent::ThreadFinished { tid: t(2) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Admit(t(3))]);
        out.clear();
        s.on_event(&SchedEvent::ThreadFinished { tid: t(3) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }
}
