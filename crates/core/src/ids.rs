//! Scheduler-level identifiers.

use std::fmt;

/// Identity of a logical thread within one replica. Threads are numbered
/// in request-arrival (= total) order, so `ThreadId` order *is* the
/// admission order every algorithm's "oldest thread" rule refers to, and
/// the numbering is identical on every replica.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    #[inline]
    pub const fn new(v: u32) -> Self {
        ThreadId(v)
    }
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identity of a replica in the group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    #[inline]
    pub const fn new(v: u32) -> Self {
        ReplicaId(v)
    }
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_order_is_admission_order() {
        assert!(ThreadId::new(0) < ThreadId::new(1));
        assert_eq!(format!("{}", ThreadId::new(4)), "t4");
        assert_eq!(format!("{:?}", ReplicaId::new(2)), "r2");
    }
}
