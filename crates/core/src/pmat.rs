//! PMAT — the predicted-MAT extension sketched in paper §4.3 (Figure 3).
//!
//! Instead of one lock-granting primary there is an age-ordered queue of
//! active threads that are "in principle equal". A thread `t` is granted
//! a lock on mutex `m` only when every thread preceding it in the queue
//! is **predicted** (its whole syncid table is resolved by `lockInfo`,
//! `ignore`, or completed locks) and none of them pins `m` for the
//! future. Blocked threads are re-checked on exactly the paper's event
//! list: a conflicting thread releases `m`, a conflicting thread leaves
//! the queue, the first unpredicted predecessor leaves the queue, or it
//! becomes predicted.
//!
//! Race-safety (why this is deterministic per mutex without extra
//! communication): partial knowledge always blocks — if a predecessor has
//! not yet announced all its locks it is unpredicted and blocks every
//! younger same-mutex request, and once it *is* predicted its future set
//! is fixed. Two replicas can interleave grants on *different* mutexes
//! differently, but the per-mutex grant orders — the only thing that can
//! reach properly-synchronised state — are identical. The determinism
//! checker therefore compares PMAT runs by per-mutex traces and state
//! hashes (`global_order_deterministic() == false`).
//!
//! The paper leaves `wait`/nested-invocation handling open ("we have not
//! been able to figure out yet"). Our documented answer: a suspended
//! thread keeps its queue position and its bookkeeping table (which is
//! frozen while it sleeps, hence still sound); an unpredicted suspended
//! predecessor simply keeps blocking younger conflicting threads. That is
//! pessimistic but deterministic, and it needs no new mechanism.

use crate::bookkeeping::{Bookkeeping, LockTable};
use crate::event::{SchedAction, SchedEvent};
use crate::ids::ThreadId;
use crate::obs::{ContentionHints, Decision, DepthSample, SchedOutput};
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::slot::SlotMap;
use crate::sync_core::{LockOutcome, SyncCore};
use std::sync::Arc;

pub struct PmatScheduler {
    sync: SyncCore,
    book: Bookkeeping,
    /// The active-thread queue: every admitted, unfinished thread, in
    /// admission (age) order. Kept sorted; thread ids are assigned in
    /// admission order, so pushes land at the back.
    queue: Vec<ThreadId>,
    /// Gate-blocked lock requests awaiting the prediction check,
    /// indexed by thread id (slot index == age rank).
    pending: SlotMap<dmt_lang::MutexId>,
    /// Observed-contention feedback: mutexes a profile marked hot lose
    /// the prediction waiver in [`PmatScheduler::eligible`] and
    /// serialise in age order. Empty by default (pure §4.3 behaviour).
    hints: ContentionHints,
}

impl PmatScheduler {
    pub fn new(table: Arc<LockTable>) -> Self {
        PmatScheduler {
            sync: SyncCore::new(false),
            book: Bookkeeping::new(table),
            queue: Vec::new(),
            pending: SlotMap::new(),
            hints: ContentionHints::new(),
        }
    }

    /// Installs observed-contention feedback (builder style).
    pub fn with_hints(mut self, hints: ContentionHints) -> Self {
        self.hints = hints;
        self
    }

    /// The §4.3 grant condition for `tid` requesting `mutex`. A
    /// predecessor parked in `mutex`'s wait set does not conflict even
    /// though its table pins the monitor: it can only re-acquire after a
    /// notify, which requires someone else to lock the monitor first —
    /// exempting waiters is what keeps the standard producer/consumer
    /// pattern live under PMAT.
    ///
    /// Contention feedback: when `mutex` is marked hot, the
    /// predicted-and-disjoint waiver is withheld — every older queued
    /// thread must be *waiting on this mutex* (or parked in its wait
    /// set) before a younger one may take it, so grants on a hot mutex
    /// follow admission age exactly (per-object SEQ). This only
    /// tightens the rule: hinted PMAT admits a subset of unhinted
    /// PMAT's grants at each step, and the liveness-critical wait-set
    /// exemption is preserved, so no new deadlock is introduced — an
    /// ineligible younger thread just waits for its elders, who are
    /// themselves unconstrained at the head of the queue.
    fn eligible(&self, tid: ThreadId, mutex: dmt_lang::MutexId) -> bool {
        let hot = self.hints.is_hot(mutex);
        self.queue.iter().take_while(|&&u| u < tid).all(|&u| {
            // A predecessor parked in this mutex's wait set cannot race
            // for it: it re-acquires only after a notify, which requires
            // someone else to lock the monitor first. The exemption holds
            // even for unpredicted waiters — without it the notifier
            // could never enter and the wait would never end.
            self.sync.is_waiting(u, mutex)
                || (!hot && self.book.is_predicted(u) && !self.book.may_lock(u, mutex))
        })
    }

    /// Re-checks every gate-blocked request (age order) and grants what
    /// the rule and the monitor state allow.
    fn recheck(&mut self, out: &mut SchedOutput) {
        // Re-acquirers queued inside the monitor layer take priority on a
        // freed monitor (their original acquisition already passed the
        // prediction check; the wait released the monitor physically but
        // the bookkeeping still pins it). Ascending slot index is thread
        // age, so the sweep visits blocked requests oldest-first without
        // materialising a temporary list.
        for i in 0..self.pending.bound() {
            let Some(&mutex) = self.pending.get(i) else {
                continue;
            };
            if !self.sync.is_free(mutex) {
                continue;
            }
            // Monitor-layer re-acquirers first, FIFO.
            if let Some(g) = self.sync.grant_next(mutex) {
                out.decision(|| Decision::Grant {
                    tid: g.tid,
                    mutex,
                    from_wait: g.from_wait,
                });
                out.push(SchedAction::Resume(g.tid));
                continue;
            }
            let tid = ThreadId::new(i as u32);
            if self.eligible(tid, mutex) {
                self.pending.remove(i);
                let outcome = self.sync.lock(tid, mutex);
                debug_assert_eq!(outcome, LockOutcome::Acquired);
                out.decision(|| Decision::Grant {
                    tid,
                    mutex,
                    from_wait: false,
                });
                out.push(SchedAction::Resume(tid));
            }
        }
    }

    /// Grants queued re-acquirers of `mutex` if it is free.
    fn drain_reacquirers(&mut self, mutex: dmt_lang::MutexId, out: &mut SchedOutput) {
        if self.sync.is_free(mutex) {
            if let Some(g) = self.sync.grant_next(mutex) {
                debug_assert!(g.from_wait);
                out.decision(|| Decision::Grant {
                    tid: g.tid,
                    mutex,
                    from_wait: true,
                });
                out.push(SchedAction::Resume(g.tid));
            }
        }
    }
}

impl Scheduler for PmatScheduler {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Pmat
    }

    fn sync_core(&self) -> &SyncCore {
        &self.sync
    }

    /// Only per-mutex grant order is replica-independent.
    fn global_order_deterministic(&self) -> bool {
        false
    }

    /// `lock_queued` adds gate-blocked requests awaiting the prediction
    /// check; `sched_queue` is the active-thread queue (runnable set).
    fn depths(&self) -> DepthSample {
        let mut d = self.sync.depths();
        d.lock_queued += self.pending.len() as u32;
        d.sched_queue = self.queue.len() as u32;
        d
    }

    fn on_event(&mut self, ev: &SchedEvent, out: &mut SchedOutput) {
        match *ev {
            SchedEvent::RequestArrived { tid, method, .. } => {
                if let Err(pos) = self.queue.binary_search(&tid) {
                    self.queue.insert(pos, tid);
                }
                self.book.on_request(tid, method);
                out.decision(|| Decision::Admit { tid });
                out.push(SchedAction::Admit(tid));
            }
            SchedEvent::LockRequested {
                tid,
                sync_id,
                mutex,
            } => {
                self.book.on_lock(tid, sync_id, mutex);
                if self.sync.holds(tid, mutex) {
                    let outcome = self.sync.lock(tid, mutex);
                    debug_assert_eq!(outcome, LockOutcome::Acquired);
                    out.decision(|| Decision::Grant {
                        tid,
                        mutex,
                        from_wait: false,
                    });
                    out.push(SchedAction::Resume(tid));
                    return;
                }
                self.pending.insert(tid.index(), mutex);
                // The §4.3 prediction verdict at request time; a `false`
                // here shows up as a later Grant once a recheck passes.
                out.decision(|| Decision::Predict {
                    tid,
                    mutex,
                    granted: self.eligible(tid, mutex) && self.sync.is_free(mutex),
                });
                self.recheck(out);
            }
            SchedEvent::Unlocked {
                tid,
                sync_id,
                mutex,
            } => {
                self.book.on_unlock(tid, sync_id, mutex);
                self.sync.unlock(tid, mutex);
                self.drain_reacquirers(mutex, out);
                // A release and a possible future-set shrink: re-check
                // (the paper's "thread conflicting with t releases the
                // mutex" event).
                self.recheck(out);
            }
            SchedEvent::WaitCalled { tid, mutex } => {
                self.sync.wait(tid, mutex);
                self.drain_reacquirers(mutex, out);
                self.recheck(out);
            }
            SchedEvent::NotifyCalled { tid, mutex, all } => {
                self.sync.notify(tid, mutex, all);
            }
            SchedEvent::NestedStarted { .. } => {
                // Keeps queue position and bookkeeping (see module docs).
            }
            SchedEvent::NestedCompleted { tid } => out.push(SchedAction::Resume(tid)),
            SchedEvent::ThreadFinished { tid } => {
                debug_assert!(self.sync.holds_none(tid));
                if let Ok(pos) = self.queue.binary_search(&tid) {
                    self.queue.remove(pos);
                }
                self.book.on_finish(tid);
                // "A thread conflicting with t is removed from the list" /
                // "t_u is removed from the list".
                self.recheck(out);
            }
            SchedEvent::LockInfo {
                tid,
                sync_id,
                mutex,
            } => {
                self.book.on_lock_info(tid, sync_id, mutex);
                // "t_u becomes predicted" may now hold.
                self.recheck(out);
            }
            SchedEvent::SyncIgnored { tid, sync_id } => {
                self.book.on_ignore(tid, sync_id);
                self.recheck(out);
            }
            SchedEvent::Control(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookkeeping::StaticSyncEntry;
    use dmt_lang::{MethodIdx, MutexId, SyncId};

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }
    fn s_(v: u32) -> SyncId {
        SyncId::new(v)
    }
    fn e(sid: u32) -> StaticSyncEntry {
        StaticSyncEntry {
            sync_id: s_(sid),
            repeatable: false,
        }
    }

    /// One method with a single sync block (syncid 0).
    fn one_lock_table() -> Arc<LockTable> {
        Arc::new(LockTable::new(vec![Some(vec![e(0)])]))
    }

    fn arrive(tid: u32) -> SchedEvent {
        SchedEvent::RequestArrived {
            tid: t(tid),
            method: MethodIdx::new(0),
            request_seq: tid as u64,
            dummy: false,
        }
    }
    fn info(tid: u32, sid: u32, mx: u32) -> SchedEvent {
        SchedEvent::LockInfo {
            tid: t(tid),
            sync_id: s_(sid),
            mutex: m(mx),
        }
    }
    fn lock(tid: u32, sid: u32, mx: u32) -> SchedEvent {
        SchedEvent::LockRequested {
            tid: t(tid),
            sync_id: s_(sid),
            mutex: m(mx),
        }
    }
    fn unlock(tid: u32, sid: u32, mx: u32) -> SchedEvent {
        SchedEvent::Unlocked {
            tid: t(tid),
            sync_id: s_(sid),
            mutex: m(mx),
        }
    }
    fn finish(tid: u32) -> SchedEvent {
        SchedEvent::ThreadFinished { tid: t(tid) }
    }

    #[test]
    fn head_of_queue_always_locks() {
        let mut s = PmatScheduler::new(one_lock_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        out.clear();
        s.on_event(&lock(0, 0, 7), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
    }

    #[test]
    fn unpredicted_predecessor_blocks_younger_thread() {
        let mut s = PmatScheduler::new(one_lock_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t1 requests m9; t0 has not announced anything → blocked.
        s.on_event(&lock(1, 0, 9), &mut out);
        assert!(out.actions.is_empty());
        // t0 announces a *different* mutex: t1 unblocks (Figure 3(b)).
        s.on_event(&info(0, 0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn conflicting_announcement_keeps_blocking_until_done() {
        let mut s = PmatScheduler::new(one_lock_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t0 announces m9 — the same mutex t1 wants.
        s.on_event(&info(0, 0, 9), &mut out);
        s.on_event(&lock(1, 0, 9), &mut out);
        assert!(out.actions.is_empty(), "announced future conflict blocks");
        // t0 takes and releases its lock: entry Done → t1 granted.
        s.on_event(&lock(0, 0, 9), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 0, 9), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        assert_eq!(s.sync_core().owner(m(9)), Some(t(1)));
    }

    #[test]
    fn predecessor_finishing_unblocks() {
        let table = Arc::new(LockTable::unanalyzed(1));
        let mut s = PmatScheduler::new(table);
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        // t0 is unanalysed: never predicted; t1 blocks.
        s.on_event(&lock(1, 0, 9), &mut out);
        assert!(out.actions.is_empty());
        s.on_event(&finish(0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn grants_same_mutex_in_age_order() {
        let table = Arc::new(LockTable::new(vec![
            Some(vec![e(0)]),
            Some(vec![e(1)]),
            Some(vec![e(2)]),
        ]));
        let mut s = PmatScheduler::new(table);
        let mut out = SchedOutput::new();
        for (i, method) in [(0u32, 0u32), (1, 1), (2, 2)] {
            s.on_event(
                &SchedEvent::RequestArrived {
                    tid: t(i),
                    method: MethodIdx::new(method),
                    request_seq: i as u64,
                    dummy: false,
                },
                &mut out,
            );
        }
        out.clear();
        // Everyone announces m5, younger threads request first.
        s.on_event(&info(0, 0, 5), &mut out);
        s.on_event(&info(1, 1, 5), &mut out);
        s.on_event(&info(2, 2, 5), &mut out);
        s.on_event(&lock(2, 2, 5), &mut out);
        s.on_event(&lock(1, 1, 5), &mut out);
        assert!(
            out.actions.is_empty(),
            "older conflicting announcements block"
        );
        s.on_event(&lock(0, 0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&unlock(0, 0, 5), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(1))],
            "age order, not request order"
        );
        out.clear();
        s.on_event(&unlock(1, 1, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(2))]);
        out.clear();
        s.on_event(&unlock(2, 2, 5), &mut out);
        assert!(out.actions.is_empty());
        assert!(s.sync_core().is_quiescent());
    }

    #[test]
    fn disjoint_lock_sets_run_concurrently() {
        // The Figure 3(b) ideal: predicted, non-overlapping threads all
        // hold their locks at once.
        let table = Arc::new(LockTable::new(vec![
            Some(vec![e(0)]),
            Some(vec![e(1)]),
            Some(vec![e(2)]),
        ]));
        let mut s = PmatScheduler::new(table);
        let mut out = SchedOutput::new();
        for i in 0..3u32 {
            s.on_event(
                &SchedEvent::RequestArrived {
                    tid: t(i),
                    method: MethodIdx::new(i),
                    request_seq: i as u64,
                    dummy: false,
                },
                &mut out,
            );
        }
        out.clear();
        s.on_event(&info(0, 0, 10), &mut out);
        s.on_event(&info(1, 1, 11), &mut out);
        s.on_event(&info(2, 2, 12), &mut out);
        s.on_event(&lock(2, 2, 12), &mut out);
        s.on_event(&lock(1, 1, 11), &mut out);
        s.on_event(&lock(0, 0, 10), &mut out);
        // All three granted — true concurrency under determinism.
        assert_eq!(
            out.actions,
            vec![
                SchedAction::Resume(t(2)),
                SchedAction::Resume(t(1)),
                SchedAction::Resume(t(0))
            ]
        );
        assert_eq!(s.sync_core().owner(m(10)), Some(t(0)));
        assert_eq!(s.sync_core().owner(m(11)), Some(t(1)));
        assert_eq!(s.sync_core().owner(m(12)), Some(t(2)));
    }

    #[test]
    fn suspended_unpredicted_predecessor_still_blocks() {
        let mut s = PmatScheduler::new(one_lock_table());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(&arrive(1), &mut out);
        out.clear();
        s.on_event(&SchedEvent::NestedStarted { tid: t(0) }, &mut out);
        s.on_event(&lock(1, 0, 9), &mut out);
        assert!(
            out.actions.is_empty(),
            "suspension does not remove t0 from the queue"
        );
        s.on_event(&SchedEvent::NestedCompleted { tid: t(0) }, &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        s.on_event(&info(0, 0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
    }

    #[test]
    fn wait_and_notify_reacquire_deterministically() {
        let table = Arc::new(LockTable::new(vec![Some(vec![e(0)]), Some(vec![e(1)])]));
        let mut s = PmatScheduler::new(table);
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(
            &SchedEvent::RequestArrived {
                tid: t(1),
                method: MethodIdx::new(1),
                request_seq: 1,
                dummy: false,
            },
            &mut out,
        );
        out.clear();
        s.on_event(&lock(0, 0, 3), &mut out);
        out.clear();
        s.on_event(
            &SchedEvent::WaitCalled {
                tid: t(0),
                mutex: m(3),
            },
            &mut out,
        );
        assert_eq!(s.sync_core().wait_set(m(3)), vec![t(0)]);
        // t0 pins m3 in its table but sits in m3's wait set, so the
        // notifier t1 may take the monitor — the producer/consumer
        // pattern must stay live.
        s.on_event(&lock(1, 1, 3), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        out.clear();
        s.on_event(
            &SchedEvent::NotifyCalled {
                tid: t(1),
                mutex: m(3),
                all: false,
            },
            &mut out,
        );
        s.on_event(&unlock(1, 1, 3), &mut out);
        // t0 re-acquires on the notifier's release.
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        assert_eq!(s.sync_core().owner(m(3)), Some(t(0)));
    }

    #[test]
    fn hot_hint_withdraws_the_prediction_waiver() {
        // Unhinted: t0 announces m5, t1 may take m9 concurrently
        // (disjoint predicted lock sets). Hinted hot m9: t1 must wait
        // for its elder even though prediction proves disjointness.
        let table = Arc::new(LockTable::new(vec![Some(vec![e(0)]), Some(vec![e(1)])]));
        let mut hints = ContentionHints::new();
        hints.mark_hot(m(9));
        let mut s = PmatScheduler::new(table).with_hints(hints);
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(
            &SchedEvent::RequestArrived {
                tid: t(1),
                method: MethodIdx::new(1),
                request_seq: 1,
                dummy: false,
            },
            &mut out,
        );
        out.clear();
        s.on_event(&info(0, 0, 5), &mut out);
        s.on_event(&lock(1, 1, 9), &mut out);
        assert!(
            out.actions.is_empty(),
            "hot mutex serialises in age order despite disjoint prediction"
        );
        // Cold mutexes keep the waiver: the same shape on m10 grants.
        s.on_event(&lock(0, 0, 5), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(0))]);
        out.clear();
        // Elder finishes → the hot mutex flows to the next age rank.
        s.on_event(&unlock(0, 0, 5), &mut out);
        s.on_event(&finish(0), &mut out);
        assert_eq!(out.actions, vec![SchedAction::Resume(t(1))]);
        assert_eq!(s.sync_core().owner(m(9)), Some(t(1)));
    }

    #[test]
    fn empty_hints_change_nothing() {
        // The disjoint-lock-sets concurrency test, with explicit empty
        // hints: behaviour must be identical to unhinted PMAT.
        let table = Arc::new(LockTable::new(vec![Some(vec![e(0)]), Some(vec![e(1)])]));
        let mut s = PmatScheduler::new(table).with_hints(ContentionHints::new());
        let mut out = SchedOutput::new();
        s.on_event(&arrive(0), &mut out);
        s.on_event(
            &SchedEvent::RequestArrived {
                tid: t(1),
                method: MethodIdx::new(1),
                request_seq: 1,
                dummy: false,
            },
            &mut out,
        );
        out.clear();
        s.on_event(&info(0, 0, 10), &mut out);
        s.on_event(&info(1, 1, 11), &mut out);
        s.on_event(&lock(1, 1, 11), &mut out);
        s.on_event(&lock(0, 0, 10), &mut out);
        assert_eq!(
            out.actions,
            vec![SchedAction::Resume(t(1)), SchedAction::Resume(t(0))],
            "empty hints must preserve Figure 3(b) concurrency"
        );
    }
}
