//! Scheduler decision records and the output bundle through which they
//! are emitted.
//!
//! Every decision module communicates with its driver (engine, harness,
//! runtime) through a [`SchedOutput`]: the actions it wants applied plus
//! — when recording is enabled — a stream of typed [`Decision`] records
//! describing *why* the schedule advanced the way it did (grants,
//! deferrals, prediction consults, token movement, LSA announcements,
//! PDS round barriers). The records are what `dmt-obs` turns into
//! virtual-time-stamped traces; recording them here keeps the schedulers
//! free of any notion of time or sinks.
//!
//! Cost discipline: with recording disabled (the default), emitting a
//! decision is a single predictable branch — the record is never even
//! constructed (the [`SchedOutput::decision`] closure is not called) and
//! the decision vector never allocates. The engine's ns/event overhead
//! guard (`dmt-bench`) pins exactly this property.

use crate::event::SchedAction;
use crate::ids::ThreadId;
use dmt_lang::MutexId;

/// Why a scheduler chose *not* to advance a thread right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeferReason {
    /// The requested mutex is held (plain monitor contention).
    MutexBusy,
    /// A deterministic order gate: an older/expected thread goes first
    /// (LSA announcement order, PMAT age order, replay log order).
    OrderGate,
    /// Admission is batched and the current round is full (PDS).
    Barrier,
    /// The requester is not the token holder / primary (MAT).
    Token,
}

impl DeferReason {
    pub fn name(self) -> &'static str {
        match self {
            DeferReason::MutexBusy => "mutex-busy",
            DeferReason::OrderGate => "order-gate",
            DeferReason::Barrier => "barrier",
            DeferReason::Token => "token",
        }
    }
}

/// One scheduling decision, in the order the decision module made it.
///
/// Records carry no timestamps: a scheduler is a pure state machine and
/// the *driver* stamps records with virtual time when it forwards them
/// to a trace sink (`dmt-obs`). For deterministic algorithms the
/// per-mutex projection of the `Grant` records is replica-independent
/// (same match levels as the execution traces; see `dmt-replica`'s
/// checker), which the observability tests pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// A request was admitted into execution.
    Admit { tid: ThreadId },
    /// A request arrived but admission was deferred (SEQ pending queue,
    /// SAT ready queue, PDS waiting room).
    AdmitDefer { tid: ThreadId },
    /// A monitor was granted to `tid` (fresh acquisition or wait-set
    /// re-entry).
    Grant {
        tid: ThreadId,
        mutex: MutexId,
        from_wait: bool,
    },
    /// A lock request was parked.
    Defer {
        tid: ThreadId,
        mutex: MutexId,
        reason: DeferReason,
    },
    /// A bookkeeping/prediction consult (MAT-LL last-lock analysis,
    /// PMAT §4.3 grant condition): `granted` is the verdict.
    Predict {
        tid: ThreadId,
        mutex: MutexId,
        granted: bool,
    },
    /// MAT: `tid` became the lock-granting primary (head of the token
    /// queue).
    TokenGrant { tid: ThreadId },
    /// MAT: the primary released the token; `last_lock` when the
    /// bookkeeping proved no further locks follow (§4.1) rather than the
    /// thread finishing or suspending.
    TokenRelease { tid: ThreadId, last_lock: bool },
    /// LSA: the leader broadcast grant number `order` for `(tid, mutex)`.
    Announce {
        tid: ThreadId,
        mutex: MutexId,
        order: u64,
    },
    /// PDS: a new round started with `pool` threads, `dummies` of which
    /// are filler requests.
    RoundStart { pool: u32, dummies: u32 },
}

impl Decision {
    /// Short stable label (used by trace exporters and tables).
    pub fn name(&self) -> &'static str {
        match self {
            Decision::Admit { .. } => "admit",
            Decision::AdmitDefer { .. } => "admit-defer",
            Decision::Grant { .. } => "grant",
            Decision::Defer { .. } => "defer",
            Decision::Predict { .. } => "predict",
            Decision::TokenGrant { .. } => "token-grant",
            Decision::TokenRelease { .. } => "token-release",
            Decision::Announce { .. } => "announce",
            Decision::RoundStart { .. } => "round-start",
        }
    }

    /// The mutex this decision concerns, if any (drives the per-mutex
    /// projection the cross-replica identity check compares).
    pub fn mutex(&self) -> Option<MutexId> {
        match *self {
            Decision::Grant { mutex, .. }
            | Decision::Defer { mutex, .. }
            | Decision::Predict { mutex, .. }
            | Decision::Announce { mutex, .. } => Some(mutex),
            _ => None,
        }
    }
}

/// The output bundle a scheduler fills per event: actions to apply plus
/// (optionally) the decision records behind them.
///
/// Drivers keep one `SchedOutput` as a scratch buffer and reuse it
/// across dispatches, so the action path stays allocation-free in steady
/// state exactly as the old `&mut Vec<SchedAction>` signature was.
#[derive(Debug, Default)]
pub struct SchedOutput {
    /// Actions in decision order (applied by the driver in order).
    pub actions: Vec<SchedAction>,
    decisions: Vec<Decision>,
    record: bool,
}

impl SchedOutput {
    /// An output bundle with decision recording off (the hot-path
    /// default).
    pub fn new() -> Self {
        SchedOutput::default()
    }

    /// An output bundle that records decisions.
    pub fn recording() -> Self {
        let mut o = SchedOutput::default();
        o.set_recording(true);
        o
    }

    /// Enables/disables decision recording. Enabling preallocates the
    /// record vector so steady-state recording does not grow it per
    /// event.
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
        if on && self.decisions.capacity() == 0 {
            self.decisions.reserve(64);
        }
    }

    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Appends an action.
    #[inline]
    pub fn push(&mut self, a: SchedAction) {
        self.actions.push(a);
    }

    /// Records a decision. With recording disabled this is one
    /// predictable branch: `f` is never called, nothing is constructed,
    /// nothing allocates.
    #[inline]
    pub fn decision(&mut self, f: impl FnOnce() -> Decision) {
        if self.record {
            self.decisions.push(f());
        }
    }

    /// The decisions recorded since the last [`SchedOutput::clear`].
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Capacity of the decision vector — 0 proves the disabled path
    /// never allocated (asserted by the overhead tests).
    pub fn decision_capacity(&self) -> usize {
        self.decisions.capacity()
    }

    /// Clears actions and decisions, keeping both allocations.
    pub fn clear(&mut self) {
        self.actions.clear();
        self.decisions.clear();
    }
}

/// A point-in-time census of where threads are parked, per scheduler.
///
/// Sampled by the engine after each scheduler dispatch (when queue-depth
/// observation is enabled) and aggregated into log-scale histograms for
/// the `figures obs` experiment. All counts are instantaneous; the split
/// mirrors the paper's vocabulary: monitor contention (`lock_queued`,
/// `wait_set`) versus algorithm-imposed gating (`admission`,
/// `sched_queue`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepthSample {
    /// Requests arrived but not yet admitted (SEQ pending, SAT ready,
    /// PDS waiting room).
    pub admission: u32,
    /// Threads blocked on a busy or gated monitor (sync-core queues plus
    /// scheduler-side gated lock requests).
    pub lock_queued: u32,
    /// Threads parked in condition-variable wait sets.
    pub wait_set: u32,
    /// Algorithm-specific backlog: MAT token queue, PDS pool backlog,
    /// LSA undecided/unreplayed requests, PMAT age-queue residents.
    pub sched_queue: u32,
}

impl DepthSample {
    /// Every thread currently parked for any reason.
    pub fn total(&self) -> u32 {
        self.admission + self.lock_queued + self.wait_set + self.sched_queue
    }
}

/// Observed contention fed back into a scheduler: the set of mutexes a
/// prior (or probe) run measured as *hot* — dominating contended-wait
/// time in a [`ContentionHints`]-producing profile (`dmt-obs`).
///
/// The feedback loop the 2007 paper motivates but never builds: PMAT
/// treats a hot mutex's waiters as unpredictable — prediction stops
/// waiving age order for it, so hot objects serialise in admission
/// (age) order like SEQ while cold objects keep running concurrently.
///
/// Determinism: hints are plain configuration, identical on every
/// replica of a run, so a hinted scheduler is exactly as deterministic
/// as an unhinted one — only the (fixed) grant rule differs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentionHints {
    /// Dense hot-bit per mutex index; absent indices are cold.
    hot: Vec<bool>,
}

impl ContentionHints {
    /// No hints: every mutex cold (the no-feedback baseline).
    pub fn new() -> Self {
        ContentionHints::default()
    }

    /// Marks `mutex` as hot.
    pub fn mark_hot(&mut self, mutex: MutexId) {
        let i = mutex.index();
        if self.hot.len() <= i {
            self.hot.resize(i + 1, false);
        }
        self.hot[i] = true;
    }

    /// Whether `mutex` was marked hot.
    #[inline]
    pub fn is_hot(&self, mutex: MutexId) -> bool {
        self.hot.get(mutex.index()).copied().unwrap_or(false)
    }

    /// True when no mutex is marked (hinted behaviour == unhinted).
    pub fn is_empty(&self) -> bool {
        !self.hot.iter().any(|&h| h)
    }

    /// Number of hot mutexes.
    pub fn hot_count(&self) -> usize {
        self.hot.iter().filter(|&&h| h).count()
    }

    /// Hot mutexes in id order.
    pub fn hot_mutexes(&self) -> Vec<MutexId> {
        self.hot
            .iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(i, _)| MutexId::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_hints_default_cold_and_mark_hot() {
        let mut h = ContentionHints::new();
        assert!(h.is_empty());
        assert!(!h.is_hot(MutexId::new(5)));
        h.mark_hot(MutexId::new(5));
        assert!(h.is_hot(MutexId::new(5)));
        assert!(!h.is_hot(MutexId::new(4)));
        assert!(!h.is_hot(MutexId::new(1000)), "out of range is cold");
        assert_eq!(h.hot_count(), 1);
        assert_eq!(h.hot_mutexes(), vec![MutexId::new(5)]);
        assert!(!h.is_empty());
    }

    #[test]
    fn disabled_output_never_constructs_or_allocates() {
        let mut out = SchedOutput::new();
        let mut called = false;
        out.decision(|| {
            called = true;
            Decision::Admit {
                tid: ThreadId::new(0),
            }
        });
        assert!(!called, "decision closure ran with recording off");
        assert_eq!(out.decisions().len(), 0);
        assert_eq!(out.decision_capacity(), 0, "disabled path allocated");
    }

    #[test]
    fn recording_output_keeps_order_and_survives_clear() {
        let mut out = SchedOutput::recording();
        out.decision(|| Decision::Admit {
            tid: ThreadId::new(1),
        });
        out.decision(|| Decision::Defer {
            tid: ThreadId::new(2),
            mutex: MutexId::new(0),
            reason: DeferReason::Token,
        });
        assert_eq!(out.decisions().len(), 2);
        assert_eq!(out.decisions()[0].name(), "admit");
        let cap = out.decision_capacity();
        out.clear();
        assert_eq!(out.decisions().len(), 0);
        assert_eq!(
            out.decision_capacity(),
            cap,
            "clear must keep the allocation"
        );
    }

    #[test]
    fn mutex_projection_covers_lock_decisions() {
        let m = MutexId::new(3);
        let t = ThreadId::new(0);
        assert_eq!(
            Decision::Grant {
                tid: t,
                mutex: m,
                from_wait: false
            }
            .mutex(),
            Some(m)
        );
        assert_eq!(
            Decision::Defer {
                tid: t,
                mutex: m,
                reason: DeferReason::MutexBusy
            }
            .mutex(),
            Some(m)
        );
        assert_eq!(Decision::TokenGrant { tid: t }.mutex(), None);
    }

    #[test]
    fn depth_sample_totals() {
        let d = DepthSample {
            admission: 1,
            lock_queued: 2,
            wait_set: 3,
            sched_queue: 4,
        };
        assert_eq!(d.total(), 10);
        assert_eq!(DepthSample::default().total(), 0);
    }
}
