//! The Figure-2 scenario: last-lock analysis.
//!
//! "Usually, the last unlock is followed by a final computation. In the
//! case of FTflex the thread builds the reply message that is sent back
//! to the client. The final computation has no influence on the
//! determinism of mutex locking. Providing the scheduler with information
//! about when a thread's last lock has been released enables to change
//! the primary even before thread termination (Figure 2(b))."
//!
//! The method locks one pool mutex, updates, unlocks, then performs a
//! long final computation. Under plain MAT the primary keeps the token
//! through that computation; under MAT-LL the token moves at the unlock,
//! so the next thread's lock proceeds in parallel with the reply build.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{MethodIdx, ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;
use dmt_sim::SplitMix64;

#[derive(Clone, Copy, Debug)]
pub struct Fig2Params {
    /// Critical-section length.
    pub cs_ms: f64,
    /// The final ("reply build") computation after the last unlock.
    pub final_ms: f64,
    /// Pre-lock computation.
    pub pre_ms: f64,
    pub n_mutexes: u32,
    pub n_clients: usize,
    pub requests_per_client: usize,
    pub seed: u64,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            cs_ms: 0.5,
            final_ms: 5.0,
            pre_ms: 0.5,
            n_mutexes: 100,
            n_clients: 8,
            requests_per_client: 4,
            seed: 7,
        }
    }
}

pub fn build_object(p: &Fig2Params) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("Fig2LastLock");
    ob.cells(p.n_mutexes);
    let mut m = ob.method("serve", 1);
    m.compute(DurExpr::Nanos((p.pre_ms * 1e6) as u64));
    m.sync(
        MutexExpr::Pool {
            base: 0,
            len: p.n_mutexes,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::Nanos((p.cs_ms * 1e6) as u64));
            b.update_indexed(0, p.n_mutexes, 0, IntExpr::Lit(1));
        },
    );
    // The reply-building computation after the provably last lock.
    m.compute(DurExpr::Nanos((p.final_ms * 1e6) as u64));
    m.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

pub fn client_scripts(p: &Fig2Params) -> Vec<ClientScript> {
    let serve = MethodIdx::new(0);
    let mut rng = SplitMix64::new(p.seed);
    (0..p.n_clients)
        .map(|c| {
            let mut crng = rng.split(c as u64);
            ClientScript::closed(
                (0..p.requests_per_client)
                    .map(|_| {
                        (
                            serve,
                            RequestArgs::new(vec![Value::Int(
                                crng.next_below(p.n_mutexes as u64) as i64
                            )]),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

pub fn scenario(p: &Fig2Params) -> ScenarioPair {
    crate::make_variants(&build_object(p), client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn mat_ll_beats_mat_when_final_computation_dominates() {
        let p = Fig2Params {
            n_clients: 6,
            requests_per_client: 3,
            ..Fig2Params::default()
        };
        let pair = scenario(&p);
        let run = |kind| {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
            assert!(!res.deadlocked, "{kind:?}");
            res.response_times.mean()
        };
        let mat = run(SchedulerKind::Mat);
        let mat_ll = run(SchedulerKind::MatLL);
        assert!(
            mat_ll < mat * 0.9,
            "last-lock hand-off should clearly win: MAT {mat:.2}ms vs MAT-LL {mat_ll:.2}ms"
        );
    }

    #[test]
    fn object_is_fully_predictable() {
        let report = dmt_analysis::analyze(&build_object(&Fig2Params::default()));
        assert!(report.methods[0].predictable_at_entry);
    }
}
