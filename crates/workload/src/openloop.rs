//! Open-loop read/write-mix workload (the ROADMAP "workload breadth"
//! item).
//!
//! The paper's only quantitative benchmark (Figure 1) is a *closed
//! loop*: each client submits its next request when the previous reply
//! arrives, so offered load self-throttles and queueing delay never
//! accumulates. That regime hides exactly the admission differences
//! this suite wants to measure — LSA's leader serialises grant
//! decisions while MAT admits concurrently, which only separates when
//! latecomers actually queue. This module provides the missing regime:
//!
//! * a **key-value read/write mix** over `n_mutexes` cells, each cell
//!   guarded by its pool mutex — `get(key)` holds the lock for a short
//!   read, `put(key, val)` holds it longer and updates the cell (an
//!   order-sensitive write, so the determinism checker still bites);
//! * an **open-loop client model**: every client draws a deterministic
//!   arrival schedule — memoryless ([`dmt_sim::PoissonProcess`], the
//!   default) or bursty on/off ([`dmt_sim::OnOffProcess`], via
//!   [`OpenLoopParams::with_bursts`]) — and submits on it, replies or
//!   not, at an aggregate offered rate of `offered_rps` requests per
//!   virtual second. Key popularity is uniform by default or Zipf-skewed
//!   ([`OpenLoopParams::with_zipf`]), concentrating contention on the
//!   hot low-numbered cells.
//!
//! All randomness (operation mix, key choice, write values, arrival
//! gaps) is drawn client-side from split [`SplitMix64`] streams and
//! baked into the scripts, so a scenario is a pure function of its
//! parameters — the property the byte-identical `BENCH_openloop.json`
//! regression rests on. A closed-loop builder over the *same* request
//! mix ([`closed_scenario`]) is included so experiments can price the
//! client model itself.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;
use dmt_sim::{OnOffProcess, PoissonProcess, SplitMix64, ZipfSampler};

/// How each client times its submissions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals at the client's share of `offered_rps` — the
    /// smooth baseline the original suite measured.
    Poisson,
    /// MMPP-style on/off bursts ([`dmt_sim::OnOffProcess`]): the client
    /// alternates exponential ON dwells (mean `mean_on_ns`) emitting
    /// arrivals with silent OFF dwells (mean `mean_off_ns`). The ON-phase
    /// rate is scaled by `(mean_on + mean_off) / mean_on`, so the
    /// *time-averaged* offered load still equals `offered_rps` — burst
    /// grids compare against the Poisson baseline at identical load, only
    /// the clumping differs.
    OnOff { mean_on_ns: u64, mean_off_ns: u64 },
}

/// Parameters of the open-loop read/write-mix workload.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopParams {
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Aggregate offered load across all clients, requests per virtual
    /// second (each client runs an independent arrival stream averaging
    /// `offered_rps / n_clients`).
    pub offered_rps: f64,
    /// Probability that a request is a `get` (the rest are `put`s).
    pub read_fraction: f64,
    /// Number of cells / pool mutexes (keys).
    pub n_mutexes: u32,
    /// Compute before the critical section (request parsing etc.), µs.
    pub pre_us: u64,
    /// Critical-section length of a `get`, µs.
    pub read_us: u64,
    /// Critical-section length of a `put`, µs.
    pub write_us: u64,
    /// Arrival timing model ([`ArrivalModel::Poisson`] by default).
    pub arrival: ArrivalModel,
    /// Zipf exponent for key popularity. `0.0` (default) keeps the
    /// original uniform draw — bit-for-bit, via the same
    /// `next_below` call, so historical schedules are unchanged;
    /// any `s > 0` switches to a [`dmt_sim::ZipfSampler`] favouring
    /// low-numbered keys (still exactly one RNG draw per key).
    pub zipf_s: f64,
    pub seed: u64,
}

impl Default for OpenLoopParams {
    fn default() -> Self {
        OpenLoopParams {
            n_clients: 8,
            requests_per_client: 25,
            offered_rps: 200.0,
            read_fraction: 0.9,
            n_mutexes: 64,
            pre_us: 200,
            read_us: 300,
            write_us: 800,
            arrival: ArrivalModel::Poisson,
            zipf_s: 0.0,
            seed: 42,
        }
    }
}

impl OpenLoopParams {
    pub fn with_offered_rps(mut self, rps: f64) -> Self {
        self.offered_rps = rps;
        self
    }

    pub fn with_read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switch arrivals to on/off bursts with the given mean dwell times
    /// (milliseconds of virtual time). Average offered load is preserved;
    /// see [`ArrivalModel::OnOff`].
    pub fn with_bursts(mut self, mean_on_ms: u64, mean_off_ms: u64) -> Self {
        self.arrival = ArrivalModel::OnOff {
            mean_on_ns: mean_on_ms * 1_000_000,
            mean_off_ns: mean_off_ms * 1_000_000,
        };
        self
    }

    /// Skew key popularity with Zipf exponent `s` (0 = uniform).
    pub fn with_zipf(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self
    }

    pub fn total_requests(&self) -> usize {
        self.n_clients * self.requests_per_client
    }
}

/// Pool base for the key mutexes (`this` gets a disjoint id).
const POOL_BASE: u32 = 0;

/// Builds the store object: `get(key)`, `put(key, val)`, and a `noop`
/// for PDS dummies. Both lock parameters are `Pool` indexed by argument
/// 0, i.e. announceable at method entry — the prediction schedulers
/// (PMAT/MAT-LL) can run the analysed variant meaningfully.
pub fn build_object(p: &OpenLoopParams) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("RwStore");
    ob.cells(p.n_mutexes); // cell k guarded by pool mutex k
    let mut get = ob.method("get", 1);
    get.compute(DurExpr::micros(p.pre_us));
    get.sync(
        MutexExpr::Pool {
            base: POOL_BASE,
            len: p.n_mutexes,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::micros(p.read_us));
        },
    );
    get.done();
    let mut put = ob.method("put", 2);
    put.compute(DurExpr::micros(p.pre_us));
    put.sync(
        MutexExpr::Pool {
            base: POOL_BASE,
            len: p.n_mutexes,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::micros(p.write_us));
            // Order-sensitive: last writer wins per cell, so replica
            // state hashes expose any grant-order divergence.
            b.update_indexed(POOL_BASE, p.n_mutexes, 0, IntExpr::Arg(1));
        },
    );
    put.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

/// The request mix every client model shares: per-client streams of
/// (method, key, value) draws. Split streams keep the mix independent
/// of the arrival schedule, so open and closed variants execute the
/// *same* requests.
fn request_mix(p: &OpenLoopParams) -> Vec<Vec<(dmt_lang::MethodIdx, RequestArgs)>> {
    let get = dmt_lang::MethodIdx::new(0);
    let put = dmt_lang::MethodIdx::new(1);
    // Uniform keys keep the historical `next_below` call (so pre-existing
    // schedules — and the golden artifacts built on them — stay
    // bit-identical); Zipf keys substitute a CDF inversion that also
    // consumes exactly one draw per key.
    let zipf = (p.zipf_s > 0.0).then(|| ZipfSampler::new(p.n_mutexes as usize, p.zipf_s));
    let mut rng = SplitMix64::new(p.seed);
    (0..p.n_clients)
        .map(|c| {
            let mut crng = rng.split(c as u64);
            (0..p.requests_per_client)
                .map(|_| {
                    let k = match &zipf {
                        None => crng.next_below(p.n_mutexes as u64),
                        Some(z) => z.sample(&mut crng),
                    };
                    let key = Value::Int(k as i64);
                    if crng.next_bool(p.read_fraction) {
                        (get, RequestArgs::new(vec![key]))
                    } else {
                        let val = Value::Int(crng.next_below(1 << 20) as i64);
                        (put, RequestArgs::new(vec![key, val]))
                    }
                })
                .collect()
        })
        .collect()
}

/// Open-loop client scripts: the shared request mix on per-client
/// arrival schedules (Poisson or on/off bursts) averaging
/// `offered_rps / n_clients` each.
pub fn client_scripts(p: &OpenLoopParams) -> Vec<ClientScript> {
    let per_client_rate = p.offered_rps / p.n_clients as f64;
    let mut arrival_rng = SplitMix64::new(p.seed ^ 0x6f70_656e_6c6f_6f70); // "openloop"
    request_mix(p)
        .into_iter()
        .map(|requests| {
            let n = requests.len();
            let seed = arrival_rng.next_u64();
            let schedule = match p.arrival {
                ArrivalModel::Poisson => {
                    PoissonProcess::new(seed, per_client_rate).take_schedule(n)
                }
                ArrivalModel::OnOff {
                    mean_on_ns,
                    mean_off_ns,
                } => {
                    // Peak up the ON rate by the inverse duty cycle so
                    // the long-run average matches the Poisson baseline.
                    let duty = mean_on_ns as f64 / (mean_on_ns + mean_off_ns) as f64;
                    OnOffProcess::new(seed, per_client_rate / duty, 0.0, mean_on_ns, mean_off_ns)
                        .take_schedule(n)
                }
            };
            ClientScript::open_loop(requests, schedule)
        })
        .collect()
}

/// Closed-loop scripts over the identical request mix (for pricing the
/// client model itself; `offered_rps` is ignored).
pub fn closed_client_scripts(p: &OpenLoopParams) -> Vec<ClientScript> {
    request_mix(p)
        .into_iter()
        .map(ClientScript::closed)
        .collect()
}

/// The open-loop scenario in both instrumentation variants.
pub fn scenario(p: &OpenLoopParams) -> ScenarioPair {
    let obj = build_object(p);
    debug_assert_eq!(obj.method_by_name("get"), Some(dmt_lang::MethodIdx::new(0)));
    debug_assert_eq!(obj.method_by_name("put"), Some(dmt_lang::MethodIdx::new(1)));
    crate::make_variants(&obj, client_scripts(p), "noop")
}

/// The closed-loop variant of the same workload.
pub fn closed_scenario(p: &OpenLoopParams) -> ScenarioPair {
    let obj = build_object(p);
    crate::make_variants(&obj, closed_client_scripts(p), "noop")
}

/// Partitions the open-loop workload into `n_groups` group scenarios
/// for `dmt_replica::run_sharded`: sharded key routing at the client
/// edge. Global client `c` is routed to group `c % n_groups` (order
/// preserved within a group), and each group owns a private copy of the
/// store — the aggregate object space is `n_groups × n_mutexes` cells,
/// every key local to its client's shard. The global script set is
/// generated once from `p` and then dealt out, so the partition is a
/// pure function of `(p, n_groups)`: the same clients submit the same
/// requests at the same virtual instants whether the groups then run on
/// one worker or many.
///
/// This is also the scaling path: with `n_clients` at 1e5+ the script
/// generation stays linear and each group engine only ever holds its
/// `1/n_groups` slice of the client population.
pub fn sharded_scenarios(p: &OpenLoopParams, n_groups: usize) -> Vec<ScenarioPair> {
    assert!(n_groups >= 1, "need at least one group");
    let obj = build_object(p);
    let mut per_group: Vec<Vec<ClientScript>> = vec![Vec::new(); n_groups];
    for (c, s) in client_scripts(p).into_iter().enumerate() {
        per_group[c % n_groups].push(s);
    }
    per_group
        .into_iter()
        .map(|clients| crate::make_variants(&obj, clients, "noop"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn object_is_fully_analysable() {
        let p = OpenLoopParams::default();
        let obj = build_object(&p);
        assert!(obj.validate().is_empty());
        let report = dmt_analysis::analyze(&obj);
        for m in &report.methods[..2] {
            assert!(m.analyzable);
            assert!(m.predictable_at_entry, "pool keys announceable at entry");
        }
    }

    #[test]
    fn scripts_are_deterministic_and_respect_the_mix() {
        let p = OpenLoopParams::default();
        let a = client_scripts(&p);
        let b = client_scripts(&p);
        assert_eq!(a.len(), b.len());
        let mut reads = 0usize;
        let mut total = 0usize;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.arrivals, y.arrivals);
            assert!(x.is_open_loop());
            reads += x.requests.iter().filter(|(m, _)| m.index() == 0).count();
            total += x.requests.len();
        }
        // 90 % reads, within sampling noise for 200 draws.
        let frac = reads as f64 / total as f64;
        assert!((0.8..=1.0).contains(&frac), "read fraction {frac}");
        // Different seed → different schedule.
        let c = client_scripts(&p.with_seed(43));
        assert_ne!(a[0].arrivals, c[0].arrivals);
    }

    #[test]
    fn closed_variant_runs_the_same_requests() {
        let p = OpenLoopParams {
            n_clients: 3,
            requests_per_client: 5,
            ..Default::default()
        };
        let open = client_scripts(&p);
        let closed = closed_client_scripts(&p);
        for (o, c) in open.iter().zip(&closed) {
            assert_eq!(o.requests, c.requests);
            assert!(!c.is_open_loop());
        }
    }

    #[test]
    fn completes_under_every_scheduler() {
        let p = OpenLoopParams {
            n_clients: 3,
            requests_per_client: 4,
            offered_rps: 2000.0,
            n_mutexes: 8,
            ..Default::default()
        };
        let pair = scenario(&p);
        for kind in SchedulerKind::ALL {
            let cfg = EngineConfig::new(kind).with_seed(5);
            let res = Engine::new(pair.for_kind(kind), cfg).run();
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.completed_requests, 12, "{kind}");
            assert_eq!(res.latency.count(), 12, "{kind}");
        }
    }

    #[test]
    fn sharded_partition_preserves_the_global_workload() {
        let p = OpenLoopParams {
            n_clients: 10,
            requests_per_client: 4,
            ..Default::default()
        };
        // One group = the monolithic scenario, script for script.
        let whole = scenario(&p);
        let one = sharded_scenarios(&p, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].plain.clients.len(), whole.plain.clients.len());
        for (a, b) in one[0].plain.clients.iter().zip(&whole.plain.clients) {
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.arrivals, b.arrivals);
        }
        // Round-robin deal: group g's i-th client is global client
        // g + i*n_groups, so the union over groups is the global set.
        let groups = sharded_scenarios(&p, 3);
        assert_eq!(groups.len(), 3);
        let global = client_scripts(&p);
        let mut seen = 0;
        for (g, pair) in groups.iter().enumerate() {
            for (i, cs) in pair.plain.clients.iter().enumerate() {
                let c = g + i * 3;
                assert_eq!(cs.requests, global[c].requests, "group {g} client {i}");
                assert_eq!(cs.arrivals, global[c].arrivals);
                seen += 1;
            }
        }
        assert_eq!(seen, p.n_clients);
    }

    #[test]
    fn burst_arrivals_clump_but_preserve_the_mix() {
        let p = OpenLoopParams {
            requests_per_client: 200,
            ..Default::default()
        };
        let smooth = client_scripts(&p);
        let bursty = client_scripts(&p.with_bursts(20, 80));
        // Same requests (mix is split from arrivals), different timing.
        for (s, b) in smooth.iter().zip(&bursty) {
            assert_eq!(s.requests, b.requests);
            assert_ne!(s.arrivals, b.arrivals);
            let sched = b.arrivals.as_ref().unwrap();
            assert!(sched.windows(2).all(|w| w[0] < w[1]));
        }
        // Burstiness: squared coefficient of variation of inter-arrival
        // gaps well above the Poisson CV² ≈ 1.
        let cv2 = |scripts: &[ClientScript]| {
            let gaps: Vec<f64> = scripts
                .iter()
                .flat_map(|s| {
                    let a = s.arrivals.as_ref().unwrap();
                    a.windows(2)
                        .map(|w| (w[1].as_nanos() - w[0].as_nanos()) as f64)
                        .collect::<Vec<_>>()
                })
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(cv2(&bursty) > 1.8 * cv2(&smooth), "bursts not clumpy");
        // Deterministic: same params, same schedules.
        assert_eq!(
            client_scripts(&p.with_bursts(20, 80))[0].arrivals,
            bursty[0].arrivals
        );
    }

    #[test]
    fn zipf_skews_keys_without_extra_draws() {
        let p = OpenLoopParams {
            requests_per_client: 400,
            read_fraction: 1.0, // gets only: key is arg 0 everywhere
            ..Default::default()
        };
        let key_of = |r: &RequestArgs| match r.values()[0] {
            Value::Int(k) => k as u64,
            ref other => panic!("unexpected {other:?}"),
        };
        let count_low = |scripts: &[ClientScript]| {
            scripts
                .iter()
                .flat_map(|s| s.requests.iter())
                .filter(|(_, a)| key_of(a) < 4)
                .count()
        };
        let uniform = client_scripts(&p);
        let skewed = client_scripts(&p.with_zipf(1.2));
        let total = p.total_requests();
        // Uniform: ~4/64 of keys in [0, 4). Zipf 1.2: the head dominates.
        assert!(count_low(&uniform) < total / 8);
        assert!(count_low(&skewed) > total / 3, "zipf head too light");
        // The arrival schedules are untouched by the key model (split
        // streams), and the mix stays deterministic.
        for (u, s) in uniform.iter().zip(&skewed) {
            assert_eq!(u.arrivals, s.arrivals);
        }
        assert_eq!(
            client_scripts(&p.with_zipf(1.2))[0].requests,
            skewed[0].requests
        );
    }

    #[test]
    fn bursty_zipf_workload_completes_and_converges() {
        let p = OpenLoopParams {
            n_clients: 3,
            requests_per_client: 4,
            offered_rps: 2000.0,
            n_mutexes: 8,
            ..Default::default()
        }
        .with_bursts(5, 15)
        .with_zipf(1.0);
        let pair = scenario(&p);
        for kind in [SchedulerKind::Sat, SchedulerKind::Mat, SchedulerKind::Pmat] {
            let (res, outcome) = dmt_replica::check_determinism(pair.for_kind(kind), kind, 7, 0.3);
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.completed_requests, 12, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }

    #[test]
    fn deterministic_schedulers_converge_under_jitter() {
        let p = OpenLoopParams {
            n_clients: 4,
            requests_per_client: 3,
            offered_rps: 4000.0, // contended: arrivals pile up
            n_mutexes: 4,
            read_fraction: 0.5,
            ..Default::default()
        };
        let pair = scenario(&p);
        for kind in [SchedulerKind::Lsa, SchedulerKind::Mat, SchedulerKind::Pmat] {
            let (res, outcome) = dmt_replica::check_determinism(pair.for_kind(kind), kind, 9, 0.25);
            assert!(!res.deadlocked, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }
}
