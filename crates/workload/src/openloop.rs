//! Open-loop read/write-mix workload (the ROADMAP "workload breadth"
//! item).
//!
//! The paper's only quantitative benchmark (Figure 1) is a *closed
//! loop*: each client submits its next request when the previous reply
//! arrives, so offered load self-throttles and queueing delay never
//! accumulates. That regime hides exactly the admission differences
//! this suite wants to measure — LSA's leader serialises grant
//! decisions while MAT admits concurrently, which only separates when
//! latecomers actually queue. This module provides the missing regime:
//!
//! * a **key-value read/write mix** over `n_mutexes` cells, each cell
//!   guarded by its pool mutex — `get(key)` holds the lock for a short
//!   read, `put(key, val)` holds it longer and updates the cell (an
//!   order-sensitive write, so the determinism checker still bites);
//! * an **open-loop client model**: every client draws a deterministic
//!   Poisson arrival schedule ([`dmt_sim::PoissonProcess`]) and submits
//!   on it, replies or not, at an aggregate offered rate of
//!   `offered_rps` requests per virtual second.
//!
//! All randomness (operation mix, key choice, write values, arrival
//! gaps) is drawn client-side from split [`SplitMix64`] streams and
//! baked into the scripts, so a scenario is a pure function of its
//! parameters — the property the byte-identical `BENCH_openloop.json`
//! regression rests on. A closed-loop builder over the *same* request
//! mix ([`closed_scenario`]) is included so experiments can price the
//! client model itself.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;
use dmt_sim::{PoissonProcess, SplitMix64};

/// Parameters of the open-loop read/write-mix workload.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopParams {
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Aggregate offered load across all clients, requests per virtual
    /// second (each client runs an independent Poisson stream at
    /// `offered_rps / n_clients`).
    pub offered_rps: f64,
    /// Probability that a request is a `get` (the rest are `put`s).
    pub read_fraction: f64,
    /// Number of cells / pool mutexes (keys).
    pub n_mutexes: u32,
    /// Compute before the critical section (request parsing etc.), µs.
    pub pre_us: u64,
    /// Critical-section length of a `get`, µs.
    pub read_us: u64,
    /// Critical-section length of a `put`, µs.
    pub write_us: u64,
    pub seed: u64,
}

impl Default for OpenLoopParams {
    fn default() -> Self {
        OpenLoopParams {
            n_clients: 8,
            requests_per_client: 25,
            offered_rps: 200.0,
            read_fraction: 0.9,
            n_mutexes: 64,
            pre_us: 200,
            read_us: 300,
            write_us: 800,
            seed: 42,
        }
    }
}

impl OpenLoopParams {
    pub fn with_offered_rps(mut self, rps: f64) -> Self {
        self.offered_rps = rps;
        self
    }

    pub fn with_read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn total_requests(&self) -> usize {
        self.n_clients * self.requests_per_client
    }
}

/// Pool base for the key mutexes (`this` gets a disjoint id).
const POOL_BASE: u32 = 0;

/// Builds the store object: `get(key)`, `put(key, val)`, and a `noop`
/// for PDS dummies. Both lock parameters are `Pool` indexed by argument
/// 0, i.e. announceable at method entry — the prediction schedulers
/// (PMAT/MAT-LL) can run the analysed variant meaningfully.
pub fn build_object(p: &OpenLoopParams) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("RwStore");
    ob.cells(p.n_mutexes); // cell k guarded by pool mutex k
    let mut get = ob.method("get", 1);
    get.compute(DurExpr::micros(p.pre_us));
    get.sync(
        MutexExpr::Pool {
            base: POOL_BASE,
            len: p.n_mutexes,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::micros(p.read_us));
        },
    );
    get.done();
    let mut put = ob.method("put", 2);
    put.compute(DurExpr::micros(p.pre_us));
    put.sync(
        MutexExpr::Pool {
            base: POOL_BASE,
            len: p.n_mutexes,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::micros(p.write_us));
            // Order-sensitive: last writer wins per cell, so replica
            // state hashes expose any grant-order divergence.
            b.update_indexed(POOL_BASE, p.n_mutexes, 0, IntExpr::Arg(1));
        },
    );
    put.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

/// The request mix every client model shares: per-client streams of
/// (method, key, value) draws. Split streams keep the mix independent
/// of the arrival schedule, so open and closed variants execute the
/// *same* requests.
fn request_mix(p: &OpenLoopParams) -> Vec<Vec<(dmt_lang::MethodIdx, RequestArgs)>> {
    let get = dmt_lang::MethodIdx::new(0);
    let put = dmt_lang::MethodIdx::new(1);
    let mut rng = SplitMix64::new(p.seed);
    (0..p.n_clients)
        .map(|c| {
            let mut crng = rng.split(c as u64);
            (0..p.requests_per_client)
                .map(|_| {
                    let key = Value::Int(crng.next_below(p.n_mutexes as u64) as i64);
                    if crng.next_bool(p.read_fraction) {
                        (get, RequestArgs::new(vec![key]))
                    } else {
                        let val = Value::Int(crng.next_below(1 << 20) as i64);
                        (put, RequestArgs::new(vec![key, val]))
                    }
                })
                .collect()
        })
        .collect()
}

/// Open-loop client scripts: the shared request mix on per-client
/// Poisson schedules at `offered_rps / n_clients` each.
pub fn client_scripts(p: &OpenLoopParams) -> Vec<ClientScript> {
    let per_client_rate = p.offered_rps / p.n_clients as f64;
    let mut arrival_rng = SplitMix64::new(p.seed ^ 0x6f70_656e_6c6f_6f70); // "openloop"
    request_mix(p)
        .into_iter()
        .map(|requests| {
            let n = requests.len();
            let mut proc = PoissonProcess::new(arrival_rng.next_u64(), per_client_rate);
            ClientScript::open_loop(requests, proc.take_schedule(n))
        })
        .collect()
}

/// Closed-loop scripts over the identical request mix (for pricing the
/// client model itself; `offered_rps` is ignored).
pub fn closed_client_scripts(p: &OpenLoopParams) -> Vec<ClientScript> {
    request_mix(p)
        .into_iter()
        .map(ClientScript::closed)
        .collect()
}

/// The open-loop scenario in both instrumentation variants.
pub fn scenario(p: &OpenLoopParams) -> ScenarioPair {
    let obj = build_object(p);
    debug_assert_eq!(obj.method_by_name("get"), Some(dmt_lang::MethodIdx::new(0)));
    debug_assert_eq!(obj.method_by_name("put"), Some(dmt_lang::MethodIdx::new(1)));
    crate::make_variants(&obj, client_scripts(p), "noop")
}

/// The closed-loop variant of the same workload.
pub fn closed_scenario(p: &OpenLoopParams) -> ScenarioPair {
    let obj = build_object(p);
    crate::make_variants(&obj, closed_client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn object_is_fully_analysable() {
        let p = OpenLoopParams::default();
        let obj = build_object(&p);
        assert!(obj.validate().is_empty());
        let report = dmt_analysis::analyze(&obj);
        for m in &report.methods[..2] {
            assert!(m.analyzable);
            assert!(m.predictable_at_entry, "pool keys announceable at entry");
        }
    }

    #[test]
    fn scripts_are_deterministic_and_respect_the_mix() {
        let p = OpenLoopParams::default();
        let a = client_scripts(&p);
        let b = client_scripts(&p);
        assert_eq!(a.len(), b.len());
        let mut reads = 0usize;
        let mut total = 0usize;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.arrivals, y.arrivals);
            assert!(x.is_open_loop());
            reads += x.requests.iter().filter(|(m, _)| m.index() == 0).count();
            total += x.requests.len();
        }
        // 90 % reads, within sampling noise for 200 draws.
        let frac = reads as f64 / total as f64;
        assert!((0.8..=1.0).contains(&frac), "read fraction {frac}");
        // Different seed → different schedule.
        let c = client_scripts(&p.with_seed(43));
        assert_ne!(a[0].arrivals, c[0].arrivals);
    }

    #[test]
    fn closed_variant_runs_the_same_requests() {
        let p = OpenLoopParams {
            n_clients: 3,
            requests_per_client: 5,
            ..Default::default()
        };
        let open = client_scripts(&p);
        let closed = closed_client_scripts(&p);
        for (o, c) in open.iter().zip(&closed) {
            assert_eq!(o.requests, c.requests);
            assert!(!c.is_open_loop());
        }
    }

    #[test]
    fn completes_under_every_scheduler() {
        let p = OpenLoopParams {
            n_clients: 3,
            requests_per_client: 4,
            offered_rps: 2000.0,
            n_mutexes: 8,
            ..Default::default()
        };
        let pair = scenario(&p);
        for kind in SchedulerKind::ALL {
            let cfg = EngineConfig::new(kind).with_seed(5);
            let res = Engine::new(pair.for_kind(kind), cfg).run();
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.completed_requests, 12, "{kind}");
            assert_eq!(res.latency.count(), 12, "{kind}");
        }
    }

    #[test]
    fn deterministic_schedulers_converge_under_jitter() {
        let p = OpenLoopParams {
            n_clients: 4,
            requests_per_client: 3,
            offered_rps: 4000.0, // contended: arrivals pile up
            n_mutexes: 4,
            read_fraction: 0.5,
            ..Default::default()
        };
        let pair = scenario(&p);
        for kind in [SchedulerKind::Lsa, SchedulerKind::Mat, SchedulerKind::Pmat] {
            let (res, outcome) = dmt_replica::check_determinism(pair.for_kind(kind), kind, 9, 0.25);
            assert!(!res.deadlocked, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }
}
