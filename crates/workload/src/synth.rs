//! Seeded random-program synthesis for property-based testing.
//!
//! Generates structurally valid objects exercising the whole statement
//! grammar the analysis must handle: nested sync blocks with every
//! parameter class, branches, bounded loops, local/virtual calls to an
//! acyclic helper hierarchy, nested invocations, and state updates.
//! `wait`/`notify` are deliberately excluded — a random waiter with no
//! matching notifier deadlocks by construction; condition variables are
//! covered by the handwritten [`crate::buffer`] workload instead.

use dmt_lang::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{MethodIdx, ObjectBuilder, RequestArgs, Value};
use dmt_sim::SplitMix64;

/// Shape knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    pub n_public_methods: usize,
    pub n_helpers: usize,
    pub max_stmts_per_block: usize,
    pub max_depth: usize,
    pub n_mutex_pool: u32,
    pub n_cells: u32,
    pub n_fields: u32,
    /// Fixed arity for every method (arguments double as flags, mutex
    /// indices, and integers).
    pub arity: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_public_methods: 2,
            n_helpers: 2,
            max_stmts_per_block: 4,
            max_depth: 3,
            n_mutex_pool: 6,
            n_cells: 4,
            n_fields: 2,
            arity: 4,
        }
    }
}

/// Generates a valid object from a seed. Equal seeds give equal objects.
pub fn random_object(seed: u64, cfg: &SynthConfig) -> ObjectImpl {
    let mut rng = SplitMix64::new(seed);
    let mut ob = ObjectBuilder::new(format!("Synth{seed}"));
    // Cell layout: see `Gen::guarded_update`.
    ob.cells((4 + cfg.n_mutex_pool).max(cfg.n_cells));
    let fields: Vec<_> = (0..cfg.n_fields).map(|_| ob.field()).collect();

    // Helpers first (callable targets); helper k may call helpers < k,
    // keeping the call graph acyclic.
    let mut callees: Vec<MethodIdx> = Vec::new();
    for h in 0..cfg.n_helpers {
        let mut m = ob.method(format!("helper{h}"), cfg.arity).private();
        let mut g = Gen {
            rng: rng.split(1000 + h as u64),
            cfg,
            fields: &fields,
            callees: &callees.clone(),
        };
        g.block(&mut m, cfg.max_depth);
        let idx = m.done();
        callees.push(idx);
    }
    for p in 0..cfg.n_public_methods {
        let mut m = ob.method(format!("start{p}"), cfg.arity);
        let mut g = Gen {
            rng: rng.split(2000 + p as u64),
            cfg,
            fields: &fields,
            callees: &callees,
        };
        g.block(&mut m, cfg.max_depth);
        m.done();
    }
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

struct Gen<'a> {
    rng: SplitMix64,
    cfg: &'a SynthConfig,
    fields: &'a [dmt_lang::FieldId],
    callees: &'a [MethodIdx],
}

impl Gen<'_> {
    /// Argument slots are partitioned: the first half carries monitor
    /// references, the second half carries flags/integers — so the
    /// generated programs never read an integer where a monitor is
    /// required.
    fn mutex_arg(&mut self) -> usize {
        self.rng.next_below((self.cfg.arity / 2).max(1) as u64) as usize
    }

    fn scalar_arg(&mut self) -> usize {
        let half = (self.cfg.arity / 2).max(1);
        half + self.rng.next_below((self.cfg.arity - half).max(1) as u64) as usize
    }

    fn mutex_expr(&mut self) -> MutexExpr {
        match self.rng.next_below(5) {
            0 => MutexExpr::This,
            1 => MutexExpr::Konst(dmt_lang::MutexId::new(500 + self.rng.next_below(3) as u32)),
            2 => MutexExpr::Arg(self.mutex_arg()),
            3 => {
                let index_arg = self.scalar_arg();
                MutexExpr::Pool {
                    base: 0,
                    len: self.cfg.n_mutex_pool,
                    index_arg,
                }
            }
            _ => MutexExpr::Field(*self.rng.choose(self.fields).expect("fields exist")),
        }
    }

    fn cond(&mut self) -> CondExpr {
        match self.rng.next_below(3) {
            0 => CondExpr::ArgFlag(self.scalar_arg()),
            1 => CondExpr::ArgIntLt(self.scalar_arg(), 2),
            _ => CondExpr::CellLt(
                dmt_lang::CellId::new(self.rng.next_below(self.cfg.n_cells as u64) as u32),
                3,
            ),
        }
    }

    /// Cell layout (one guarding monitor per cell, paper §2):
    /// cell 0 ← `this` and all fields (fields alias `this` here);
    /// cells 1..4 ← the three `Konst(500..)` monitors;
    /// cells 4.. ← pool monitor k guards cell 4+k (also for `Arg`
    /// parameters: argument monitors are pool members).
    fn guarded_update(
        &mut self,
        param: &MutexExpr,
        k: i64,
    ) -> impl Fn(&mut dmt_lang::MethodBuilder<'_>) + 'static {
        let pool = self.cfg.n_mutex_pool;
        let param = param.clone();
        move |b: &mut dmt_lang::MethodBuilder<'_>| match &param {
            MutexExpr::This | MutexExpr::Field(_) => {
                let c = dmt_lang::CellId::new(0);
                b.update(c, IntExpr::Cell(c));
                b.update(c, IntExpr::Lit(k));
            }
            MutexExpr::Konst(m) => {
                let c = dmt_lang::CellId::new(1 + (m.0 - 500) % 3);
                b.update(c, IntExpr::Cell(c));
                b.update(c, IntExpr::Lit(k));
            }
            MutexExpr::Arg(i) => {
                // args carry pool monitors; the monitor id is the pool
                // index, so the indexed update lands on its cell.
                b.update_indexed(4, pool, *i, IntExpr::Lit(k));
            }
            MutexExpr::Pool { index_arg, .. } => {
                b.update_indexed(4, pool, *index_arg, IntExpr::Lit(k));
            }
            _ => {}
        }
    }

    fn block(&mut self, m: &mut dmt_lang::MethodBuilder<'_>, depth: usize) {
        self.block_in(m, depth, false)
    }

    fn block_in(&mut self, m: &mut dmt_lang::MethodBuilder<'_>, depth: usize, in_sync: bool) {
        let n = 1 + self.rng.next_below(self.cfg.max_stmts_per_block as u64) as usize;
        for _ in 0..n {
            self.stmt(m, depth, in_sync);
        }
    }

    fn stmt(&mut self, m: &mut dmt_lang::MethodBuilder<'_>, depth: usize, in_sync: bool) {
        // Inside a monitor, no further acquisitions and no calls (callees
        // may acquire): generated programs are free of hold-and-wait, so
        // any stall the engine reports is a scheduler bug, not an
        // accidental lock-ordering deadlock. (The handwritten bank
        // workload covers *ordered* nested locking.)
        let choices: u64 = if depth == 0 {
            if in_sync {
                3
            } else {
                4
            }
        } else if in_sync {
            6
        } else {
            8
        };
        match self.rng.next_below(choices) {
            0 => {
                m.compute(DurExpr::micros(10 + self.rng.next_below(200)));
            }
            1 => {
                if in_sync {
                    m.compute(DurExpr::micros(30));
                } else {
                    // Reads/writes of shared state may only happen under
                    // the guarding monitor; a bare update here would be
                    // the improper synchronisation the paper's §2
                    // assumption rules out (and the checker catches).
                    m.compute(DurExpr::micros(10 + self.rng.next_below(100)));
                }
            }
            2 => {
                if in_sync {
                    // Suspending inside a critical section is out of scope
                    // (see the PDS module docs); substitute computation.
                    m.compute(DurExpr::micros(100));
                } else {
                    m.nested(dmt_lang::ServiceId::new(0), DurExpr::micros(500));
                }
            }
            3 => {
                if !self.callees.is_empty() && !in_sync {
                    let target = *self.rng.choose(self.callees).expect("nonempty");
                    let args: Vec<ArgExpr> = (0..self.cfg.arity).map(ArgExpr::CallerArg).collect();
                    if self.rng.next_bool(0.3) && self.callees.len() >= 2 {
                        let mut cands = self.callees.to_vec();
                        self.rng.shuffle(&mut cands);
                        cands.truncate(2);
                        let sel = self.scalar_arg();
                        m.virtual_call(cands, IntExpr::Arg(sel), args);
                    } else {
                        m.call(target, args);
                    }
                } else {
                    m.compute(DurExpr::micros(20));
                }
            }
            4 => {
                if in_sync {
                    // Already holding a monitor: no further acquisition.
                    m.compute(DurExpr::micros(5 + self.rng.next_below(50)));
                } else {
                    // Lock → order-sensitive update of the cell this
                    // monitor guards → unlock (the §2 discipline: each
                    // cell has exactly one guarding monitor).
                    let param = self.mutex_expr();
                    let k = self.rng.next_below(5) as i64 + 1;
                    let guarded = self.guarded_update(&param, k);
                    m.sync(param, move |b| guarded(b));
                }
            }
            5 => {
                // if/else (kept available inside monitors too).
                let cond = self.cond();
                let d = depth - 1;
                let mut me = Gen {
                    rng: self.rng.split(11),
                    cfg: self.cfg,
                    fields: self.fields,
                    callees: self.callees,
                };
                let mut el = Gen {
                    rng: self.rng.split(12),
                    cfg: self.cfg,
                    fields: self.fields,
                    callees: self.callees,
                };
                m.if_else(
                    cond,
                    |b| me.block_in(b, d, in_sync),
                    |b| el.block_in(b, d, in_sync),
                );
            }
            6 => {
                let count = CountExpr::Lit(1 + self.rng.next_below(3) as u32);
                let d = depth - 1;
                let mut inner = Gen {
                    rng: self.rng.split(13),
                    cfg: self.cfg,
                    fields: self.fields,
                    callees: self.callees,
                };
                let is = in_sync;
                m.for_loop(count, |b| inner.block_in(b, d, is));
            }
            _ => {
                // Sync block (only when not already holding a monitor).
                let param = self.mutex_expr();
                let d = depth - 1;
                let mut inner = Gen {
                    rng: self.rng.split(14),
                    cfg: self.cfg,
                    fields: self.fields,
                    callees: self.callees,
                };
                m.sync(param, |b| inner.block_in(b, d, true));
            }
        }
    }
}

/// Random arguments matching [`SynthConfig::arity`] and its slot
/// partition: monitor references first, scalars second.
pub fn random_args(rng: &mut SplitMix64, cfg: &SynthConfig) -> RequestArgs {
    let half = (cfg.arity / 2).max(1);
    RequestArgs::new(
        (0..cfg.arity)
            .map(|i| {
                if i < half {
                    Value::Mutex(dmt_lang::MutexId::new(
                        rng.next_below(cfg.n_mutex_pool as u64) as u32,
                    ))
                } else if rng.next_bool(0.5) {
                    Value::Bool(rng.next_bool(0.5))
                } else {
                    Value::Int(rng.next_below(8) as i64)
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_objects_are_valid_and_deterministic() {
        let cfg = SynthConfig::default();
        for seed in 0..50 {
            let a = random_object(seed, &cfg);
            assert!(a.validate().is_empty(), "seed {seed}: {:?}", a.validate());
            let b = random_object(seed, &cfg);
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn generated_objects_compile_and_transform() {
        let cfg = SynthConfig::default();
        for seed in 0..30 {
            let obj = random_object(seed, &cfg);
            let _ = dmt_lang::compile::compile(&obj);
            let t = dmt_analysis::transform(&obj);
            assert!(t.validate().is_empty(), "seed {seed} transform invalid");
            assert_eq!(
                obj.all_sync_ids(),
                t.all_sync_ids(),
                "seed {seed} syncids changed"
            );
            let _ = dmt_lang::compile::compile(&t);
            let _ = dmt_analysis::build_lock_table(&obj);
        }
    }

    #[test]
    fn objects_vary_across_seeds() {
        let cfg = SynthConfig::default();
        let a = random_object(1, &cfg);
        let b = random_object(2, &cfg);
        assert_ne!(a, b);
    }
}
