//! The Figure-3 scenario: lock prediction over non-conflicting mutexes.
//!
//! "The primary thread requests and releases a lock on mutex x and
//! finishes afterwards. The first secondary thread requests a lock for
//! mutex y, but has to wait until the primary has released x. In an
//! ideal case the scheduler […] would recognise that x is the primary's
//! last lock, that there is no relationship between x and y, and would
//! grant the lock to the secondary."
//!
//! Each client works on its *own* mutex (disjoint lock sets). The lock
//! parameter is a method argument, so the transformation announces it at
//! entry and PMAT can overlap every critical section; MAT and MAT-LL
//! still serialise the grants through the primacy token.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{MethodIdx, ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;

#[derive(Clone, Copy, Debug)]
pub struct Fig3Params {
    /// Computation before the lock request.
    pub pre_ms: f64,
    /// Critical-section length (the work whose overlap PMAT unlocks).
    pub cs_ms: f64,
    pub n_clients: usize,
    pub requests_per_client: usize,
}

impl Default for Fig3Params {
    fn default() -> Self {
        Fig3Params {
            pre_ms: 0.2,
            cs_ms: 2.0,
            n_clients: 8,
            requests_per_client: 4,
        }
    }
}

pub fn build_object(p: &Fig3Params) -> ObjectImpl {
    let n = p.n_clients.max(1) as u32;
    let mut ob = ObjectBuilder::new("Fig3Disjoint");
    ob.cells(n);
    let mut m = ob.method("serve", 1);
    m.compute(DurExpr::Nanos((p.pre_ms * 1e6) as u64));
    m.sync(
        MutexExpr::Pool {
            base: 0,
            len: n,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::Nanos((p.cs_ms * 1e6) as u64));
            b.update_indexed(0, n, 0, IntExpr::Lit(1));
        },
    );
    m.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

/// Client `k` always uses mutex `k`: perfectly disjoint lock sets.
pub fn client_scripts(p: &Fig3Params) -> Vec<ClientScript> {
    let serve = MethodIdx::new(0);
    (0..p.n_clients)
        .map(|k| {
            ClientScript::closed(
                (0..p.requests_per_client)
                    .map(|_| (serve, RequestArgs::new(vec![Value::Int(k as i64)])))
                    .collect(),
            )
        })
        .collect()
}

pub fn scenario(p: &Fig3Params) -> ScenarioPair {
    crate::make_variants(&build_object(p), client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn pmat_overlaps_disjoint_critical_sections() {
        let p = Fig3Params::default();
        let pair = scenario(&p);
        let run = |kind| {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(3)).run();
            assert!(!res.deadlocked, "{kind:?}");
            (res.response_times.mean(), res.makespan)
        };
        let (mat_rt, mat_span) = run(SchedulerKind::Mat);
        let (ll_rt, _) = run(SchedulerKind::MatLL);
        let (pmat_rt, pmat_span) = run(SchedulerKind::Pmat);
        // PMAT must be the clear winner on disjoint lock sets (Figure 3b).
        assert!(
            pmat_rt < ll_rt && pmat_rt < mat_rt * 0.7,
            "PMAT {pmat_rt:.2}ms vs MAT-LL {ll_rt:.2}ms vs MAT {mat_rt:.2}ms"
        );
        assert!(pmat_span < mat_span, "overlap must shorten the makespan");
    }

    #[test]
    fn pmat_converges_on_this_workload() {
        let pair = scenario(&Fig3Params::default());
        let (res, outcome) = dmt_replica::check_determinism(
            pair.for_kind(SchedulerKind::Pmat),
            SchedulerKind::Pmat,
            5,
            0.3,
        );
        assert!(!res.deadlocked);
        assert!(outcome.converged(), "{outcome:?}");
    }
}
