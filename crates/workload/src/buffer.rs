//! A bounded producer/consumer buffer — the condition-variable workload.
//!
//! The paper's motivation for multithreading over sequential execution
//! includes "it enables the object programmer to use condition variables
//! for coordination between multiple invocations" (§1). A `put` blocks
//! while the buffer is full; a `take` blocks while it is empty; both use
//! the canonical `while (!cond) wait()` loop on the object monitor. SEQ
//! deadlocks on this workload by design — the paper's argument made
//! executable.

use crate::ScenarioPair;
use dmt_lang::ast::{CondExpr, DurExpr, MutexExpr, ObjectImpl};
use dmt_lang::{CellId, MethodIdx, ObjectBuilder, RequestArgs};
use dmt_replica::ClientScript;

#[derive(Clone, Copy, Debug)]
pub struct BufferParams {
    pub capacity: i64,
    pub n_producers: usize,
    pub n_consumers: usize,
    pub items_per_client: usize,
    pub op_ms: f64,
}

impl Default for BufferParams {
    fn default() -> Self {
        BufferParams {
            capacity: 2,
            n_producers: 3,
            n_consumers: 3,
            items_per_client: 4,
            op_ms: 0.2,
        }
    }
}

/// Cells: 0 = fill level, 1 = produced count, 2 = consumed count.
pub fn build_object(p: &BufferParams) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("BoundedBuffer");
    let cells = ob.cells(3);
    let (fill, produced, consumed) = (cells[0], cells[1], cells[2]);
    let mut put = ob.method("put", 0);
    put.compute(DurExpr::Nanos((p.op_ms * 1e6) as u64));
    put.sync_wait_until(MutexExpr::This, CondExpr::CellLt(fill, p.capacity), |b| {
        b.add(fill, 1);
        b.add(produced, 1);
        b.notify_all(MutexExpr::This);
    });
    put.done();
    let mut take = ob.method("take", 0);
    take.compute(DurExpr::Nanos((p.op_ms * 1e6) as u64));
    take.sync_wait_until(MutexExpr::This, CondExpr::CellGe(fill, 1), |b| {
        b.add(fill, -1);
        b.add(consumed, 1);
        b.notify_all(MutexExpr::This);
    });
    take.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

pub fn fill_cell() -> CellId {
    CellId::new(0)
}

pub fn client_scripts(p: &BufferParams) -> Vec<ClientScript> {
    let put = MethodIdx::new(0);
    let take = MethodIdx::new(1);
    let mut scripts = Vec::new();
    for _ in 0..p.n_producers {
        scripts.push(ClientScript::closed(
            (0..p.items_per_client)
                .map(|_| (put, RequestArgs::empty()))
                .collect(),
        ));
    }
    for _ in 0..p.n_consumers {
        scripts.push(ClientScript::closed(
            (0..p.items_per_client)
                .map(|_| (take, RequestArgs::empty()))
                .collect(),
        ));
    }
    scripts
}

pub fn scenario(p: &BufferParams) -> ScenarioPair {
    crate::make_variants(&build_object(p), client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{check_determinism, Engine, EngineConfig};

    #[test]
    fn balanced_producers_and_consumers_drain_the_buffer() {
        let p = BufferParams::default();
        let pair = scenario(&p);
        for kind in [
            SchedulerKind::Sat,
            SchedulerKind::Lsa,
            SchedulerKind::Mat,
            SchedulerKind::MatLL,
            SchedulerKind::Pmat,
        ] {
            let (res, outcome) = check_determinism(pair.for_kind(kind), kind, 3, 0.2);
            assert!(!res.deadlocked, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }

    #[test]
    fn seq_deadlocks_as_the_paper_warns() {
        // A consumer that arrives before any producer blocks forever
        // under SEQ: nothing else ever runs to notify it.
        let p = BufferParams {
            n_producers: 1,
            n_consumers: 1,
            items_per_client: 2,
            ..Default::default()
        };
        let pair = scenario(&p);
        let cfg = EngineConfig::new(SchedulerKind::Seq)
            .with_seed(4)
            // Short cap: the run will stall, don't wait an hour.
            ;
        let mut cfg = cfg;
        cfg.max_time = dmt_sim::SimDuration::from_secs(10);
        let res = Engine::new(pair.plain.clone(), cfg).run();
        assert!(res.deadlocked, "SEQ must deadlock on CV coordination");
    }
}
