//! A seeded lock-order inversion: the textbook AB/BA deadlock shape.
//!
//! Two constant monitors A and B; method `fwd` locks A then B, method
//! `rev` locks B then A. Under any *concurrent* scheduler this can
//! deadlock — which is exactly the point: run it under SEQ (which
//! serialises whole requests and therefore always completes), trace it,
//! and let the race-prediction pass in `dmt-analysis` find the A⇄B
//! lock-graph cycle from the serial trace alone. That is the classic
//! predictive-analysis move (PAPERS.md, *Cross-thread critical sections
//! and efficient dynamic race prediction methods*): the witnessed
//! execution is benign, the predicted reordering is not.
//!
//! Clients alternate `fwd`/`rev` by parity, so both orders appear in
//! every run regardless of client count.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{CellId, MethodIdx, MutexId, ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;

#[derive(Clone, Copy, Debug)]
pub struct InversionParams {
    pub n_clients: usize,
    pub requests_per_client: usize,
    /// Critical-section compute length (inside the outer monitor,
    /// before taking the inner one).
    pub cs_ms: f64,
}

impl Default for InversionParams {
    fn default() -> Self {
        InversionParams {
            n_clients: 4,
            requests_per_client: 3,
            cs_ms: 0.2,
        }
    }
}

/// The two inverted monitors (constant ids, so the lock graph is the
/// two-node A⇄B cycle).
pub const MUTEX_A: MutexId = MutexId::new(0);
pub const MUTEX_B: MutexId = MutexId::new(1);

pub fn build_object(p: &InversionParams) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("Inversion");
    ob.cells(2);
    let cs = || DurExpr::Nanos((p.cs_ms * 1e6) as u64);
    // fwd(x): lock A { compute; lock B { cell0 = 2*cell0 + x } }
    let mut f = ob.method("fwd", 1);
    f.sync(MutexExpr::Konst(MUTEX_A), |b| {
        b.compute(cs());
        b.sync(MutexExpr::Konst(MUTEX_B), |b| {
            b.update(CellId::new(0), IntExpr::Cell(CellId::new(0)));
            b.update(CellId::new(0), IntExpr::Arg(0));
        });
    });
    f.done();
    // rev(x): lock B { compute; lock A { cell1 = 2*cell1 + x } } —
    // the inverted acquisition order.
    let mut r = ob.method("rev", 1);
    r.sync(MutexExpr::Konst(MUTEX_B), |b| {
        b.compute(cs());
        b.sync(MutexExpr::Konst(MUTEX_A), |b| {
            b.update(CellId::new(1), IntExpr::Cell(CellId::new(1)));
            b.update(CellId::new(1), IntExpr::Arg(0));
        });
    });
    r.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

pub fn client_scripts(p: &InversionParams) -> Vec<ClientScript> {
    let fwd = MethodIdx::new(0);
    let rev = MethodIdx::new(1);
    (0..p.n_clients)
        .map(|c| {
            let method = if c % 2 == 0 { fwd } else { rev };
            let requests = (0..p.requests_per_client)
                .map(|i| {
                    (
                        method,
                        RequestArgs::new(vec![Value::Int((c * 100 + i) as i64)]),
                    )
                })
                .collect();
            ClientScript::closed(requests)
        })
        .collect()
}

pub fn scenario(p: &InversionParams) -> ScenarioPair {
    crate::make_variants(&build_object(p), client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn seq_completes_the_inverted_workload() {
        // Serial execution cannot interleave the critical sections, so
        // the inversion is latent, not fatal — the run must finish.
        let p = InversionParams::default();
        let pair = scenario(&p);
        let res = Engine::new(
            pair.for_kind(SchedulerKind::Seq),
            EngineConfig::new(SchedulerKind::Seq).with_seed(5),
        )
        .run();
        assert!(!res.deadlocked);
        assert_eq!(
            res.completed_requests as usize,
            p.n_clients * p.requests_per_client
        );
    }

    #[test]
    fn both_acquisition_orders_appear_in_the_trace() {
        let p = InversionParams::default();
        let pair = scenario(&p);
        let res = Engine::new(
            pair.for_kind(SchedulerKind::Seq),
            EngineConfig::new(SchedulerKind::Seq)
                .with_seed(5)
                .with_tracing(),
        )
        .run();
        let profile = dmt_obs::ContentionProfile::from_records(&res.trace_records, 0);
        let has = |held: MutexId, acquired: MutexId| {
            profile
                .edges
                .iter()
                .any(|e| e.held == held && e.acquired == acquired)
        };
        assert!(
            has(MUTEX_A, MUTEX_B),
            "fwd edge missing: {:?}",
            profile.edges
        );
        assert!(
            has(MUTEX_B, MUTEX_A),
            "rev edge missing: {:?}",
            profile.edges
        );
    }
}
