//! A bank-transfer workload: nested two-monitor critical sections.
//!
//! `transfer(from, to, amount)` locks the source and destination account
//! monitors in index order (the classic deadlock-avoiding discipline —
//! the clients sort the indices, mirroring how the paper pushes all
//! nondeterministic choices to the client) and moves money. `audit()`
//! locks the coarse `this` monitor and folds every balance into a
//! checksum cell — an order-sensitive read-everything operation that
//! catches lost updates across replicas.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{CellId, MethodIdx, ObjectBuilder, RequestArgs, Value};
use dmt_replica::ClientScript;
use dmt_sim::SplitMix64;

#[derive(Clone, Copy, Debug)]
pub struct BankParams {
    pub n_accounts: u32,
    pub n_clients: usize,
    pub transfers_per_client: usize,
    /// Every how many transfers a client runs an audit (0 = never).
    pub audit_every: usize,
    pub cs_ms: f64,
    pub seed: u64,
}

impl Default for BankParams {
    fn default() -> Self {
        BankParams {
            n_accounts: 16,
            n_clients: 6,
            transfers_per_client: 5,
            audit_every: 3,
            cs_ms: 0.3,
            seed: 11,
        }
    }
}

/// Cell layout: accounts `0..n`, checksum cell `n`.
pub fn checksum_cell(p: &BankParams) -> CellId {
    CellId::new(p.n_accounts)
}

pub fn build_object(p: &BankParams) -> ObjectImpl {
    let n = p.n_accounts;
    let mut ob = ObjectBuilder::new("Bank");
    ob.cells(n + 1);
    // transfer(lo, hi, amount): lock pool[lo] then pool[hi] (client sorts).
    let mut t = ob.method("transfer", 3);
    t.sync(
        MutexExpr::Pool {
            base: 0,
            len: n,
            index_arg: 0,
        },
        |b| {
            b.compute(DurExpr::Nanos((p.cs_ms * 1e6) as u64));
            b.sync(
                MutexExpr::Pool {
                    base: 0,
                    len: n,
                    index_arg: 1,
                },
                |b| {
                    // Move `amount` from account lo to account hi. (Direction is
                    // fixed lo→hi; the workload only needs conserved total.)
                    b.update_indexed(0, n, 0, IntExpr::Arg(2));
                    b.update_indexed(0, n, 1, IntExpr::Arg(2));
                    b.update_indexed(0, n, 0, IntExpr::Arg(2)); // lo += a (3×)
                    b.update_indexed(0, n, 1, IntExpr::Arg(2));
                },
            );
        },
    );
    t.done();
    // audit(): fold balances into the checksum cell, taking each
    // account's own monitor — every read of shared state must happen
    // under the monitor that guards it (paper §2: "all access to shared
    // object state is properly synchronised"). The checksum cell itself
    // is guarded by `this`. Reading balances under `this` instead looks
    // harmless but races the transfers — our PDS replay test caught
    // exactly that.
    let checksum = CellId::new(n);
    let mut a = ob.method("audit", 0);
    a.sync(MutexExpr::This, |b| {
        b.compute(DurExpr::Nanos((p.cs_ms * 1e6) as u64));
        for acc in 0..n {
            // Account monitors are pool mutexes 0..n (ids are global).
            b.sync(MutexExpr::Konst(dmt_lang::MutexId::new(acc)), |b| {
                // checksum = 2*checksum + balance[acc] — order-sensitive.
                b.update(checksum, IntExpr::Cell(checksum));
                b.update(checksum, IntExpr::Cell(CellId::new(acc)));
            });
        }
    });
    a.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

pub fn client_scripts(p: &BankParams) -> Vec<ClientScript> {
    let transfer = MethodIdx::new(0);
    let audit = MethodIdx::new(1);
    let mut rng = SplitMix64::new(p.seed);
    (0..p.n_clients)
        .map(|c| {
            let mut crng = rng.split(c as u64);
            let mut requests = Vec::new();
            for i in 0..p.transfers_per_client {
                let x = crng.next_below(p.n_accounts as u64) as i64;
                let mut y = crng.next_below(p.n_accounts as u64) as i64;
                if x == y {
                    y = (y + 1) % p.n_accounts as i64;
                }
                let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                let amount = crng.next_range(1, 100) as i64;
                requests.push((
                    transfer,
                    RequestArgs::new(vec![Value::Int(lo), Value::Int(hi), Value::Int(amount)]),
                ));
                if p.audit_every > 0 && (i + 1) % p.audit_every == 0 {
                    requests.push((audit, RequestArgs::empty()));
                }
            }
            ClientScript::closed(requests)
        })
        .collect()
}

pub fn scenario(p: &BankParams) -> ScenarioPair {
    crate::make_variants(&build_object(p), client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{check_determinism, Engine, EngineConfig};

    #[test]
    fn bank_completes_and_replicas_agree() {
        let p = BankParams::default();
        let pair = scenario(&p);
        for kind in SchedulerKind::DETERMINISTIC {
            let (res, outcome) = check_determinism(pair.for_kind(kind), kind, 31, 0.25);
            assert!(!res.deadlocked, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }

    #[test]
    fn nested_two_lock_discipline_is_deadlock_free() {
        // Heavier contention on few accounts.
        let p = BankParams {
            n_accounts: 3,
            n_clients: 8,
            transfers_per_client: 6,
            audit_every: 0,
            ..BankParams::default()
        };
        let pair = scenario(&p);
        for kind in [SchedulerKind::Mat, SchedulerKind::Pmat, SchedulerKind::Free] {
            let res = Engine::new(pair.for_kind(kind), EngineConfig::new(kind).with_seed(2)).run();
            assert!(!res.deadlocked, "{kind}");
        }
    }
}
