//! Cross-shard relay workload: the routed-path counterpart of
//! [`crate::openloop::sharded_scenarios`].
//!
//! Every group hosts a `Relay` object whose client-facing method does
//! some local locked work and then issues a nested invocation to the
//! service homed on the *next* group (ring topology) — under
//! `dmt_replica::run_sharded` with the matching [`routing`] table, that
//! leg becomes a typed cross-shard message exchanged at a virtual-time
//! barrier. The workload exists to exercise and price that path: every
//! client request generates exactly one cross-shard call and one reply,
//! so `shard_msgs == 2 × completed_requests` when the ring has more
//! than one group.

use crate::ScenarioPair;
use dmt_lang::ast::{DurExpr, IntExpr, MutexExpr};
use dmt_lang::{ObjectBuilder, RequestArgs, ServiceId};
use dmt_replica::{ClientScript, ShardRouting};
use dmt_sim::SimDuration;

/// Parameters of the relay ring.
#[derive(Clone, Copy, Debug)]
pub struct RelayParams {
    pub n_groups: usize,
    pub clients_per_group: usize,
    pub requests_per_client: usize,
    /// Local locked compute before the cross-shard call, µs.
    pub local_us: u64,
    /// Locked compute a routed-in call performs on its home group, µs.
    pub remote_us: u64,
    /// One-way cross-shard link latency, µs (also the PDES lookahead).
    pub link_us: u64,
}

impl Default for RelayParams {
    fn default() -> Self {
        RelayParams {
            n_groups: 4,
            clients_per_group: 2,
            requests_per_client: 3,
            local_us: 80,
            remote_us: 30,
            link_us: 200,
        }
    }
}

impl RelayParams {
    pub fn total_requests(&self) -> usize {
        self.n_groups * self.clients_per_group * self.requests_per_client
    }
}

/// One scenario per group. Group `g`'s object calls service `(g+1) %
/// n_groups`; method 0 (`relay`) is the client entry, method 1
/// (`serve`) is what a routed-in call executes.
pub fn scenarios(p: &RelayParams) -> Vec<ScenarioPair> {
    (0..p.n_groups)
        .map(|g| {
            let mut ob = ObjectBuilder::new("Relay");
            let cell = ob.cell();
            let mut relay = ob.method("relay", 0);
            relay.sync(MutexExpr::This, |b| {
                b.compute(DurExpr::micros(p.local_us));
                b.update(cell, IntExpr::Lit(1));
            });
            relay.nested(
                ServiceId::new(((g + 1) % p.n_groups) as u32),
                DurExpr::micros(p.remote_us),
            );
            relay.done();
            let mut serve = ob.method("serve", 0);
            serve.sync(MutexExpr::This, |b| {
                b.compute(DurExpr::micros(p.remote_us));
                b.update(cell, IntExpr::Lit(100));
            });
            serve.done();
            let noop = ob.method("noop", 0);
            noop.done();
            let clients = (0..p.clients_per_group)
                .map(|_| {
                    ClientScript::closed(vec![
                        (dmt_lang::MethodIdx::new(0), RequestArgs::empty());
                        p.requests_per_client
                    ])
                })
                .collect();
            crate::make_variants(&ob.build(), clients, "noop")
        })
        .collect()
}

/// The matching routing table: service `s` is homed on group `s`, a
/// routed call executes `serve`, and the link is `link_us`.
pub fn routing(p: &RelayParams) -> ShardRouting {
    ShardRouting {
        service_home: std::sync::Arc::new((0..p.n_groups as u32).collect()),
        method: dmt_lang::MethodIdx::new(1),
        link: SimDuration::from_micros(p.link_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{run_sharded, EngineConfig};

    #[test]
    fn relay_ring_completes_and_prices_the_routed_path() {
        let p = RelayParams::default();
        let scs = scenarios(&p);
        let plain: Vec<_> = scs.iter().map(|s| s.plain.clone()).collect();
        let cfg = EngineConfig::new(SchedulerKind::Mat).with_seed(7);
        let res = run_sharded(plain, &cfg, Some(routing(&p)));
        assert!(!res.deadlocked);
        assert_eq!(res.completed_requests, p.total_requests() as u64);
        assert_eq!(res.shard_msgs, 2 * p.total_requests() as u64);
        assert!(res.epochs > 0);
    }
}
