//! # dmt-workload — workload generators
//!
//! Builds the objects and client scripts behind every experiment in
//! EXPERIMENTS.md:
//!
//! * [`fig1`] — the paper's §3.5 benchmark: ten iterations of
//!   {maybe-nested-invocation, maybe-local-computation,
//!   lock/update/unlock on one of 100 mutexes}, all random decisions made
//!   by the clients and passed as parameters;
//! * [`fig2`] — the last-lock scenario of Figure 2: a long final
//!   computation after the last unlock, where MAT-LL's early primacy
//!   hand-off pays off;
//! * [`fig3`] — the lock-prediction scenario of Figure 3: threads with
//!   disjoint, client-announced lock sets that PMAT can run concurrently;
//! * [`bank`] — a two-lock transfer workload (realistic fine-grained
//!   locking with nested monitors);
//! * [`buffer`] — a bounded producer/consumer buffer exercising
//!   condition variables under every scheduler;
//! * [`inversion`] — a seeded AB/BA lock-order inversion (two constant
//!   monitors acquired in opposite orders by two methods): run under
//!   SEQ it completes benignly; its trace is the positive control for
//!   the race-prediction pass in `dmt-analysis`;
//! * [`openloop`] — the open-loop read/write-mix workload: clients
//!   submit on deterministic Poisson arrival schedules (offered load in
//!   requests per virtual second) instead of waiting for replies, over a
//!   keyed store whose `get`/`put` critical sections differ in length —
//!   the regime where queueing separates LSA's serialised admission
//!   from MAT's concurrent token queue;
//! * [`relay`] — the cross-shard relay ring: each group's object issues
//!   a nested call to the service homed on the next group, exercising
//!   the typed message path of `dmt_replica::run_sharded`.
//!
//! Every generator returns both the *plain* and the *analysed*
//! (transformed + lock-table) variant of its scenario, so experiments can
//! price the instrumentation (the paper's §5 overhead question).

pub mod bank;
pub mod buffer;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod inversion;
pub mod openloop;
pub mod relay;
pub mod synth;

use dmt_analysis::{build_lock_table, transform};
use dmt_lang::ast::ObjectImpl;
use dmt_lang::compile::compile;
use dmt_replica::{ClientScript, Scenario};

/// Builds the plain and analysed variants of a scenario from an object
/// implementation and client scripts.
pub fn make_variants(
    obj: &ObjectImpl,
    clients: Vec<ClientScript>,
    dummy_method: &str,
) -> ScenarioPair {
    let plain_program = compile(obj);
    let transformed = transform(obj);
    let analysed_program = compile(&transformed);
    let table = build_lock_table(obj);
    let dummy_plain = plain_program.method_by_name(dummy_method);
    let dummy_analysed = analysed_program.method_by_name(dummy_method);
    let mut plain = Scenario::new(plain_program, clients.clone());
    if let Some(d) = dummy_plain {
        plain = plain.with_dummy_method(d);
    }
    let mut analysed = Scenario::new(analysed_program, clients).with_lock_table(table);
    if let Some(d) = dummy_analysed {
        analysed = analysed.with_dummy_method(d);
    }
    ScenarioPair { plain, analysed }
}

/// A workload in both instrumentation variants.
#[derive(Clone)]
pub struct ScenarioPair {
    /// Uninstrumented object, unanalysed lock table — what SEQ…MAT ran
    /// in the paper.
    pub plain: Scenario,
    /// Transformed object (lockInfo/ignore injected) + static lock table
    /// — what MAT-LL and PMAT need, and what the overhead ablation runs
    /// under the pessimistic schedulers too.
    pub analysed: Scenario,
}

impl ScenarioPair {
    /// The natural variant for a scheduler kind: analysed for the
    /// prediction-aware schedulers, plain otherwise.
    pub fn for_kind(&self, kind: dmt_core::SchedulerKind) -> Scenario {
        if kind.uses_prediction() {
            self.analysed.clone()
        } else {
            self.plain.clone()
        }
    }
}
