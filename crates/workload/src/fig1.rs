//! The paper's §3.5 benchmark workload (Figure 1).
//!
//! "The implementation of that method in the remote object does ten
//! iterations of a loop. Each iteration performs the following
//! operations: with probability 0.2, simulate a nested invocation
//! (duration approx. 12 ms); with probability 0.2, simulate a local
//! computation; execute a sequence of lock, state update, unlock, using a
//! mutex chosen by random from a set of 100 mutexes. […] To guarantee
//! deterministic behaviour the clients were responsible for all random
//! decisions and passed them as method parameters."
//!
//! The loop is unrolled at build time so every iteration gets its own
//! syncid and argument slots — which also means every lock parameter is
//! a `Pool` indexed by a request argument, i.e. announceable at method
//! entry: exactly the situation Figure 3 wants PMAT to exploit.
//!
//! The source text of the paper lost the local-computation duration
//! ("duration ms"); we default to 1.5 ms and expose it as a parameter
//! (see DESIGN.md substitution 4).

use crate::ScenarioPair;
use dmt_lang::ast::{CondExpr, DurExpr, IntExpr, MutexExpr, ObjectImpl};
use dmt_lang::{ObjectBuilder, RequestArgs, ServiceId, Value};
use dmt_replica::ClientScript;
use dmt_sim::SplitMix64;

/// Figure-1 workload parameters (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct Fig1Params {
    pub iterations: usize,
    pub p_nested: f64,
    pub p_compute: f64,
    pub nested_ms: f64,
    pub compute_ms: f64,
    pub n_mutexes: u32,
    pub n_clients: usize,
    pub requests_per_client: usize,
    pub seed: u64,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Fig1Params {
            iterations: 10,
            p_nested: 0.2,
            p_compute: 0.2,
            nested_ms: 12.0,
            compute_ms: 1.5,
            n_mutexes: 100,
            n_clients: 8,
            requests_per_client: 4,
            seed: 42,
        }
    }
}

impl Fig1Params {
    pub fn with_clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    pub fn with_mutexes(mut self, n: u32) -> Self {
        self.n_mutexes = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arguments per iteration: nested? / compute? / mutex index.
    const ARGS_PER_ITER: usize = 3;

    fn arity(&self) -> usize {
        self.iterations * Self::ARGS_PER_ITER
    }
}

/// Pool base for the benchmark mutexes (`this` uses a disjoint id).
const POOL_BASE: u32 = 0;

/// Builds the benchmark object: `invoke(flags…)` plus a `noop` for PDS
/// dummies.
pub fn build_object(p: &Fig1Params) -> ObjectImpl {
    let mut ob = ObjectBuilder::new("Fig1Bench");
    ob.cells(p.n_mutexes); // cell i guarded by pool mutex i
    let mut m = ob.method("invoke", p.arity());
    for i in 0..p.iterations {
        let a = i * Fig1Params::ARGS_PER_ITER;
        m.if_then(CondExpr::ArgFlag(a), |b| {
            b.nested(
                ServiceId::new(0),
                DurExpr::Nanos((p.nested_ms * 1e6) as u64),
            );
        });
        m.if_then(CondExpr::ArgFlag(a + 1), |b| {
            b.compute(DurExpr::Nanos((p.compute_ms * 1e6) as u64));
        });
        m.sync(
            MutexExpr::Pool {
                base: POOL_BASE,
                len: p.n_mutexes,
                index_arg: a + 2,
            },
            |b| {
                // Order-sensitive update of the cell the mutex guards.
                b.update_indexed(POOL_BASE, p.n_mutexes, a + 2, IntExpr::Lit(1));
            },
        );
    }
    m.done();
    let noop = ob.method("noop", 0);
    noop.done();
    ob.build()
}

/// Generates the client scripts: every client calls `invoke` (method 0 by
/// construction — the transformation preserves method order) with its own
/// pre-drawn random decisions.
pub fn client_scripts(p: &Fig1Params) -> Vec<ClientScript> {
    let invoke = dmt_lang::MethodIdx::new(0);
    let mut rng = SplitMix64::new(p.seed);
    (0..p.n_clients)
        .map(|c| {
            let mut crng = rng.split(c as u64);
            let requests = (0..p.requests_per_client)
                .map(|_| {
                    let mut args = Vec::with_capacity(p.arity());
                    for _ in 0..p.iterations {
                        args.push(Value::Bool(crng.next_bool(p.p_nested)));
                        args.push(Value::Bool(crng.next_bool(p.p_compute)));
                        args.push(Value::Int(crng.next_below(p.n_mutexes as u64) as i64));
                    }
                    (invoke, RequestArgs::new(args))
                })
                .collect();
            ClientScript::closed(requests)
        })
        .collect()
}

/// The full Figure-1 scenario in both instrumentation variants.
pub fn scenario(p: &Fig1Params) -> ScenarioPair {
    let obj = build_object(p);
    debug_assert_eq!(
        obj.method_by_name("invoke"),
        Some(dmt_lang::MethodIdx::new(0))
    );
    crate::make_variants(&obj, client_scripts(p), "noop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::SchedulerKind;
    use dmt_replica::{Engine, EngineConfig};

    #[test]
    fn object_shape_matches_the_paper() {
        let p = Fig1Params::default();
        let obj = build_object(&p);
        assert!(obj.validate().is_empty());
        assert_eq!(obj.all_sync_ids().len(), 10, "ten lock sites");
        let report = dmt_analysis::analyze(&obj);
        let invoke = &report.methods[0];
        assert!(invoke.analyzable);
        assert_eq!(invoke.n_syncs, 10);
        assert_eq!(
            invoke.n_at_entry, 10,
            "all pool params announceable at entry"
        );
        assert!(invoke.predictable_at_entry);
        // 2 branch bits per iteration → 4^10 paths.
        assert_eq!(invoke.path_count, 4u64.pow(10));
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let p = Fig1Params::default();
        let a = client_scripts(&p);
        let b = client_scripts(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.requests, y.requests);
        }
        let c = client_scripts(&Fig1Params { seed: 43, ..p });
        assert_ne!(a[0].requests, c[0].requests);
    }

    #[test]
    fn small_fig1_run_completes_under_all_schedulers() {
        let p = Fig1Params {
            n_clients: 3,
            requests_per_client: 2,
            iterations: 4,
            ..Fig1Params::default()
        };
        let pair = scenario(&p);
        for kind in SchedulerKind::ALL {
            let cfg = EngineConfig::new(kind).with_seed(5);
            let res = Engine::new(pair.for_kind(kind), cfg).run();
            assert!(!res.deadlocked, "{kind}");
            assert_eq!(res.completed_requests, 6, "{kind}");
        }
    }

    #[test]
    fn analysed_variant_converges_for_prediction_schedulers() {
        let p = Fig1Params {
            n_clients: 4,
            requests_per_client: 2,
            iterations: 5,
            n_mutexes: 10, // contention
            ..Fig1Params::default()
        };
        let pair = scenario(&p);
        for kind in [SchedulerKind::MatLL, SchedulerKind::Pmat] {
            let (res, outcome) = dmt_replica::check_determinism(pair.for_kind(kind), kind, 9, 0.25);
            assert!(!res.deadlocked, "{kind}");
            assert!(outcome.converged(), "{kind}: {outcome:?}");
        }
    }
}
