//! The abstract syntax of object methods.
//!
//! The statement set is exactly what the paper's schedulers and analyses
//! care about: synchronised blocks (with a classified lock parameter),
//! condition-variable operations, nested remote invocations, local
//! computation, replicated-state updates, control flow, and local/virtual
//! calls. Everything else about Java is irrelevant to deterministic
//! scheduling and deliberately absent.

use crate::ids::{CallSiteId, CellId, FieldId, LocalId, MethodIdx, MutexId, ServiceId, SyncId};

/// How a synchronisation parameter (the object of a `synchronized` block,
/// `wait`, or `notify`) is produced. The variants map onto the paper's
/// §4.2 classification:
///
/// * statically announceable at (or soon after) method entry — [`This`],
///   [`Konst`], [`Arg`], [`Pool`] (an argument-indexed mutex array, the
///   Figure-1 "100 mutexes" pattern), and [`Local`] up to its last
///   assignment;
/// * *spontaneous* (unknown until the lock happens) — [`Field`] (instance
///   variable), [`PoolByCell`] (selected from mutable state), and
///   [`CallResult`] (return value of a method call).
///
/// [`This`]: MutexExpr::This
/// [`Konst`]: MutexExpr::Konst
/// [`Arg`]: MutexExpr::Arg
/// [`Pool`]: MutexExpr::Pool
/// [`Local`]: MutexExpr::Local
/// [`Field`]: MutexExpr::Field
/// [`PoolByCell`]: MutexExpr::PoolByCell
/// [`CallResult`]: MutexExpr::CallResult
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutexExpr {
    /// The object's own monitor (`synchronized(this)` / synchronized method).
    This,
    /// A fixed, globally known monitor object (e.g. a static final lock).
    Konst(MutexId),
    /// A method parameter carrying a mutex reference.
    Arg(usize),
    /// Read of a method-local variable (see [`Stmt::Assign`]).
    Local(LocalId),
    /// An instance variable — spontaneous.
    Field(FieldId),
    /// `pool[args[index_arg] % len]`: a mutex selected from a contiguous
    /// pool by a client-supplied index. Announceable at method entry.
    Pool {
        base: u32,
        len: u32,
        index_arg: usize,
    },
    /// `pool[state[cell] % len]`: selected from mutable object state —
    /// spontaneous, and loop-variant if the cell changes.
    PoolByCell { base: u32, len: u32, cell: CellId },
    /// Return value of a method call — spontaneous. At runtime the call is
    /// modelled as deterministically resolving to an instance variable.
    CallResult {
        site: CallSiteId,
        resolves_to: FieldId,
    },
}

/// Type alias documenting intent where an expression is used as the
/// parameter of a synchronisation operation.
pub type LockParam = MutexExpr;

/// Integer expressions (state updates, virtual-dispatch selectors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntExpr {
    Lit(i64),
    /// `args[i]` interpreted as an integer.
    Arg(usize),
    /// Read of a state cell.
    Cell(CellId),
}

/// Duration expressions for compute segments and nested invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurExpr {
    Nanos(u64),
    /// Client-supplied duration: `args[i]`.
    Arg(usize),
}

impl DurExpr {
    pub const fn micros(us: u64) -> Self {
        DurExpr::Nanos(us * 1_000)
    }
    pub const fn millis(ms: u64) -> Self {
        DurExpr::Nanos(ms * 1_000_000)
    }
}

/// Loop trip counts for bounded (`for`) loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountExpr {
    Lit(u32),
    /// `args[i]` interpreted as a count (clamped at 0).
    Arg(usize),
}

/// Branch and `while` conditions. Deterministic functions of the request
/// arguments and the replicated state — never of wall-clock time or
/// uncontrolled randomness (paper §2: such sources are outlawed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondExpr {
    Konst(bool),
    /// Boolean request argument (clients pass their random decisions as
    /// parameters — the paper's benchmark design).
    ArgFlag(usize),
    /// `args[i] < k`.
    ArgIntLt(usize, i64),
    /// `state[cell] == k`.
    CellEq(CellId, i64),
    /// `state[cell] < k`.
    CellLt(CellId, i64),
    /// `state[cell] >= k`.
    CellGe(CellId, i64),
    /// `args[i].equals(fields[f])` — the Figure-4 `myo.equals(o)` test.
    ParamEqField(usize, FieldId),
    Not(Box<CondExpr>),
}

impl CondExpr {
    pub fn negate(self) -> CondExpr {
        match self {
            CondExpr::Not(inner) => *inner,
            other => CondExpr::Not(Box::new(other)),
        }
    }
}

/// Argument expressions for local and virtual calls, evaluated in the
/// caller's frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgExpr {
    Const(crate::value::Value),
    /// Forward the caller's argument `i`.
    CallerArg(usize),
    /// Pass the current value of a caller-local variable.
    Local(LocalId),
    /// Pass the monitor held in an instance variable.
    Field(FieldId),
}

/// One statement of a method body.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Pure local computation for the given (virtual) duration.
    Compute(DurExpr),
    /// `synchronized (param) { body }`. The `sync_id` is the globally
    /// unique static identity of this block (paper §4.1); the builder
    /// assigns ids in source order and the analysis relies on them.
    Sync {
        sync_id: SyncId,
        param: LockParam,
        body: Vec<Stmt>,
    },
    /// `param.wait()`. Must be executed while holding `param`'s monitor.
    Wait(LockParam),
    /// `param.notify()` / `param.notifyAll()`.
    Notify { param: LockParam, all: bool },
    /// Nested remote invocation of an external service (paper §2). The
    /// duration models the round-trip the paper simulates (~12 ms).
    Nested { service: ServiceId, dur: DurExpr },
    /// `state[cell] += delta` — a critical write to replicated state.
    Update { cell: CellId, delta: IntExpr },
    /// `state[base + args[index_arg] % len] += delta` — a critical write
    /// to a cell selected by a client argument (the Figure-1 pattern:
    /// each pool mutex guards the equally-indexed cell).
    UpdateIndexed {
        base: u32,
        len: u32,
        index_arg: usize,
        delta: IntExpr,
    },
    /// `state[cell] = value`.
    SetCell { cell: CellId, value: IntExpr },
    /// Assignment to a lock-parameter local variable; tracked by the
    /// lock-parameter analysis ("find out when this parameter is assigned
    /// the last time", §4.2).
    Assign { local: LocalId, expr: MutexExpr },
    /// Two-armed branch.
    If {
        cond: CondExpr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// Bounded loop (`for`). Trip count known at entry from a literal or a
    /// request argument.
    For { count: CountExpr, body: Vec<Stmt> },
    /// Condition loop (`while`) — the shape of CV wait loops.
    While { cond: CondExpr, body: Vec<Stmt> },
    /// Call of another method on the same object, statically bound
    /// (`final` in the paper's restriction set).
    Call {
        method: MethodIdx,
        args: Vec<ArgExpr>,
    },
    /// Dynamically dispatched call. `candidates` is the repository of
    /// possible implementations (§4.4); `selector` picks one
    /// deterministically at runtime.
    VirtualCall {
        site: CallSiteId,
        candidates: Vec<MethodIdx>,
        selector: IntExpr,
        args: Vec<ArgExpr>,
    },
    /// Injected by the analysis: announce the future lock of `sync_id`
    /// (paper's `scheduler.lockInfo(syncid, mutex)`).
    LockInfo { sync_id: SyncId, param: LockParam },
    /// Injected by the analysis: the path taken bypasses `sync_id`
    /// (paper's `scheduler.ignore(syncid)`).
    IgnoreSync { sync_id: SyncId },
    /// Early return. Releases monitors of enclosing `Sync` blocks, like a
    /// `return` inside Java `synchronized`.
    Return,
}

/// A method of the replicated object.
#[derive(Clone, Debug, PartialEq)]
pub struct Method {
    pub name: String,
    /// Number of request arguments the method expects.
    pub arity: usize,
    /// Number of local (mutex-reference) variables.
    pub n_locals: u32,
    /// Public methods are *start methods*: a remote request may begin here
    /// (paper §2). Non-public methods are only reachable via calls.
    pub public: bool,
    /// Whether the method is `final` (the paper's analysis restriction;
    /// virtual call sites model the relaxation).
    pub is_final: bool,
    pub body: Vec<Stmt>,
}

/// A replicated object implementation: a set of methods plus the shape of
/// its state (cells and monitor-holding fields).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectImpl {
    pub name: String,
    pub methods: Vec<Method>,
    pub n_cells: u32,
    pub n_fields: u32,
}

impl ObjectImpl {
    pub fn method(&self, idx: MethodIdx) -> &Method {
        &self.methods[idx.index()]
    }

    pub fn method_by_name(&self, name: &str) -> Option<MethodIdx> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| MethodIdx::new(i as u32))
    }

    /// Indices of all start methods.
    pub fn start_methods(&self) -> Vec<MethodIdx> {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.public)
            .map(|(i, _)| MethodIdx::new(i as u32))
            .collect()
    }

    /// Structural validation: call targets in range, locals in range,
    /// syncids unique, loop/branch nesting well-formed. Returns a list of
    /// human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen_sync = std::collections::HashSet::new();
        for (mi, m) in self.methods.iter().enumerate() {
            let ctx = format!("{}::{}", self.name, m.name);
            validate_block(&m.body, m, self, &ctx, &mut seen_sync, &mut problems);
            let _ = mi;
        }
        problems
    }

    /// Walks every statement of every method, depth-first, source order.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(MethodIdx, &'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], mi: MethodIdx, f: &mut impl FnMut(MethodIdx, &'a Stmt)) {
            for s in stmts {
                f(mi, s);
                match s {
                    Stmt::Sync { body, .. } | Stmt::For { body, .. } | Stmt::While { body, .. } => {
                        walk(body, mi, f)
                    }
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, mi, f);
                        walk(else_branch, mi, f);
                    }
                    _ => {}
                }
            }
        }
        for (i, m) in self.methods.iter().enumerate() {
            walk(&m.body, MethodIdx::new(i as u32), &mut f);
        }
    }

    /// All syncids appearing in the object, in deterministic source order.
    pub fn all_sync_ids(&self) -> Vec<SyncId> {
        let mut ids = Vec::new();
        self.visit_stmts(|_, s| {
            if let Stmt::Sync { sync_id, .. } = s {
                ids.push(*sync_id);
            }
        });
        ids
    }
}

fn validate_mutex_expr(
    e: &MutexExpr,
    m: &Method,
    obj: &ObjectImpl,
    ctx: &str,
    problems: &mut Vec<String>,
) {
    match e {
        MutexExpr::Arg(i) => {
            if *i >= m.arity {
                problems.push(format!(
                    "{ctx}: lock parameter uses arg {i} but arity is {}",
                    m.arity
                ));
            }
        }
        MutexExpr::Local(l) => {
            if l.0 >= m.n_locals {
                problems.push(format!(
                    "{ctx}: lock parameter uses local {l} but method has {} locals",
                    m.n_locals
                ));
            }
        }
        MutexExpr::Field(f) | MutexExpr::CallResult { resolves_to: f, .. } => {
            if f.0 >= obj.n_fields {
                problems.push(format!(
                    "{ctx}: lock parameter uses field {f} but object has {} fields",
                    obj.n_fields
                ));
            }
        }
        MutexExpr::Pool { len, index_arg, .. } => {
            if *len == 0 {
                problems.push(format!("{ctx}: empty mutex pool"));
            }
            if *index_arg >= m.arity {
                problems.push(format!("{ctx}: pool index arg {index_arg} out of range"));
            }
        }
        MutexExpr::PoolByCell { len, cell, .. } => {
            if *len == 0 {
                problems.push(format!("{ctx}: empty mutex pool"));
            }
            if cell.0 >= obj.n_cells {
                problems.push(format!("{ctx}: pool cell {cell} out of range"));
            }
        }
        MutexExpr::This | MutexExpr::Konst(_) => {}
    }
}

fn validate_block(
    stmts: &[Stmt],
    m: &Method,
    obj: &ObjectImpl,
    ctx: &str,
    seen_sync: &mut std::collections::HashSet<SyncId>,
    problems: &mut Vec<String>,
) {
    for s in stmts {
        match s {
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                if !seen_sync.insert(*sync_id) {
                    problems.push(format!("{ctx}: duplicate sync id {sync_id}"));
                }
                validate_mutex_expr(param, m, obj, ctx, problems);
                validate_block(body, m, obj, ctx, seen_sync, problems);
            }
            Stmt::Wait(p) | Stmt::Notify { param: p, .. } => {
                validate_mutex_expr(p, m, obj, ctx, problems);
            }
            Stmt::Assign { local, expr } => {
                if local.0 >= m.n_locals {
                    problems.push(format!("{ctx}: assignment to out-of-range local {local}"));
                }
                validate_mutex_expr(expr, m, obj, ctx, problems);
            }
            Stmt::Update { cell, .. } | Stmt::SetCell { cell, .. } => {
                if cell.0 >= obj.n_cells {
                    problems.push(format!("{ctx}: state cell {cell} out of range"));
                }
            }
            Stmt::UpdateIndexed {
                base,
                len,
                index_arg,
                ..
            } => {
                if *len == 0 || base + len > obj.n_cells {
                    problems.push(format!("{ctx}: indexed cell range out of bounds"));
                }
                if *index_arg >= m.arity {
                    problems.push(format!("{ctx}: indexed cell arg {index_arg} out of range"));
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                validate_block(then_branch, m, obj, ctx, seen_sync, problems);
                validate_block(else_branch, m, obj, ctx, seen_sync, problems);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                validate_block(body, m, obj, ctx, seen_sync, problems);
            }
            Stmt::Call { method, args } => {
                if method.index() >= obj.methods.len() {
                    problems.push(format!("{ctx}: call to unknown method {method}"));
                } else {
                    let callee = &obj.methods[method.index()];
                    if args.len() != callee.arity {
                        problems.push(format!(
                            "{ctx}: call to {} passes {} args, arity is {}",
                            callee.name,
                            args.len(),
                            callee.arity
                        ));
                    }
                }
            }
            Stmt::VirtualCall {
                candidates, args, ..
            } => {
                if candidates.is_empty() {
                    problems.push(format!("{ctx}: virtual call with empty candidate set"));
                }
                for c in candidates {
                    if c.index() >= obj.methods.len() {
                        problems.push(format!("{ctx}: virtual candidate {c} unknown"));
                    } else if obj.methods[c.index()].arity != args.len() {
                        problems.push(format!(
                            "{ctx}: virtual candidate {} arity mismatch",
                            obj.methods[c.index()].name
                        ));
                    }
                }
            }
            Stmt::LockInfo { param, .. } => {
                validate_mutex_expr(param, m, obj, ctx, problems);
            }
            Stmt::Compute(_) | Stmt::Nested { .. } | Stmt::IgnoreSync { .. } | Stmt::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_method(name: &str, body: Vec<Stmt>) -> Method {
        Method {
            name: name.into(),
            arity: 1,
            n_locals: 1,
            public: true,
            is_final: true,
            body,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 1,
            n_fields: 1,
            methods: vec![leaf_method(
                "m",
                vec![Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Arg(0),
                    body: vec![Stmt::Update {
                        cell: CellId::new(0),
                        delta: IntExpr::Lit(1),
                    }],
                }],
            )],
        };
        assert!(obj.validate().is_empty());
    }

    #[test]
    fn validate_catches_bad_arg_index() {
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![leaf_method(
                "m",
                vec![Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Arg(5),
                    body: vec![],
                }],
            )],
        };
        let problems = obj.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("arg 5"));
    }

    #[test]
    fn validate_catches_duplicate_syncid() {
        let mk = |sid| Stmt::Sync {
            sync_id: SyncId::new(sid),
            param: MutexExpr::This,
            body: vec![],
        };
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![leaf_method("m", vec![mk(1), mk(1)])],
        };
        assert!(obj
            .validate()
            .iter()
            .any(|p| p.contains("duplicate sync id")));
    }

    #[test]
    fn validate_catches_cell_out_of_range() {
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 1,
            n_fields: 0,
            methods: vec![leaf_method(
                "m",
                vec![Stmt::Update {
                    cell: CellId::new(3),
                    delta: IntExpr::Lit(1),
                }],
            )],
        };
        assert!(obj.validate().iter().any(|p| p.contains("cell c3")));
    }

    #[test]
    fn validate_catches_call_arity_mismatch() {
        let callee = Method {
            name: "callee".into(),
            arity: 2,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![],
        };
        let caller = leaf_method(
            "caller",
            vec![Stmt::Call {
                method: MethodIdx::new(1),
                args: vec![],
            }],
        );
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        };
        assert!(obj.validate().iter().any(|p| p.contains("arity")));
    }

    #[test]
    fn start_methods_filters_public() {
        let mut pub_m = leaf_method("a", vec![]);
        pub_m.public = true;
        let mut priv_m = leaf_method("b", vec![]);
        priv_m.public = false;
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![pub_m, priv_m],
        };
        assert_eq!(obj.start_methods(), vec![MethodIdx::new(0)]);
        assert_eq!(obj.method_by_name("b"), Some(MethodIdx::new(1)));
        assert_eq!(obj.method_by_name("zzz"), None);
    }

    #[test]
    fn visit_stmts_sees_nested() {
        let obj = ObjectImpl {
            name: "O".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![leaf_method(
                "m",
                vec![Stmt::If {
                    cond: CondExpr::Konst(true),
                    then_branch: vec![Stmt::Sync {
                        sync_id: SyncId::new(7),
                        param: MutexExpr::This,
                        body: vec![Stmt::Return],
                    }],
                    else_branch: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            )],
        };
        let mut count = 0;
        obj.visit_stmts(|_, _| count += 1);
        assert_eq!(count, 4); // If, Sync, Return, Compute
        assert_eq!(obj.all_sync_ids(), vec![SyncId::new(7)]);
    }

    #[test]
    fn cond_negate_collapses_double_not() {
        let c = CondExpr::ArgFlag(0).negate().negate();
        assert_eq!(c, CondExpr::ArgFlag(0));
    }

    #[test]
    fn dur_expr_helpers() {
        assert_eq!(DurExpr::micros(2), DurExpr::Nanos(2_000));
        assert_eq!(DurExpr::millis(2), DurExpr::Nanos(2_000_000));
    }
}
