//! # dmt-lang — the object-method mini-language
//!
//! The paper instruments *Java* method bodies: every `synchronized` block,
//! `wait`/`notify`, and nested remote invocation is rewritten into calls to
//! the FTflex scheduler. Reproducing that in Rust needs a stand-in for Java
//! source that (a) exposes exactly the events the schedulers arbitrate and
//! (b) is amenable to the paper's static analyses (path enumeration,
//! last-lock detection, lock-parameter classification).
//!
//! This crate provides that stand-in:
//!
//! * [`ast`] — method bodies as trees of statements (`sync` blocks, `wait`,
//!   `notify`, nested invocations, computation, state updates, branches,
//!   bounded loops, condition loops, local and virtual calls, assignments
//!   to lock-parameter variables),
//! * [`compile`] — a linearizer from the AST to a small bytecode with
//!   explicit jumps, so interpretation is an O(1)-step state machine,
//! * [`interp`] — a deterministic interpreter: each logical thread is a
//!   [`interp::ThreadVm`] that, when stepped, yields the next
//!   synchronisation-relevant [`interp::Action`] for the scheduler,
//! * [`builder`] — an ergonomic program-construction DSL used by the
//!   workload generators, tests and examples.
//!
//! Nothing here decides *scheduling*; the interpreter emits actions and the
//! replica engine (dmt-replica) asks a scheduler (dmt-core) whether the
//! thread may proceed.

pub mod ast;
pub mod builder;
pub mod compile;
pub mod ids;
pub mod interp;
pub mod threaded;
pub mod value;

pub use ast::{CondExpr, CountExpr, DurExpr, LockParam, Method, MutexExpr, ObjectImpl, Stmt};
pub use builder::{MethodBuilder, ObjectBuilder};
pub use compile::{compile_unfused, CompiledObject, Instr};
pub use ids::{CellId, FieldId, MethodIdx, MutexId, ServiceId, SyncId};
pub use interp::{Action, Fault, ObjectState, StepOutcome, ThreadVm, VmPool};
pub use value::{RequestArgs, Value};
