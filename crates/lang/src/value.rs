//! Runtime values and request arguments.
//!
//! The paper's benchmark makes *clients* responsible for all random
//! decisions, passed as method parameters (§3.5) — that is what keeps the
//! replicas deterministic. `RequestArgs` is that parameter vector: branch
//! flags, durations, mutex references, loop counts.

use crate::ids::MutexId;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A value a client can pass to a start method (or a method can pass on to
/// a callee).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    Int(i64),
    Bool(bool),
    /// A reference to a synchronisation object.
    Mutex(MutexId),
    /// A duration in nanoseconds (used for client-supplied compute times).
    Dur(u64),
}

impl Value {
    pub fn as_int(&self) -> i64 {
        match *self {
            Value::Int(v) => v,
            Value::Bool(b) => b as i64,
            Value::Dur(d) => d as i64,
            Value::Mutex(m) => m.0 as i64,
        }
    }

    pub fn as_bool(&self) -> bool {
        match *self {
            Value::Bool(b) => b,
            Value::Int(v) => v != 0,
            Value::Dur(d) => d != 0,
            Value::Mutex(_) => true,
        }
    }

    /// The mutex this value references. Panics on non-mutex values: passing
    /// a non-reference where a monitor is required is a programme bug, the
    /// moral equivalent of a Java `ClassCastException`.
    pub fn as_mutex(&self) -> MutexId {
        match *self {
            Value::Mutex(m) => m,
            other => panic!("expected mutex reference, got {other:?}"),
        }
    }

    pub fn as_dur_nanos(&self) -> u64 {
        match *self {
            Value::Dur(d) => d,
            Value::Int(v) if v >= 0 => v as u64,
            other => panic!("expected duration, got {other:?}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Mutex(m) => write!(f, "&{m}"),
            Value::Dur(d) => write!(f, "{}ns", d),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<MutexId> for Value {
    fn from(v: MutexId) -> Self {
        Value::Mutex(v)
    }
}

/// The argument vector of one remote method invocation, interned behind a
/// refcounted handle: the group-communication layer fans every request out
/// to all replicas, and with `Arc<[Value]>` each hop's `clone()` is a
/// refcount bump instead of a vector copy. The vector is immutable after
/// construction — clients build it once, replicas only read it.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestArgs {
    values: Arc<[Value]>,
}

/// `Arc<[T]>` heap-allocates its refcount header even for an empty slice,
/// and `RequestArgs::empty()` sits on the per-request hot path — share one
/// allocation for all empty argument vectors.
static EMPTY_ARGS: OnceLock<Arc<[Value]>> = OnceLock::new();

impl RequestArgs {
    pub fn new(values: Vec<Value>) -> Self {
        if values.is_empty() {
            return Self::empty();
        }
        RequestArgs {
            values: values.into(),
        }
    }

    pub fn empty() -> Self {
        RequestArgs {
            values: EMPTY_ARGS.get_or_init(|| Arc::new([])).clone(),
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fetches argument `i`. Panics on out-of-range: the analysis guarantees
    /// arity, so a miss is a harness bug worth failing loudly on.
    pub fn get(&self, i: usize) -> Value {
        *self
            .values
            .get(i)
            .unwrap_or_else(|| panic!("request argument {i} missing (have {})", self.values.len()))
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl Default for RequestArgs {
    fn default() -> Self {
        Self::empty()
    }
}

impl FromIterator<Value> for RequestArgs {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        RequestArgs::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64).as_int(), 5);
        assert!(Value::from(true).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert_eq!(Value::from(MutexId::new(3)).as_mutex(), MutexId::new(3));
        assert_eq!(Value::Dur(1500).as_dur_nanos(), 1500);
        assert_eq!(Value::Int(7).as_dur_nanos(), 7);
    }

    #[test]
    #[should_panic(expected = "expected mutex reference")]
    fn non_mutex_as_mutex_panics() {
        Value::Int(1).as_mutex();
    }

    #[test]
    #[should_panic(expected = "expected duration")]
    fn negative_int_as_duration_panics() {
        Value::Int(-1).as_dur_nanos();
    }

    #[test]
    fn args_get() {
        let args = RequestArgs::new(vec![Value::Int(1), Value::Bool(true)]);
        assert_eq!(args.get(0).as_int(), 1);
        assert!(args.get(1).as_bool());
        assert_eq!(args.len(), 2);
    }

    #[test]
    #[should_panic(expected = "request argument 2 missing")]
    fn args_out_of_range_panics() {
        RequestArgs::new(vec![Value::Int(1)]).get(2);
    }

    #[test]
    fn args_from_iter() {
        let args: RequestArgs = [Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(args.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn empty_args_share_one_allocation() {
        let a = RequestArgs::empty();
        let b = RequestArgs::new(Vec::new());
        assert!(Arc::ptr_eq(&a.values, &b.values));
    }

    #[test]
    fn clone_is_interned() {
        let a = RequestArgs::new(vec![Value::Int(7)]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.values, &b.values));
        assert_eq!(b.get(0).as_int(), 7);
    }
}
