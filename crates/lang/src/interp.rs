//! The deterministic interpreter.
//!
//! Each logical thread (one per remote request) is a [`ThreadVm`]. The
//! replica engine steps a VM only when the scheduler allows it; the VM
//! runs internal instructions (state updates, branches, assignments)
//! silently and returns at the next *synchronisation-relevant* point with
//! an [`Action`] for the engine to arbitrate. Everything the VM does is a
//! pure function of (program, request arguments, object state), never of
//! wall-clock time — the paper's precondition for determinism.

use crate::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr};
use crate::compile::{CompiledObject, Instr};
use crate::ids::{CellId, FieldId, MethodIdx, MutexId, ServiceId, SyncId};
use crate::threaded::{cond, ctag, dtag, itag, mtag, Op, OpCode, COND_NEGATE};
use crate::value::{RequestArgs, Value};
use std::sync::Arc;

/// The shared state of one object replica: replicated integer cells plus
/// the monitor-reference fields used as spontaneous lock parameters.
///
/// The divergence-detection hash is maintained *incrementally*: every
/// mutation goes through [`ObjectState::set_cell`] / [`set_field`], which
/// XOR out the old slot contribution and XOR in the new one, so
/// [`state_hash`] is O(1) regardless of how many cells the object has.
/// All fields are private to protect that invariant.
///
/// [`set_field`]: ObjectState::set_field
/// [`state_hash`]: ObjectState::state_hash
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectState {
    /// The monitor of the object itself (`this`).
    this_mutex: MutexId,
    cells: Vec<i64>,
    fields: Vec<MutexId>,
    /// Order-independent XOR-fold over `mix(slot, value)` of every slot.
    hash: u64,
}

/// Mixes one `(slot, value)` pair into a 64-bit contribution (SplitMix64
/// finalizer). The hash of a state is the XOR of all slot contributions —
/// XOR makes every mutation an O(1) out-then-in update, and the strong
/// per-slot mixing is what keeps the fold from collapsing (a plain XOR of
/// raw values would cancel identical cells).
#[inline]
fn mix(slot: u64, value: u64) -> u64 {
    let mut z =
        slot.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ value.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Disjoint slot spaces for the three state components.
#[inline]
fn cell_slot(i: usize) -> u64 {
    (i as u64) << 1
}
#[inline]
fn field_slot(i: usize) -> u64 {
    ((i as u64) << 1) | 1
}
const THIS_SLOT: u64 = u64::MAX;

impl ObjectState {
    pub fn new(this_mutex: MutexId, n_cells: u32, fields: Vec<MutexId>) -> Self {
        let mut s = ObjectState {
            this_mutex,
            cells: vec![0; n_cells as usize],
            fields,
            hash: 0,
        };
        s.hash = s.full_rehash();
        s
    }

    /// Builds the state shape an object implementation expects, with all
    /// fields pointing at `this`.
    pub fn for_object(obj: &CompiledObject, this_mutex: MutexId) -> Self {
        ObjectState::new(
            this_mutex,
            obj.n_cells,
            vec![this_mutex; obj.n_fields as usize],
        )
    }

    /// The monitor of the object itself (`this`).
    pub fn this_mutex(&self) -> MutexId {
        self.this_mutex
    }

    pub fn cell(&self, c: CellId) -> i64 {
        self.cells[c.index()]
    }

    pub fn set_cell(&mut self, c: CellId, v: i64) {
        let slot = &mut self.cells[c.index()];
        self.hash ^= mix(cell_slot(c.index()), *slot as u64) ^ mix(cell_slot(c.index()), v as u64);
        *slot = v;
    }

    pub fn field(&self, f: FieldId) -> MutexId {
        self.fields[f.index()]
    }

    pub fn set_field(&mut self, f: FieldId, m: MutexId) {
        let slot = &mut self.fields[f.index()];
        self.hash ^=
            mix(field_slot(f.index()), slot.0 as u64) ^ mix(field_slot(f.index()), m.0 as u64);
        *slot = m;
    }

    pub fn cells(&self) -> &[i64] {
        &self.cells
    }

    /// Hash over the full replicated state; replicas compare these to
    /// detect divergence. O(1): maintained incrementally under mutation.
    pub fn state_hash(&self) -> u64 {
        self.hash
    }

    /// Recomputes the hash from scratch. The incremental hash must always
    /// equal this — exposed so tests (and paranoid callers) can check the
    /// equivalence.
    pub fn full_rehash(&self) -> u64 {
        let mut h = mix(THIS_SLOT, self.this_mutex.0 as u64);
        for (i, &c) in self.cells.iter().enumerate() {
            h ^= mix(cell_slot(i), c as u64);
        }
        for (i, &f) in self.fields.iter().enumerate() {
            h ^= mix(field_slot(i), f.0 as u64);
        }
        h
    }
}

/// A synchronisation-relevant step the engine must arbitrate or perform.
/// Timing payloads are nanoseconds of *virtual* time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Occupy a CPU for the given duration.
    Compute { dur_ns: u64 },
    /// Request the monitor `mutex` for synchronized block `sync_id`.
    Lock { sync_id: SyncId, mutex: MutexId },
    /// Release the monitor taken at `sync_id`.
    Unlock { sync_id: SyncId, mutex: MutexId },
    /// `mutex.wait()` — caller must hold `mutex`.
    Wait { mutex: MutexId },
    /// `mutex.notify()` / `notifyAll()` — caller must hold `mutex`.
    Notify { mutex: MutexId, all: bool },
    /// Nested remote invocation with the given simulated round-trip.
    Nested { service: ServiceId, dur_ns: u64 },
    /// Announcement injected by the analysis: this thread will lock
    /// `mutex` at `sync_id` (paper `scheduler.lockInfo`).
    LockInfo { sync_id: SyncId, mutex: MutexId },
    /// Announcement injected by the analysis: `sync_id` is bypassed on the
    /// taken path (paper `scheduler.ignore`).
    Ignore { sync_id: SyncId },
}

/// A structured interpreter fault: the program is malformed in a way the
/// compiler cannot produce but hand-built bytecode can. Faults are
/// deterministic (a pure function of program + arguments + state, like
/// every other step), so all replicas fault identically — the engine
/// reports the run as failed instead of aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// `Unlock` executed with no matching `Lock` in the current frame.
    UnlockWithoutLock { sync_id: SyncId },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::UnlockWithoutLock { sync_id } => {
                write!(f, "unlock at {sync_id} without matching lock")
            }
        }
    }
}

/// Result of stepping a VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The VM paused at an action; resume by calling `step` again after
    /// the engine has performed/granted it.
    Action(Action),
    /// The root method returned; the thread is done.
    Finished,
    /// The program is malformed; the thread cannot continue. Re-stepping
    /// returns the same fault.
    Faulted(Fault),
}

/// Per-frame bookkeeping: where this frame's arguments, locals, loop
/// counters and taken monitors begin in the VM-wide arenas. The frame's
/// segment of each arena runs from its base to either the next frame's
/// base or the arena's end (frames form a stack, so the executing frame's
/// segments are always the arena tails).
#[derive(Clone, Copy)]
struct FrameMeta {
    method: MethodIdx,
    /// Absolute pc into the object's flat threaded-code stream
    /// ([`crate::threaded::ThreadedCode::ops`]).
    pc: usize,
    args_base: usize,
    locals_base: usize,
    loops_base: usize,
    /// Monitors taken by `Lock` in this frame live at
    /// `sync_stack[sync_base..]`, with their sync ids, in acquisition
    /// order (so `Unlock` releases what was actually locked even if the
    /// parameter expression was reassigned in between).
    sync_base: usize,
}

/// The interpreter state of one logical thread.
///
/// Frames are flattened: instead of every `Frame` owning four heap
/// vectors, all frames share four VM-wide arenas indexed by per-frame
/// base offsets. A call appends to the arena tails, a return truncates
/// back to the frame's bases — so after warm-up (and always, on a VM
/// recycled through [`VmPool`]) pushing and popping frames allocates
/// nothing.
pub struct ThreadVm {
    program: Arc<CompiledObject>,
    frames: Vec<FrameMeta>,
    /// Argument arena: the root request's args followed by each nested
    /// call's evaluated arguments.
    args: Vec<Value>,
    locals: Vec<Value>,
    loop_slots: Vec<u32>,
    sync_stack: Vec<(SyncId, MutexId)>,
    /// Count of `step` calls, exposed for tests and runaway detection.
    steps: u64,
    /// Count of superinstruction executions, exposed for the bench
    /// per-kind `fused_steps` counter.
    fused: u64,
}

/// Hard bound on internal (non-action) instructions executed per `step`
/// call. A purely internal infinite loop is a programme bug; failing fast
/// beats hanging the simulation.
const INTERNAL_STEP_LIMIT: usize = 1_000_000;

impl ThreadVm {
    /// Creates a VM poised at the first instruction of `method`.
    pub fn new(program: Arc<CompiledObject>, method: MethodIdx, args: RequestArgs) -> Self {
        let mut vm = ThreadVm {
            program,
            frames: Vec::new(),
            args: Vec::new(),
            locals: Vec::new(),
            loop_slots: Vec::new(),
            sync_stack: Vec::new(),
            steps: 0,
            fused: 0,
        };
        vm.start(method, &args);
        vm
    }

    /// Re-arms this VM for a new request, recycling every buffer the
    /// previous request grew. This is what makes [`VmPool`] reuse
    /// allocation-free in steady state.
    pub fn reset(&mut self, program: Arc<CompiledObject>, method: MethodIdx, args: &RequestArgs) {
        self.program = program;
        self.frames.clear();
        self.args.clear();
        self.locals.clear();
        self.loop_slots.clear();
        self.sync_stack.clear();
        self.steps = 0;
        self.fused = 0;
        self.start(method, args);
    }

    fn start(&mut self, method: MethodIdx, args: &RequestArgs) {
        let m = &self.program.methods[method.index()];
        assert_eq!(
            args.len(),
            m.arity,
            "method {} expects {} args, got {}",
            m.name,
            m.arity,
            args.len()
        );
        self.args.extend_from_slice(args.values());
        self.push_frame(method, 0);
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Superinstruction executions since construction/reset.
    pub fn fused_steps(&self) -> u64 {
        self.fused
    }

    /// Monitors currently held by this thread across all frames, in
    /// acquisition order (outermost first). Reentrant acquisitions appear
    /// once per `Lock`.
    pub fn held_monitors(&self) -> Vec<MutexId> {
        self.sync_stack.iter().map(|&(_, m)| m).collect()
    }

    /// Advances the thread to its next synchronisation-relevant action.
    /// Internal instructions mutate `state` immediately (the engine only
    /// steps one VM at a time, so these writes are race-free by
    /// construction — the simulation analogue of "all access is properly
    /// synchronised").
    ///
    /// This is the threaded-code loop: it fetches fixed-size [`Op`] words
    /// by value from the object's flat stream, dispatches through the
    /// dense `OpCode` jump table, and keeps the VM registers (`pc` and
    /// the four frame bases) in locals across handler calls — the frame
    /// record is written back only when the step returns or the frame
    /// changes. Handlers are `#[inline(always)]` free functions over the
    /// operand words.
    pub fn step(&mut self, state: &mut ObjectState) -> StepOutcome {
        self.steps += 1;
        let mut budget = INTERNAL_STEP_LIMIT;
        // Split borrows: handlers mutate the arenas, but the program is
        // read-only for the whole step. Naming the fields separately lets
        // the flat stream's base pointers stay in registers across those
        // mutations — routed through `self`, every `state.set_cell` would
        // force the optimiser to re-load them.
        let ThreadVm {
            program,
            frames,
            args,
            locals,
            loop_slots,
            sync_stack,
            fused,
            ..
        } = self;
        let flat = &program.flat;
        'frame: loop {
            let Some(&FrameMeta {
                method: _,
                pc: frame_pc,
                args_base,
                locals_base,
                loops_base,
                sync_base,
            }) = frames.last()
            else {
                return StepOutcome::Finished;
            };
            let fi = frames.len() - 1;
            let mut pc = frame_pc;
            loop {
                if budget == 0 {
                    panic!(
                        "thread exceeded {INTERNAL_STEP_LIMIT} internal steps: \
                         non-terminating internal loop"
                    );
                }
                budget -= 1;
                // `Op` is `Copy`: the fetch ends the borrow of `program`
                // immediately, so handlers mutate the arenas freely.
                let op = flat.ops[pc];
                match op.code {
                    // ---- action opcodes: suspend with an Action ----
                    OpCode::Compute => {
                        let dur_ns = dur_op(op.t, op.a, &flat.lits, &args[args_base..]);
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Compute { dur_ns });
                    }
                    OpCode::Lock => {
                        let mutex = mutex_op(op, &args[args_base..], &locals[locals_base..], state);
                        let sync_id = SyncId(op.a);
                        sync_stack.push((sync_id, mutex));
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Lock { sync_id, mutex });
                    }
                    OpCode::Unlock => {
                        return unlock_tail(frames, sync_stack, fi, pc + 1, pc, sync_base, op.a);
                    }
                    OpCode::Wait => {
                        let mutex = mutex_op(op, &args[args_base..], &locals[locals_base..], state);
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Wait { mutex });
                    }
                    OpCode::NotifyOne | OpCode::NotifyAll => {
                        let mutex = mutex_op(op, &args[args_base..], &locals[locals_base..], state);
                        let all = op.code == OpCode::NotifyAll;
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Notify { mutex, all });
                    }
                    OpCode::Nested => {
                        let dur_ns = dur_op(op.t, op.b, &flat.lits, &args[args_base..]);
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Nested {
                            service: ServiceId(op.a),
                            dur_ns,
                        });
                    }
                    OpCode::LockInfo => {
                        let mutex = mutex_op(op, &args[args_base..], &locals[locals_base..], state);
                        let sync_id = SyncId(op.a);
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::LockInfo { sync_id, mutex });
                    }
                    OpCode::IgnoreSync => {
                        frames[fi].pc = pc + 1;
                        return StepOutcome::Action(Action::Ignore {
                            sync_id: SyncId(op.a),
                        });
                    }
                    // ---- internal opcodes: no scheduler involvement ----
                    OpCode::Update => {
                        let d = int_op(op.t, op.b, &flat.lits, &args[args_base..], state);
                        let cell = CellId(op.a);
                        state.set_cell(cell, state.cell(cell).wrapping_add(d));
                        pc += 1;
                    }
                    OpCode::UpdateIndexed => {
                        let fargs = &args[args_base..];
                        let idx = arg_at(fargs, op.sa as usize)
                            .as_int()
                            .rem_euclid(op.b as i64) as u32;
                        let cell = CellId::new(op.a + idx);
                        let d = int_op(op.t, op.c, &flat.lits, fargs, state);
                        state.set_cell(cell, state.cell(cell).wrapping_add(d));
                        pc += 1;
                    }
                    OpCode::SetCell => {
                        let v = int_op(op.t, op.b, &flat.lits, &args[args_base..], state);
                        state.set_cell(CellId(op.a), v);
                        pc += 1;
                    }
                    OpCode::Assign => {
                        let m = mutex_op(op, &args[args_base..], &locals[locals_base..], state);
                        locals[locals_base + op.a as usize] = Value::Mutex(m);
                        pc += 1;
                    }
                    OpCode::BranchIfFalse => {
                        pc = if cond_op(op, &flat.lits, &args[args_base..], state) {
                            pc + 1
                        } else {
                            op.a as usize
                        };
                    }
                    OpCode::Jump => pc = op.a as usize,
                    OpCode::LoopInit => {
                        let n = if op.t == ctag::LIT {
                            op.a
                        } else {
                            arg_at(&args[args_base..], op.a as usize).as_int().max(0) as u32
                        };
                        loop_slots[loops_base + op.sa as usize] = n;
                        pc += 1;
                    }
                    OpCode::LoopTest => {
                        let c = &mut loop_slots[loops_base + op.sa as usize];
                        if *c == 0 {
                            pc = op.a as usize;
                        } else {
                            *c -= 1;
                            pc += 1;
                        }
                    }
                    OpCode::Call => {
                        let callee = MethodIdx(op.a);
                        let (s, n) = (op.b as usize, op.c as usize);
                        let callee_base = eval_call_args(
                            args,
                            locals,
                            &flat.arg_pool[s..s + n],
                            args_base,
                            locals_base,
                            state,
                        );
                        frames[fi].pc = pc + 1;
                        push_frame_on(
                            program,
                            frames,
                            args,
                            locals,
                            loop_slots,
                            sync_stack,
                            callee,
                            callee_base,
                        );
                        continue 'frame;
                    }
                    OpCode::CallVirtual => {
                        let spec = flat.vcalls[op.a as usize];
                        let sel = int_op(
                            spec.sel_tag,
                            spec.sel_op,
                            &flat.lits,
                            &args[args_base..],
                            state,
                        );
                        let idx = sel.rem_euclid(spec.cand_len as i64) as usize;
                        let target = flat.cand_pool[spec.cand_start as usize + idx];
                        let (s, n) = (spec.args_start as usize, spec.args_len as usize);
                        let callee_base = eval_call_args(
                            args,
                            locals,
                            &flat.arg_pool[s..s + n],
                            args_base,
                            locals_base,
                            state,
                        );
                        frames[fi].pc = pc + 1;
                        push_frame_on(
                            program,
                            frames,
                            args,
                            locals,
                            loop_slots,
                            sync_stack,
                            target,
                            callee_base,
                        );
                        continue 'frame;
                    }
                    OpCode::Ret => {
                        let f = frames.pop().expect("ret without frame");
                        assert!(
                            sync_stack.len() == f.sync_base,
                            "returning while holding monitors {:?}",
                            &sync_stack[f.sync_base..]
                        );
                        args.truncate(f.args_base);
                        locals.truncate(f.locals_base);
                        loop_slots.truncate(f.loops_base);
                        if frames.is_empty() {
                            return StepOutcome::Finished;
                        }
                        continue 'frame;
                    }
                    // ---- superinstructions ----
                    OpCode::UpdateUnlock => {
                        *fused += 1;
                        let d = int_op(op.t, op.b, &flat.lits, &args[args_base..], state);
                        let cell = CellId(op.a);
                        state.set_cell(cell, state.cell(cell).wrapping_add(d));
                        let sid = flat.ops[pc + 1].a;
                        return unlock_tail(frames, sync_stack, fi, pc + 2, pc + 1, sync_base, sid);
                    }
                    OpCode::UpdateIndexedUnlock => {
                        *fused += 1;
                        let fargs = &args[args_base..];
                        let idx = arg_at(fargs, op.sa as usize)
                            .as_int()
                            .rem_euclid(op.b as i64) as u32;
                        let cell = CellId::new(op.a + idx);
                        let d = int_op(op.t, op.c, &flat.lits, fargs, state);
                        state.set_cell(cell, state.cell(cell).wrapping_add(d));
                        let sid = flat.ops[pc + 1].a;
                        return unlock_tail(frames, sync_stack, fi, pc + 2, pc + 1, sync_base, sid);
                    }
                    OpCode::SetCellUnlock => {
                        *fused += 1;
                        let v = int_op(op.t, op.b, &flat.lits, &args[args_base..], state);
                        state.set_cell(CellId(op.a), v);
                        let sid = flat.ops[pc + 1].a;
                        return unlock_tail(frames, sync_stack, fi, pc + 2, pc + 1, sync_base, sid);
                    }
                    OpCode::BrFalseCompute => {
                        *fused += 1;
                        if cond_op(op, &flat.lits, &args[args_base..], state) {
                            let carrier = flat.ops[pc + 1];
                            let dur_ns =
                                dur_op(carrier.t, carrier.a, &flat.lits, &args[args_base..]);
                            frames[fi].pc = pc + 2;
                            return StepOutcome::Action(Action::Compute { dur_ns });
                        }
                        pc = op.a as usize;
                    }
                    OpCode::BrFalseNested => {
                        *fused += 1;
                        if cond_op(op, &flat.lits, &args[args_base..], state) {
                            let carrier = flat.ops[pc + 1];
                            let dur_ns =
                                dur_op(carrier.t, carrier.b, &flat.lits, &args[args_base..]);
                            frames[fi].pc = pc + 2;
                            return StepOutcome::Action(Action::Nested {
                                service: ServiceId(carrier.a),
                                dur_ns,
                            });
                        }
                        pc = op.a as usize;
                    }
                }
            }
        }
    }

    /// [`unlock_tail`] over this VM's arenas (the `step_match` reference
    /// loop has no split borrows to thread through).
    #[inline(always)]
    fn do_unlock(
        &mut self,
        fi: usize,
        next_pc: usize,
        fault_pc: usize,
        sync_base: usize,
        sync_id: u32,
    ) -> StepOutcome {
        unlock_tail(
            &mut self.frames,
            &mut self.sync_stack,
            fi,
            next_pc,
            fault_pc,
            sync_base,
            sync_id,
        )
    }

    /// The retired per-step `match instr` dispatch, kept as the reference
    /// implementation for differential tests and the dispatch-style
    /// microbench (`ubench interp`). Executes the `Instr` form, so it is
    /// only valid on unfused programs (where `Instr` pcs map 1:1 onto
    /// flat ops — [`crate::compile::compile_unfused`]).
    pub fn step_match(&mut self, state: &mut ObjectState) -> StepOutcome {
        assert_eq!(
            self.program.flat.fused_pairs, 0,
            "step_match requires an unfused program (compile_unfused)"
        );
        self.steps += 1;
        for _ in 0..INTERNAL_STEP_LIMIT {
            let Some(&FrameMeta {
                method,
                pc,
                args_base,
                locals_base,
                loops_base,
                sync_base,
            }) = self.frames.last()
            else {
                return StepOutcome::Finished;
            };
            let fi = self.frames.len() - 1;
            // Frame pcs are absolute into the flat stream; the 1:1
            // unfused lowering makes `pc - entry` the `Instr` index.
            let entry = self.program.flat.entries[method.index()] as usize;
            let ipc = pc - entry;
            let code = &self.program.methods[method.index()].code;
            debug_assert!(ipc < code.len(), "pc ran off method end");
            let instr = &code[ipc];
            let fargs = &self.args[args_base..];
            let flocals = &self.locals[locals_base..];
            match instr {
                Instr::Compute(d) => {
                    let dur_ns = eval_dur(d, fargs);
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Compute { dur_ns });
                }
                Instr::Lock { sync_id, param } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let sync_id = *sync_id;
                    self.sync_stack.push((sync_id, mutex));
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Lock { sync_id, mutex });
                }
                Instr::Unlock { sync_id } => {
                    return self.do_unlock(fi, pc + 1, pc, sync_base, sync_id.0);
                }
                Instr::Wait(param) => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Wait { mutex });
                }
                Instr::Notify { param, all } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let all = *all;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Notify { mutex, all });
                }
                Instr::Nested { service, dur } => {
                    let dur_ns = eval_dur(dur, fargs);
                    let service = *service;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Nested { service, dur_ns });
                }
                Instr::LockInfo { sync_id, param } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let sync_id = *sync_id;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::LockInfo { sync_id, mutex });
                }
                Instr::IgnoreSync { sync_id } => {
                    let sync_id = *sync_id;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Ignore { sync_id });
                }
                Instr::Update { cell, delta } => {
                    let d = eval_int(delta, fargs, state);
                    state.set_cell(*cell, state.cell(*cell).wrapping_add(d));
                    self.frames[fi].pc = pc + 1;
                }
                Instr::UpdateIndexed {
                    base,
                    len,
                    index_arg,
                    delta,
                } => {
                    let idx = arg_at(fargs, *index_arg).as_int().rem_euclid(*len as i64) as u32;
                    let cell = CellId::new(base + idx);
                    let d = eval_int(delta, fargs, state);
                    state.set_cell(cell, state.cell(cell).wrapping_add(d));
                    self.frames[fi].pc = pc + 1;
                }
                Instr::SetCell { cell, value } => {
                    let v = eval_int(value, fargs, state);
                    state.set_cell(*cell, v);
                    self.frames[fi].pc = pc + 1;
                }
                Instr::Assign { local, expr } => {
                    let m = eval_mutex(expr, fargs, flocals, state);
                    self.locals[locals_base + local.index()] = Value::Mutex(m);
                    self.frames[fi].pc = pc + 1;
                }
                Instr::BranchIfFalse { cond, target } => {
                    self.frames[fi].pc = if eval_cond(cond, fargs, state) {
                        pc + 1
                    } else {
                        entry + *target
                    };
                }
                Instr::Jump(target) => self.frames[fi].pc = entry + *target,
                Instr::LoopInit { slot, count } => {
                    let n = match count {
                        CountExpr::Lit(n) => *n,
                        CountExpr::Arg(i) => arg_at(fargs, *i).as_int().max(0) as u32,
                    };
                    self.loop_slots[loops_base + *slot as usize] = n;
                    self.frames[fi].pc = pc + 1;
                }
                Instr::LoopTest { slot, exit } => {
                    let c = &mut self.loop_slots[loops_base + *slot as usize];
                    if *c == 0 {
                        self.frames[fi].pc = entry + *exit;
                    } else {
                        *c -= 1;
                        self.frames[fi].pc = pc + 1;
                    }
                }
                Instr::Call { method, args } => {
                    let callee = *method;
                    let callee_base = eval_call_args(
                        &mut self.args,
                        &self.locals,
                        args,
                        args_base,
                        locals_base,
                        state,
                    );
                    self.frames[fi].pc = pc + 1;
                    self.push_frame(callee, callee_base);
                }
                Instr::CallVirtual {
                    candidates,
                    selector,
                    args,
                    ..
                } => {
                    let sel = eval_int(selector, fargs, state);
                    let idx = (sel.rem_euclid(candidates.len() as i64)) as usize;
                    let target = candidates[idx];
                    let callee_base = eval_call_args(
                        &mut self.args,
                        &self.locals,
                        args,
                        args_base,
                        locals_base,
                        state,
                    );
                    self.frames[fi].pc = pc + 1;
                    self.push_frame(target, callee_base);
                }
                Instr::Ret => {
                    let f = self.frames.pop().expect("ret without frame");
                    assert!(
                        self.sync_stack.len() == f.sync_base,
                        "returning while holding monitors {:?}",
                        &self.sync_stack[f.sync_base..]
                    );
                    self.args.truncate(f.args_base);
                    self.locals.truncate(f.locals_base);
                    self.loop_slots.truncate(f.loops_base);
                    if self.frames.is_empty() {
                        return StepOutcome::Finished;
                    }
                }
            }
        }
        panic!(
            "thread exceeded {INTERNAL_STEP_LIMIT} internal steps: non-terminating internal loop"
        );
    }

    /// Pushes a frame whose arguments already occupy `args[args_base..]`.
    fn push_frame(&mut self, method: MethodIdx, args_base: usize) {
        push_frame_on(
            &self.program,
            &mut self.frames,
            &self.args,
            &mut self.locals,
            &mut self.loop_slots,
            &self.sync_stack,
            method,
            args_base,
        );
    }
}

/// Shared monitor-exit tail of `Unlock` and the fused `*Unlock`
/// superinstructions: pops the sync stack, or faults deterministically
/// when the frame holds no monitor (`fault_pc` re-faults on re-step).
#[inline(always)]
fn unlock_tail(
    frames: &mut [FrameMeta],
    sync_stack: &mut Vec<(SyncId, MutexId)>,
    fi: usize,
    next_pc: usize,
    fault_pc: usize,
    sync_base: usize,
    sync_id: u32,
) -> StepOutcome {
    if sync_stack.len() <= sync_base {
        frames[fi].pc = fault_pc;
        return StepOutcome::Faulted(Fault::UnlockWithoutLock {
            sync_id: SyncId(sync_id),
        });
    }
    let (sid, mutex) = sync_stack.pop().expect("checked above");
    debug_assert_eq!(sid.0, sync_id, "unbalanced sync stack");
    frames[fi].pc = next_pc;
    StepOutcome::Action(Action::Unlock {
        sync_id: sid,
        mutex,
    })
}

/// Frame push over explicit arenas, callable from `step`'s split-borrow
/// loop (which cannot take `&mut self` while the hoisted program borrow
/// is live).
#[allow(clippy::too_many_arguments)]
fn push_frame_on(
    program: &CompiledObject,
    frames: &mut Vec<FrameMeta>,
    args: &[Value],
    locals: &mut Vec<Value>,
    loop_slots: &mut Vec<u32>,
    sync_stack: &[(SyncId, MutexId)],
    method: MethodIdx,
    args_base: usize,
) {
    let m = &program.methods[method.index()];
    assert_eq!(
        args.len() - args_base,
        m.arity,
        "call arity mismatch for {}",
        m.name
    );
    let (n_locals, n_loops) = (m.n_locals as usize, m.n_loop_slots as usize);
    let locals_base = locals.len();
    let loops_base = loop_slots.len();
    let sync_base = sync_stack.len();
    locals.resize(locals_base + n_locals, Value::Int(0));
    loop_slots.resize(loops_base + n_loops, 0);
    frames.push(FrameMeta {
        method,
        pc: program.flat.entries[method.index()] as usize,
        args_base,
        locals_base,
        loops_base,
        sync_base,
    });
}

/// A reset-on-reuse free list of [`ThreadVm`]s. A replica acquires a VM
/// per admitted request and releases it when the thread finishes; after
/// the pool warms up to the peak number of concurrently live threads,
/// admission stops allocating entirely. The `allocs`/`reuses` counters
/// make that claim checkable from the outside.
#[derive(Default)]
pub struct VmPool {
    free: Vec<ThreadVm>,
    allocs: u64,
    reuses: u64,
}

impl VmPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a VM poised at the first instruction of `method`,
    /// recycling a released VM when one is idle.
    pub fn acquire(
        &mut self,
        program: Arc<CompiledObject>,
        method: MethodIdx,
        args: &RequestArgs,
    ) -> ThreadVm {
        match self.free.pop() {
            Some(mut vm) => {
                self.reuses += 1;
                vm.reset(program, method, args);
                vm
            }
            None => {
                self.allocs += 1;
                ThreadVm::new(program, method, args.clone())
            }
        }
    }

    /// Returns a finished VM's buffers to the pool.
    pub fn release(&mut self, vm: ThreadVm) {
        self.free.push(vm);
    }

    /// VMs constructed from scratch (pool misses).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Acquisitions served by recycling a released VM.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// VMs currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Fetches argument `i` from a frame's segment of the args arena. Panics
/// on out-of-range: the analysis guarantees arity, so a miss is a harness
/// bug worth failing loudly on.
#[inline]
fn arg_at(args: &[Value], i: usize) -> Value {
    *args
        .get(i)
        .unwrap_or_else(|| panic!("request argument {i} missing (have {})", args.len()))
}

/// Evaluates a call's argument expressions into the tail of the args
/// arena (one at a time — the caller's own segment stays readable while
/// the callee's grows behind it) and returns the callee's `args_base`.
/// A free function over the two arenas so the caller's borrow of the
/// program (the instruction being executed) stays live across the call.
fn eval_call_args(
    args: &mut Vec<Value>,
    locals: &[Value],
    exprs: &[ArgExpr],
    args_base: usize,
    locals_base: usize,
    state: &ObjectState,
) -> usize {
    let callee_base = args.len();
    for a in exprs {
        let v = match a {
            ArgExpr::Const(v) => *v,
            ArgExpr::CallerArg(i) => arg_at(&args[args_base..callee_base], *i),
            ArgExpr::Local(l) => locals[locals_base + l.index()],
            ArgExpr::Field(f) => Value::Mutex(state.field(*f)),
        };
        args.push(v);
    }
    callee_base
}

fn eval_dur(d: &DurExpr, args: &[Value]) -> u64 {
    match d {
        DurExpr::Nanos(n) => *n,
        DurExpr::Arg(i) => arg_at(args, *i).as_dur_nanos(),
    }
}

fn eval_int(e: &IntExpr, args: &[Value], state: &ObjectState) -> i64 {
    match e {
        IntExpr::Lit(v) => *v,
        IntExpr::Arg(i) => arg_at(args, *i).as_int(),
        IntExpr::Cell(c) => state.cell(*c),
    }
}

fn eval_mutex(e: &MutexExpr, args: &[Value], locals: &[Value], state: &ObjectState) -> MutexId {
    match e {
        MutexExpr::This => state.this_mutex,
        MutexExpr::Konst(m) => *m,
        MutexExpr::Arg(i) => arg_at(args, *i).as_mutex(),
        MutexExpr::Local(l) => locals[l.index()].as_mutex(),
        MutexExpr::Field(f) => state.field(*f),
        MutexExpr::Pool {
            base,
            len,
            index_arg,
        } => {
            let idx = arg_at(args, *index_arg).as_int().rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::PoolByCell { base, len, cell } => {
            let idx = state.cell(*cell).rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::CallResult { resolves_to, .. } => state.field(*resolves_to),
    }
}

/// Duration operand of a threaded op: literal-pool index or argument
/// index, per [`dtag`].
#[inline(always)]
fn dur_op(t: u8, operand: u32, lits: &[i64], args: &[Value]) -> u64 {
    if t == dtag::LIT {
        lits[operand as usize] as u64
    } else {
        arg_at(args, operand as usize).as_dur_nanos()
    }
}

/// Integer operand of a threaded op, per [`itag`].
#[inline(always)]
fn int_op(t: u8, operand: u32, lits: &[i64], args: &[Value], state: &ObjectState) -> i64 {
    match t {
        itag::LIT => lits[operand as usize],
        itag::ARG => arg_at(args, operand as usize).as_int(),
        _ => state.cell(CellId(operand)),
    }
}

/// Mutex operand of a threaded op, per [`mtag`] (packing documented on
/// `threaded::pack_mutex`).
#[inline(always)]
fn mutex_op(op: Op, args: &[Value], locals: &[Value], state: &ObjectState) -> MutexId {
    match op.t {
        mtag::THIS => state.this_mutex,
        mtag::KONST => MutexId(op.b),
        mtag::ARG => arg_at(args, op.b as usize).as_mutex(),
        mtag::LOCAL => locals[op.b as usize].as_mutex(),
        mtag::FIELD => state.field(FieldId(op.b)),
        mtag::POOL => {
            let idx = arg_at(args, op.sa as usize)
                .as_int()
                .rem_euclid(op.c as i64) as u32;
            MutexId::new(op.b + idx)
        }
        mtag::POOL_BY_CELL => {
            let idx = state.cell(CellId(op.d)).rem_euclid(op.c as i64) as u32;
            MutexId::new(op.b + idx)
        }
        // CALL_RESULT resolves to the field the analysis pinned it to.
        _ => state.field(FieldId(op.b)),
    }
}

/// Condition operand of a threaded op, per [`cond`]; `COND_NEGATE` in the
/// tag folds any `Not` wrappers into a polarity flip.
#[inline(always)]
fn cond_op(op: Op, lits: &[i64], args: &[Value], state: &ObjectState) -> bool {
    let v = match op.t & !COND_NEGATE {
        cond::KONST => op.b != 0,
        cond::ARG_FLAG => arg_at(args, op.b as usize).as_bool(),
        cond::ARG_INT_LT => arg_at(args, op.b as usize).as_int() < lits[op.c as usize],
        cond::CELL_EQ => state.cell(CellId(op.b)) == lits[op.c as usize],
        cond::CELL_LT => state.cell(CellId(op.b)) < lits[op.c as usize],
        cond::CELL_GE => state.cell(CellId(op.b)) >= lits[op.c as usize],
        _ => arg_at(args, op.b as usize).as_mutex() == state.field(FieldId(op.c)),
    };
    v ^ (op.t & COND_NEGATE != 0)
}

fn eval_cond(c: &CondExpr, args: &[Value], state: &ObjectState) -> bool {
    match c {
        CondExpr::Konst(b) => *b,
        CondExpr::ArgFlag(i) => arg_at(args, *i).as_bool(),
        CondExpr::ArgIntLt(i, k) => arg_at(args, *i).as_int() < *k,
        CondExpr::CellEq(cell, k) => state.cell(*cell) == *k,
        CondExpr::CellLt(cell, k) => state.cell(*cell) < *k,
        CondExpr::CellGe(cell, k) => state.cell(*cell) >= *k,
        CondExpr::ParamEqField(i, f) => arg_at(args, *i).as_mutex() == state.field(*f),
        CondExpr::Not(inner) => !eval_cond(inner, args, state),
    }
}

/// Runs a VM to completion with every action auto-granted, returning the
/// emitted action trace. Only meaningful for single-threaded execution —
/// used by tests, the analysis oracle, and the transformation-equivalence
/// property checks.
pub fn run_to_completion(vm: &mut ThreadVm, state: &mut ObjectState) -> Vec<Action> {
    let mut trace = Vec::new();
    loop {
        match vm.step(state) {
            StepOutcome::Action(a) => trace.push(a),
            StepOutcome::Finished => return trace,
            StepOutcome::Faulted(f) => panic!("interpreter fault: {f}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Method, ObjectImpl, Stmt};
    use crate::compile::{compile, compile_unfused};
    use crate::ids::LocalId;

    fn make(body: Vec<Stmt>, arity: usize, n_locals: u32) -> Arc<CompiledObject> {
        compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 4,
            n_fields: 2,
            methods: vec![Method {
                name: "m".into(),
                arity,
                n_locals,
                public: true,
                is_final: true,
                body,
            }],
        })
    }

    fn run(obj: Arc<CompiledObject>, args: Vec<Value>) -> (Vec<Action>, ObjectState) {
        let mut state = ObjectState::for_object(&obj, MutexId::new(1000));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::new(args));
        let trace = run_to_completion(&mut vm, &mut state);
        (trace, state)
    }

    #[test]
    fn straight_line_trace() {
        let obj = make(
            vec![
                Stmt::Compute(DurExpr::millis(2)),
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::This,
                    body: vec![Stmt::Update {
                        cell: CellId::new(0),
                        delta: IntExpr::Lit(5),
                    }],
                },
            ],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert_eq!(
            trace,
            vec![
                Action::Compute { dur_ns: 2_000_000 },
                Action::Lock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(1000)
                },
                Action::Unlock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(1000)
                },
            ]
        );
        assert_eq!(state.cell(CellId::new(0)), 5);
    }

    #[test]
    fn branch_on_client_flag() {
        let body = vec![Stmt::If {
            cond: CondExpr::ArgFlag(0),
            then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
            else_branch: vec![Stmt::Nested {
                service: ServiceId::new(0),
                dur: DurExpr::millis(12),
            }],
        }];
        let obj = make(body, 1, 0);
        let (t_true, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(t_true, vec![Action::Compute { dur_ns: 1_000_000 }]);
        let (t_false, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(
            t_false,
            vec![Action::Nested {
                service: ServiceId::new(0),
                dur_ns: 12_000_000
            }]
        );
    }

    #[test]
    fn for_loop_repeats_body() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Lit(3),
                body: vec![Stmt::Update {
                    cell: CellId::new(1),
                    delta: IntExpr::Lit(2),
                }],
            }],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert!(trace.is_empty()); // pure internal work
        assert_eq!(state.cell(CellId::new(1)), 6);
    }

    #[test]
    fn for_loop_count_from_arg_and_zero() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Arg(0),
                body: vec![Stmt::Compute(DurExpr::millis(1))],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(2)]);
        assert_eq!(trace.len(), 2);
        let (trace, _) = run(obj.clone(), vec![Value::Int(0)]);
        assert!(trace.is_empty());
        // Negative counts clamp to zero.
        let (trace, _) = run(obj, vec![Value::Int(-5)]);
        assert!(trace.is_empty());
    }

    #[test]
    fn pool_mutex_selected_by_client_index() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Pool {
                    base: 100,
                    len: 10,
                    index_arg: 0,
                },
                body: vec![],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(7)]);
        assert_eq!(
            trace[0],
            Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(107)
            }
        );
        // Index wraps modulo pool size.
        let (trace, _) = run(obj, vec![Value::Int(13)]);
        assert_eq!(
            trace[0],
            Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(103)
            }
        );
    }

    #[test]
    fn local_assignment_tracks_lock_object() {
        // local = args[0]; sync(local) { ... } — unlock releases what was
        // locked even though nothing reassigns here.
        let obj = make(
            vec![
                Stmt::Assign {
                    local: LocalId::new(0),
                    expr: MutexExpr::Arg(0),
                },
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Local(LocalId::new(0)),
                    body: vec![Stmt::Assign {
                        local: LocalId::new(0),
                        expr: MutexExpr::This,
                    }],
                },
            ],
            1,
            1,
        );
        let (trace, _) = run(obj, vec![Value::Mutex(MutexId::new(55))]);
        assert_eq!(
            trace,
            vec![
                Action::Lock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(55)
                },
                // Reassignment inside the block must not change what is unlocked.
                Action::Unlock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(55)
                },
            ]
        );
    }

    #[test]
    fn early_return_unlocks_monitors() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![
                    Stmt::If {
                        cond: CondExpr::ArgFlag(0),
                        then_branch: vec![Stmt::Return],
                        else_branch: vec![],
                    },
                    Stmt::Compute(DurExpr::millis(1)),
                ],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(trace.len(), 2); // lock + unlock, no compute
        assert!(matches!(trace[1], Action::Unlock { .. }));
        let (trace, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(trace.len(), 3); // lock + compute + unlock
    }

    #[test]
    fn local_call_pushes_frame() {
        let callee = Method {
            name: "callee".into(),
            arity: 1,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                param: MutexExpr::Arg(0),
                body: vec![],
            }],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Call {
                method: MethodIdx::new(1),
                args: vec![ArgExpr::CallerArg(0)],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        });
        let mut state = ObjectState::for_object(&obj, MutexId::new(1));
        let mut vm = ThreadVm::new(
            obj,
            MethodIdx::new(0),
            RequestArgs::new(vec![Value::Mutex(MutexId::new(42))]),
        );
        let trace = run_to_completion(&mut vm, &mut state);
        assert_eq!(
            trace,
            vec![
                Action::Lock {
                    sync_id: SyncId::new(1),
                    mutex: MutexId::new(42)
                },
                Action::Unlock {
                    sync_id: SyncId::new(1),
                    mutex: MutexId::new(42)
                },
            ]
        );
    }

    #[test]
    fn virtual_call_dispatches_by_selector() {
        let mk_leaf = |name: &str, ms: u64| Method {
            name: name.into(),
            arity: 0,
            n_locals: 0,
            public: false,
            is_final: false,
            body: vec![Stmt::Compute(DurExpr::millis(ms))],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::VirtualCall {
                site: crate::ids::CallSiteId::new(0),
                candidates: vec![MethodIdx::new(1), MethodIdx::new(2)],
                selector: IntExpr::Arg(0),
                args: vec![],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, mk_leaf("a", 1), mk_leaf("b", 2)],
        });
        let run_sel = |sel: i64| {
            let mut state = ObjectState::for_object(&obj, MutexId::new(1));
            let mut vm = ThreadVm::new(
                obj.clone(),
                MethodIdx::new(0),
                RequestArgs::new(vec![Value::Int(sel)]),
            );
            run_to_completion(&mut vm, &mut state)
        };
        assert_eq!(run_sel(0), vec![Action::Compute { dur_ns: 1_000_000 }]);
        assert_eq!(run_sel(1), vec![Action::Compute { dur_ns: 2_000_000 }]);
        assert_eq!(run_sel(2), vec![Action::Compute { dur_ns: 1_000_000 }]);
        // Negative selectors use euclidean remainder (stay in range).
        assert_eq!(run_sel(-1), vec![Action::Compute { dur_ns: 2_000_000 }]);
    }

    #[test]
    fn wait_loop_reevaluates_condition() {
        // while (cell0 < 1) wait(this); — after the engine sets the cell
        // and resumes, the loop must exit.
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![Stmt::While {
                    cond: CondExpr::CellLt(CellId::new(0), 1),
                    body: vec![Stmt::Wait(MutexExpr::This)],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(9));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(9)
            })
        );
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Wait {
                mutex: MutexId::new(9)
            })
        );
        // Engine: another thread sets the cell, notifies, VM resumes.
        state.set_cell(CellId::new(0), 1);
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Unlock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(9)
            })
        );
        assert_eq!(vm.step(&mut state), StepOutcome::Finished);
    }

    #[test]
    fn held_monitors_reported_in_order() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(1)),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(1),
                    param: MutexExpr::Konst(MutexId::new(2)),
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state); // lock m1
        vm.step(&mut state); // lock m2
        assert_eq!(vm.held_monitors(), vec![MutexId::new(1), MutexId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "non-terminating internal loop")]
    fn internal_infinite_loop_detected() {
        let obj = make(
            vec![Stmt::While {
                cond: CondExpr::Konst(true),
                body: vec![],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state);
    }

    #[test]
    fn state_hash_changes_with_state() {
        let obj = make(vec![], 0, 0);
        let a = ObjectState::for_object(&obj, MutexId::new(1));
        let mut b = ObjectState::for_object(&obj, MutexId::new(1));
        assert_eq!(a.state_hash(), b.state_hash());
        b.set_cell(CellId::new(0), 1);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    #[should_panic(expected = "expects 1 args")]
    fn arity_mismatch_panics() {
        let obj = make(vec![], 1, 0);
        ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
    }

    /// Nested-sync method used by the pool-reuse tests: lock(m1) { lock(m2)
    /// { compute } }.
    fn nested_sync_obj() -> Arc<CompiledObject> {
        make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(1)),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(1),
                    param: MutexExpr::Konst(MutexId::new(2)),
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            }],
            0,
            0,
        )
    }

    #[test]
    fn pool_reuse_reports_reentrant_monitors_across_nested_frames() {
        // A recycled VM must report held monitors exactly like a fresh one,
        // including reentrant/nested acquisitions spread across call frames.
        let callee = Method {
            name: "callee".into(),
            arity: 0,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                // Reentrant: the caller already holds this monitor.
                param: MutexExpr::Konst(MutexId::new(7)),
                body: vec![Stmt::Compute(DurExpr::millis(1))],
            }],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(7)),
                body: vec![Stmt::Call {
                    method: MethodIdx::new(1),
                    args: vec![],
                }],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        });
        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        // First request: run to completion, release the VM.
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        run_to_completion(&mut vm, &mut state);
        assert!(vm.held_monitors().is_empty());
        pool.release(vm);
        // Second request reuses the buffers; pause it mid-nesting.
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.allocs(), 1);
        vm.step(&mut state); // lock m7 in caller
        vm.step(&mut state); // lock m7 again in callee (reentrant, new frame)
        assert_eq!(vm.held_monitors(), vec![MutexId::new(7), MutexId::new(7)]);
        // Finish cleanly: unlock, unlock, compute, return.
        let trace = run_to_completion(&mut vm, &mut state);
        assert!(vm.held_monitors().is_empty());
        assert!(
            trace
                .iter()
                .filter(|a| matches!(a, Action::Unlock { .. }))
                .count()
                == 2
        );
    }

    #[test]
    fn pool_reuse_matches_fresh_vm_traces() {
        let obj = nested_sync_obj();
        let mut fresh_state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut fresh = ThreadVm::new(obj.clone(), MethodIdx::new(0), RequestArgs::empty());
        let expected = run_to_completion(&mut fresh, &mut fresh_state);

        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        for round in 0..3 {
            let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
            let trace = run_to_completion(&mut vm, &mut state);
            assert_eq!(trace, expected, "round {round} diverged after reuse");
            pool.release(vm);
        }
        assert_eq!(pool.allocs(), 1);
        assert_eq!(pool.reuses(), 2);
    }

    #[test]
    #[should_panic(expected = "non-terminating internal loop")]
    fn internal_step_limit_still_fires_after_reuse() {
        // One terminating method and one internal infinite loop in the same
        // object: the recycled VM must still trip the runaway guard.
        let looper = Method {
            name: "looper".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::While {
                cond: CondExpr::Konst(true),
                body: vec![],
            }],
        };
        let fine = Method {
            name: "fine".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Compute(DurExpr::millis(1))],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![fine, looper],
        });
        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        run_to_completion(&mut vm, &mut state);
        pool.release(vm);
        let mut vm = pool.acquire(obj, MethodIdx::new(1), &RequestArgs::empty());
        vm.step(&mut state);
    }

    #[test]
    fn incremental_hash_matches_full_rehash_under_random_mutation() {
        // Tiny SplitMix64 clone (dmt-lang has no deps) driving randomized
        // set_cell/set_field sequences; the incremental hash must track the
        // from-scratch fold exactly at every step.
        let mut z: u64 = 0x9E37_79B9_0000_0001;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let mut s = ObjectState::new(MutexId::new(42), 16, vec![MutexId::new(42); 8]);
        assert_eq!(s.state_hash(), s.full_rehash());
        for _ in 0..2_000 {
            if next() % 3 == 0 {
                let f = (next() % 8) as usize;
                s.set_field(FieldId::new(f as u32), MutexId::new((next() % 100) as u32));
            } else {
                let c = (next() % 16) as usize;
                s.set_cell(CellId::new(c as u32), next() as i64);
            }
            assert_eq!(s.state_hash(), s.full_rehash(), "incremental hash drifted");
        }
        // Writing a slot back to its current value must be a no-op.
        let before = s.state_hash();
        let v = s.cell(CellId::new(3));
        s.set_cell(CellId::new(3), v);
        assert_eq!(s.state_hash(), before);
    }

    #[test]
    fn equal_states_hash_equal_after_different_histories() {
        // The fold is order-independent: two states reaching the same
        // contents by different mutation orders must agree.
        let mut a = ObjectState::new(MutexId::new(1), 4, vec![MutexId::new(1); 2]);
        let mut b = a.clone();
        a.set_cell(CellId::new(0), 10);
        a.set_cell(CellId::new(1), 20);
        a.set_field(FieldId::new(0), MutexId::new(9));
        b.set_field(FieldId::new(0), MutexId::new(9));
        b.set_cell(CellId::new(1), 99);
        b.set_cell(CellId::new(1), 20);
        b.set_cell(CellId::new(0), 10);
        assert_eq!(a, b);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.state_hash(), a.full_rehash());
    }

    /// Hand-lowers a malformed stream — `Unlock` with no matching `Lock`
    /// — which no `ObjectImpl` can express (the builder always pairs
    /// them), to exercise the structured fault path.
    fn malformed_unlock_obj() -> Arc<CompiledObject> {
        let obj = make(vec![Stmt::Compute(DurExpr::millis(1))], 0, 0);
        let mut obj = (*obj).clone();
        // Overwrite both forms: Instr for step_match symmetry, flat for
        // the threaded loop.
        obj.methods[0].code[0] = Instr::Unlock {
            sync_id: SyncId::new(3),
        };
        obj.flat = crate::threaded::lower(&obj.methods, false);
        Arc::new(obj)
    }

    #[test]
    fn unlock_without_lock_faults_instead_of_aborting() {
        let obj = malformed_unlock_obj();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        let fault = Fault::UnlockWithoutLock {
            sync_id: SyncId::new(3),
        };
        assert_eq!(vm.step(&mut state), StepOutcome::Faulted(fault));
        // Re-stepping is deterministic: same fault, no progress.
        assert_eq!(vm.step(&mut state), StepOutcome::Faulted(fault));
        assert_eq!(format!("{fault}"), "unlock at s3 without matching lock");
    }

    #[test]
    fn step_match_reports_the_same_fault() {
        let obj = malformed_unlock_obj();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        let fault = Fault::UnlockWithoutLock {
            sync_id: SyncId::new(3),
        };
        assert_eq!(vm.step_match(&mut state), StepOutcome::Faulted(fault));
    }

    #[test]
    fn step_match_agrees_with_threaded_step() {
        // The retired match-dispatch reference and the threaded loop must
        // produce identical traces and state on an unfused program.
        let body = vec![
            Stmt::Compute(DurExpr::millis(1)),
            Stmt::If {
                cond: CondExpr::ArgFlag(0),
                then_branch: vec![Stmt::Nested {
                    service: ServiceId::new(0),
                    dur: DurExpr::millis(2),
                }],
                else_branch: vec![],
            },
            Stmt::For {
                count: CountExpr::Lit(3),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Pool {
                        base: 10,
                        len: 4,
                        index_arg: 1,
                    },
                    body: vec![Stmt::Update {
                        cell: CellId::new(0),
                        delta: IntExpr::Lit(1),
                    }],
                }],
            },
        ];
        let obj = compile_unfused(&ObjectImpl {
            name: "T".into(),
            n_cells: 1,
            n_fields: 0,
            methods: vec![Method {
                name: "m".into(),
                arity: 2,
                n_locals: 0,
                public: true,
                is_final: true,
                body,
            }],
        });
        for args in [
            vec![Value::Bool(true), Value::Int(2)],
            vec![Value::Bool(false), Value::Int(7)],
        ] {
            let mut st_a = ObjectState::for_object(&obj, MutexId::new(99));
            let mut vm_a = ThreadVm::new(
                obj.clone(),
                MethodIdx::new(0),
                RequestArgs::new(args.clone()),
            );
            let threaded_trace = run_to_completion(&mut vm_a, &mut st_a);

            let mut st_b = ObjectState::for_object(&obj, MutexId::new(99));
            let mut vm_b = ThreadVm::new(obj.clone(), MethodIdx::new(0), RequestArgs::new(args));
            let mut match_trace = Vec::new();
            loop {
                match vm_b.step_match(&mut st_b) {
                    StepOutcome::Action(a) => match_trace.push(a),
                    StepOutcome::Finished => break,
                    StepOutcome::Faulted(f) => panic!("unexpected fault {f}"),
                }
            }
            assert_eq!(threaded_trace, match_trace);
            assert_eq!(st_a.state_hash(), st_b.state_hash());
        }
    }
}
